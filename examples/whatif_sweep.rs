//! What-if sweep: predicted bounds vs measured ΔCPI for the whole
//! SPEC-like suite on one core — a compact version of the paper's Fig. 2
//! study that prints one row per (benchmark, component).
//!
//! ```text
//! cargo run --release --example whatif_sweep [core] [uops]
//! ```

use mstacks::prelude::*;
use mstacks::stats::TextTable;
use mstacks::workloads::{SharedTraceBuffer, TraceBuffer};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cname = args.get(1).map(String::as_str).unwrap_or("bdw");
    let uops: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150_000);
    let cfg = match cname {
        "bdw" => CoreConfig::broadwell(),
        "knl" => CoreConfig::knights_landing(),
        "skx" => CoreConfig::skylake_server(),
        other => panic!("unknown core {other}"),
    };

    let checks: [(Component, IdealFlags); 4] = [
        (Component::Icache, IdealFlags::none().with_perfect_icache()),
        (Component::Bpred, IdealFlags::none().with_perfect_bpred()),
        (Component::Dcache, IdealFlags::none().with_perfect_dcache()),
        (
            Component::AluLat,
            IdealFlags::none().with_single_cycle_alu(),
        ),
    ];

    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "component".into(),
        "bounds".into(),
        "actual dCPI".into(),
        "verdict".into(),
    ]);
    let mut within = 0;
    let mut total = 0;
    for w in spec::all() {
        // One capture per benchmark serves the baseline and every
        // idealized variant.
        let buf = TraceBuffer::capture(&w, uops).shared();
        let base = Session::new(cfg.clone())
            .run(buf.cursor())
            .expect("simulation completes");
        for (c, ideal) in checks {
            let (lo, hi) = base.multi.bounds(c);
            // Only components that matter (the paper's ≥10% filter).
            if hi < 0.10 * base.cpi() {
                continue;
            }
            let r = Session::new(cfg.clone())
                .with_ideal(ideal)
                .run(buf.cursor())
                .expect("simulation completes");
            let actual = base.cpi() - r.cpi();
            let ok = base.multi.contains(c, actual);
            total += 1;
            if ok {
                within += 1;
            }
            table.row(vec![
                w.name(),
                c.label().into(),
                format!("[{lo:.3}, {hi:.3}]"),
                format!("{actual:+.3}"),
                if ok {
                    "within".into()
                } else {
                    "outside".into()
                },
            ]);
        }
    }
    println!("what-if sweep on {cname} ({uops} uops per run)\n");
    println!("{table}");
    println!(
        "{within}/{total} measured improvements fall within the multi-stage bounds\n\
         (the paper reports \"most\"; the misses are second-order effects, §V-A)"
    );
}
