//! FLOPS stacks as a roofline companion (paper §III-C: FLOPS stacks
//! "augment the roofline model by identifying specific causes why an
//! application does not reach its theoretical performance").
//!
//! Sweeps a family of synthetic vector kernels from memory-bound to
//! compute-bound (varying the FMA-per-load ratio, i.e. arithmetic
//! intensity) on the SKX core and prints, for each point, the achieved
//! GFLOPS next to the FLOPS-stack component that *names* the limiter —
//! which is exactly what a plain roofline plot cannot do.
//!
//! ```text
//! cargo run --release --example roofline
//! ```

use mstacks::prelude::*;
use mstacks::workloads::addr::AddrPattern;
use mstacks::workloads::synth::{Mix, SynthParams};

/// A streaming vector kernel with `fma_weight` FMAs per load-weight.
fn kernel(fma_weight: f64) -> Workload {
    Workload::Synth(SynthParams {
        name: "roofline-kernel",
        seed: 0xF10A + (fma_weight * 100.0) as u64,
        n_blocks: 24,
        block_len: (8, 12),
        ifootprint: 4 * 1024,
        loop_frac: 0.6,
        random_frac: 0.0,
        call_frac: 0.0,
        indirect_frac: 0.0,
        taken_prob: 0.5,
        loop_trip: (16, 64),
        mix: Mix {
            alu: 0.6,
            lea: 0.6,
            load: 2.0,
            store: 0.4,
            vec_fma: fma_weight,
            ..Mix::default()
        },
        microcode_frac: 0.0,
        ilp: 4,
        fp_ilp: 4,
        load_dep_frac: 0.6,
        branch_dep_frac: 0.0,
        mem: vec![(
            AddrPattern::Stream {
                bytes: 16 << 20,
                stride: 8,
            },
            1.0,
        )],
        vec_lanes: 16,
    })
}

fn main() {
    let cfg = CoreConfig::skylake_server();
    let uops = 150_000u64;
    println!(
        "Roofline sweep on {} (peak {:.0} GFLOPS, DRAM {:.1} B/cycle/core)\n",
        cfg.name,
        cfg.peak_gflops(),
        cfg.mem.dram_bytes_per_cycle
    );
    println!(
        "{:>10}  {:>8}  {:>8}  dominant FLOPS-stack limiter",
        "FMA:load", "GFLOPS", "% peak"
    );
    for fma_weight in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let w = kernel(fma_weight);
        let r = Session::new(cfg.clone())
            .run(w.trace(uops))
            .expect("simulation completes");
        let g = r.gflops(cfg.freq_ghz);
        let n = r.flops.normalized();
        // Find the tallest non-base component.
        let (limiter, share) = mstacks::core::FLOPS_COMPONENTS
            .iter()
            .filter(|&&c| c != FlopsComponent::Base)
            .map(|&c| (c, n[c.index()]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaNs"))
            .expect("components exist");
        println!(
            "{:>10.2}  {:>8.1}  {:>7.0}%  {} ({:.0}%)",
            fma_weight / 2.0,
            g,
            g / cfg.peak_gflops() * 100.0,
            limiter.label(),
            share * 100.0
        );
    }
    println!(
        "\nLow intensity → the stack blames memory/frontend (bandwidth roof);\n\
         high intensity → dependences/non-FMA remain (compute roof). The stack\n\
         names the wall the kernel is leaning on — the roofline only shows height."
    );
}
