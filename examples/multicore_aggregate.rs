//! Multi-core stack aggregation (paper §IV and reference [10]).
//!
//! The paper's DeepBench experiments run 68 KNL / 26 SKX threads and
//! "aggregate the CPI stacks by averaging them component per component.
//! This is possible because all threads show homogeneous behavior."
//!
//! This example simulates N homogeneous cores (same profile, per-core seed
//! — each core's uncore share is already scaled into the preset), averages
//! the per-core stacks, and shows how per-core variation collapses into
//! one representative stack.
//!
//! ```text
//! cargo run --release --example multicore_aggregate [workload] [cores]
//! ```

use mstacks::prelude::*;
use mstacks::stats::aggregate::average_cpi_components;
use mstacks::workloads::SynthParams;
use std::sync::Mutex;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wname = args.get(1).map(String::as_str).unwrap_or("bwaves");
    let n_cores: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let uops = 150_000u64;

    let Some(Workload::Synth(params)) = spec::by_name(wname) else {
        panic!("unknown workload {wname}");
    };

    // One trace per core: same profile, different seed (what homogeneous
    // threads of a data-parallel run look like).
    let per_core: Vec<SynthParams> = (0..n_cores)
        .map(|c| {
            let mut p = params.clone();
            p.seed ^= (c as u64 + 1).wrapping_mul(0x9E37_79B9);
            p
        })
        .collect();

    let reports: Mutex<Vec<(usize, SimReport)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for (c, p) in per_core.iter().enumerate() {
            s.spawn({
                let reports = &reports;
                move || {
                    let r = Session::new(CoreConfig::broadwell())
                        .run(Workload::Synth(p.clone()).trace(uops))
                        .expect("simulation completes");
                    reports.lock().expect("lock").push((c, r));
                }
            });
        }
    });
    let mut reports = reports.into_inner().expect("lock");
    reports.sort_by_key(|(c, _)| *c);

    println!("{wname} on {n_cores}x bdw ({uops} uops per core)\n");
    println!("per-core commit-stage CPI:");
    for (c, r) in &reports {
        println!(
            "  core {c}: CPI {:.3} (dcache {:.3}, icache {:.3}, bpred {:.3})",
            r.cpi(),
            r.multi.commit.cpi_of(Component::Dcache),
            r.multi.commit.cpi_of(Component::Icache),
            r.multi.commit.cpi_of(Component::Bpred),
        );
    }

    let commits: Vec<&CpiStack> = reports.iter().map(|(_, r)| &r.multi.commit).collect();
    let avg = average_cpi_components(&commits);
    println!("\naggregated (component-wise average, paper §IV):");
    for c in mstacks::core::COMPONENTS {
        if avg[c.index()] > 5e-4 {
            println!("  {:<12} {:>7.3}", c.label(), avg[c.index()]);
        }
    }
    println!("  {:<12} {:>7.3}", "TOTAL", avg.iter().sum::<f64>());

    // Homogeneity check: per-core CPI spread should be small.
    let cpis: Vec<f64> = reports.iter().map(|(_, r)| r.cpi()).collect();
    let mean = cpis.iter().sum::<f64>() / cpis.len() as f64;
    let spread = cpis
        .iter()
        .map(|c| (c - mean).abs() / mean)
        .fold(0.0f64, f64::max);
    println!(
        "\nmax per-core deviation from the mean CPI: {:.1}% — {}",
        spread * 100.0,
        if spread < 0.15 {
            "homogeneous, aggregation is representative (paper §IV)"
        } else {
            "heterogeneous; per-core stacks should be inspected individually"
        }
    );
}
