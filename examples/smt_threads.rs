//! Per-thread CPI stacks on an SMT core — the paper's §II extension.
//!
//! Co-runs two different profiles on one Broadwell core with 2-way SMT and
//! prints each thread's commit-stage stack, including the `smt` component:
//! cycles that thread lost to the co-runner's occupancy of shared
//! resources (fetch bandwidth, dispatch/commit slots, reservation
//! stations, issue ports).
//!
//! ```text
//! cargo run --release --example smt_threads [workload0] [workload1]
//! ```

use mstacks::core::Session;
use mstacks::prelude::*;
use mstacks::stats::render::cpi_stack_lines;
use mstacks::workloads::{SharedTraceBuffer, TraceBuffer};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let w0 = args.get(1).map(String::as_str).unwrap_or("imagick");
    let w1 = args.get(2).map(String::as_str).unwrap_or("mcf");
    let uops = 150_000u64;

    let wl0 = spec::by_name(w0).unwrap_or_else(|| panic!("unknown workload {w0}"));
    let wl1 = spec::by_name(w1).unwrap_or_else(|| panic!("unknown workload {w1}"));

    // One capture per workload feeds the solo baselines and the SMT run.
    let buf0 = TraceBuffer::capture(&wl0, uops).shared();
    let buf1 = TraceBuffer::capture(&wl1, uops).shared();
    let solo0 = Session::new(CoreConfig::broadwell())
        .run(buf0.cursor())
        .expect("simulation completes");
    let solo1 = Session::new(CoreConfig::broadwell())
        .run(buf1.cursor())
        .expect("simulation completes");

    let report = Session::new(CoreConfig::broadwell())
        .run_threads(vec![buf0.cursor(), buf1.cursor()])
        .expect("simulation completes");

    println!("2-way SMT on bdw: {w0} + {w1} ({uops} uops per thread)\n");
    for (tid, (t, (name, solo))) in report
        .threads
        .iter()
        .zip([(w0, &solo0), (w1, &solo1)])
        .enumerate()
    {
        println!(
            "thread {tid} ({name}): CPI {:.3} (solo {:.3}, slowdown {:.2}x)",
            t.cpi(),
            solo.cpi(),
            t.cpi() / solo.cpi()
        );
        print!("{}", cpi_stack_lines(&t.multi.commit, 40));
        let smt_total: f64 = t
            .multi
            .stacks()
            .iter()
            .map(|s| s.cpi_of(Component::Smt))
            .sum::<f64>()
            / 3.0;
        println!(
            "  → mean smt component across stages: {smt_total:.3} CPI lost to the co-runner\n"
        );
    }
    println!(
        "The per-thread stacks separate *intrinsic* stalls (the thread's own cache\n\
         misses, dependences) from *interference* (the smt component) — Eyerman &\n\
         Eeckhout's per-thread accounting, measured at every stage as §III suggests."
    );
}
