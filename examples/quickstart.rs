//! Quickstart: simulate one workload and print its three CPI stacks.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [core]
//! ```
//!
//! Workloads: any name from `mstacks::workloads::spec` (default `mcf`).
//! Cores: `bdw`, `knl`, `skx` (default `bdw`).

use mstacks::prelude::*;
use mstacks::stats::render::cpi_stack_lines;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wname = args.get(1).map(String::as_str).unwrap_or("mcf");
    let cname = args.get(2).map(String::as_str).unwrap_or("bdw");

    let workload = spec::by_name(wname).unwrap_or_else(|| {
        let names: Vec<String> = spec::all().iter().map(|w| w.name()).collect();
        panic!("unknown workload {wname}; available: {}", names.join(", "));
    });
    let cfg = match cname {
        "bdw" => CoreConfig::broadwell(),
        "knl" => CoreConfig::knights_landing(),
        "skx" => CoreConfig::skylake_server(),
        other => panic!("unknown core {other} (use bdw, knl or skx)"),
    };

    println!("simulating {wname} on {cname} (300k micro-ops)…");
    let report = Session::new(cfg)
        .run(workload.trace(300_000))
        .expect("simulation completes");

    println!(
        "\n{} micro-ops in {} cycles → CPI {:.3} (IPC {:.2})\n",
        report.result.committed_uops,
        report.result.cycles,
        report.cpi(),
        report.result.ipc(),
    );
    for stack in report.multi.stacks() {
        println!("{}", cpi_stack_lines(stack, 44));
    }
    println!(
        "The same execution, three valid stacks: frontend components shrink from\n\
         dispatch to commit, backend components grow (paper §III-A). Together they\n\
         bound the benefit of fixing each bottleneck — try `bottleneck_hunt` next."
    );
}
