//! Per-stage wall-time breakdown of the fig1 configuration (mcf on
//! Broadwell, full accountant set) over a pre-decoded trace buffer.
//! Run with `MSTACKS_STAGE_PROF=1` to populate the profile:
//!
//! ```sh
//! MSTACKS_STAGE_PROF=1 cargo run --release --example stage_times
//! ```

use mstacks_core::Session;
use mstacks_model::CoreConfig;
use mstacks_workloads::{spec, SharedTraceBuffer, TraceBuffer};

fn main() {
    let uops: u64 = std::env::var("MSTACKS_UOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let buf = TraceBuffer::capture(&spec::mcf(), uops).shared();
    let t = std::time::Instant::now();
    let r = Session::new(CoreConfig::broadwell())
        .run(buf.cursor())
        .expect("runs");
    let dt = t.elapsed().as_secs_f64();
    println!(
        "fig1: {uops} uops, {} cycles, {:.2} Mu/s, {:.0} ns/cycle",
        r.result.cycles,
        uops as f64 / dt / 1e6,
        dt * 1e9 / r.result.cycles as f64
    );
    if let Some((cycles, ns)) = mstacks_pipeline::stage_prof_snapshot() {
        let total: u64 = ns.iter().sum();
        for (name, t) in mstacks_pipeline::STAGE_PROF_NAMES.iter().zip(ns) {
            println!(
                "  {name:10} {:6.1} ns/cycle  ({:4.1}%)",
                t as f64 / cycles as f64,
                t as f64 * 100.0 / total as f64
            );
        }
    }
}
