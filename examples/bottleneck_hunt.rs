//! Bottleneck hunting with multi-stage bounds — the paper's intended
//! workflow.
//!
//! 1. Run the application once with multi-stage accounting.
//! 2. Read off, for every stall source, the *range* of CPI you could
//!    recover by fixing it (min/max over the dispatch, issue and commit
//!    stacks).
//! 3. Verify the prediction by actually idealizing each structure and
//!    re-simulating — something only a simulator can do, which is exactly
//!    why bounded estimates from one run are valuable on hardware.
//!
//! ```text
//! cargo run --release --example bottleneck_hunt [workload] [core]
//! ```

use mstacks::prelude::*;

fn core_by_name(name: &str) -> CoreConfig {
    match name {
        "bdw" => CoreConfig::broadwell(),
        "knl" => CoreConfig::knights_landing(),
        "skx" => CoreConfig::skylake_server(),
        other => panic!("unknown core {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wname = args.get(1).map(String::as_str).unwrap_or("povray");
    let cname = args.get(2).map(String::as_str).unwrap_or("knl");
    let workload = spec::by_name(wname).unwrap_or_else(|| panic!("unknown workload {wname}"));
    let cfg = core_by_name(cname);
    let uops = 300_000;

    let base = Session::new(cfg.clone())
        .run(workload.trace(uops))
        .expect("simulation completes");
    println!(
        "{wname} on {cname}: CPI {:.3}\n\npredicted recovery ranges (one profiling run):",
        base.cpi()
    );
    let mut ranked: Vec<(Component, f64, f64)> = [
        Component::Icache,
        Component::Bpred,
        Component::Dcache,
        Component::AluLat,
        Component::Depend,
        Component::Microcode,
    ]
    .into_iter()
    .map(|c| {
        let (lo, hi) = base.multi.bounds(c);
        (c, lo, hi)
    })
    .filter(|&(_, _, hi)| hi > 0.005)
    .collect();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("no NaNs"));
    for (c, lo, hi) in &ranked {
        println!(
            "  {:<12} could recover {:.3} – {:.3} CPI",
            c.label(),
            lo,
            hi
        );
    }

    println!("\nverification (re-simulating with each structure idealized):");
    let checks: [(Component, IdealFlags); 4] = [
        (Component::Icache, IdealFlags::none().with_perfect_icache()),
        (Component::Bpred, IdealFlags::none().with_perfect_bpred()),
        (Component::Dcache, IdealFlags::none().with_perfect_dcache()),
        (
            Component::AluLat,
            IdealFlags::none().with_single_cycle_alu(),
        ),
    ];
    for (c, ideal) in checks {
        let (_lo, hi) = base.multi.bounds(c);
        if hi <= 0.005 {
            continue;
        }
        let r = Session::new(cfg.clone())
            .with_ideal(ideal)
            .run(workload.trace(uops))
            .expect("simulation completes");
        let actual = base.cpi() - r.cpi();
        let verdict = if base.multi.contains(c, actual) {
            "within the predicted range".to_string()
        } else {
            format!(
                "outside (by {:+.3}) — a second-order effect, see paper §V-A",
                base.multi.bound_error(c, actual)
            )
        };
        println!("  {:<12} actual {:+.3} → {}", c.label(), actual, verdict);
    }
}
