//! Cycle stacks over time (paper reference [10]): interval-sampled
//! commit-stage stacks exposing phase behaviour that one aggregate stack
//! averages away.
//!
//! The demo concatenates two very different phases — a cache-resident
//! compute kernel, then a memory-bound pointer chase — and renders one
//! "heat strip" per component: each character is one interval, darker
//! means a larger share of that interval's cycles.
//!
//! ```text
//! cargo run --release --example phase_stacks [workload0] [workload1]
//! ```

use mstacks::core::interval::{render_strips, IntervalAccountant};
use mstacks::pipeline::Core;
use mstacks::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let w0 = args.get(1).map(String::as_str).unwrap_or("exchange2");
    let w1 = args.get(2).map(String::as_str).unwrap_or("mcf");
    let per_phase = 120_000u64;
    let interval = 4_000u64;

    let a = spec::by_name(w0).unwrap_or_else(|| panic!("unknown workload {w0}"));
    let b = spec::by_name(w1).unwrap_or_else(|| panic!("unknown workload {w1}"));
    let seq = Workload::Sequence(vec![(a, per_phase), (b, per_phase)]);
    let trace = seq.trace(2 * per_phase);

    let cfg = CoreConfig::broadwell();
    let mut acct = IntervalAccountant::new(cfg.accounting_width(), interval);
    let mut core = Core::new(cfg, IdealFlags::none(), trace);
    let result = core.run(&mut acct).expect("simulation completes");
    let intervals = acct.finish();

    println!(
        "two-phase run: {per_phase} uops of {w0}, then {per_phase} of {w1} \
         ({} cycles total, {} intervals of {interval} cycles)\n",
        result.cycles,
        intervals.len(),
    );
    println!("per-interval component shares (time → right):\n");
    print!("{}", render_strips(&intervals));

    // Locate the phase boundary: the dominant-component flip with the
    // longest stable run after it (skipping cache-warmup intervals).
    let doms: Vec<Component> = intervals.iter().map(IntervalAccountant::dominant).collect();
    let warmup = 5.min(doms.len());
    let mut best: Option<(usize, usize)> = None; // (flip index, run length)
    let mut i = warmup;
    while i + 1 < doms.len() {
        if doms[i] != doms[i + 1] {
            let run = doms[i + 1..]
                .iter()
                .take_while(|&&d| d == doms[i + 1])
                .count();
            if best.is_none_or(|(_, r)| run > r) {
                best = Some((i, run));
            }
        }
        i += 1;
    }
    if let Some((flip, _)) = best {
        println!(
            "\nphase change around interval {flip}: dominant component {} → {}",
            doms[flip],
            doms[flip + 1]
        );
    }
    println!(
        "\nAn aggregate stack over the same run would show a meaningless average of\n\
         the two phases; the interval view shows *when* each bottleneck ruled."
    );
}
