//! HPC analysis with FLOPS stacks: why does my kernel not reach peak
//! GFLOPS, and would a better cache even help?
//!
//! Runs the same sgemm shape in the two codegen styles the paper contrasts
//! (§V-B) — KNL-jit FMA-with-memory-operand on a KNL core, and SKX
//! load+broadcast+register-FMA on an SKX core — and prints the FLOPS
//! stacks in GFLOPS (paper Eq. (1)), next to the roofline-style summary.
//!
//! ```text
//! cargo run --release --example hpc_flops [m] [n] [k]
//! ```

use mstacks::prelude::*;
use mstacks::stats::render::flops_stack_lines;
use mstacks::workloads::{GemmConfig, GemmStyle};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dim = |i: usize, d: usize| args.get(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let cfg_g = GemmConfig {
        m: dim(1, 128),
        n: dim(2, 440),
        k: dim(3, 128),
        train: true,
    };
    let uops = 300_000;

    for (core, style) in [
        (CoreConfig::knights_landing(), GemmStyle::KnlJit),
        (CoreConfig::skylake_server(), GemmStyle::SkxBroadcast),
    ] {
        let lanes = (core.vector_bits / 32) as u8;
        let w = Workload::Gemm {
            cfg: cfg_g,
            style,
            lanes,
        };
        let report = Session::new(core.clone())
            .run(w.trace(uops))
            .expect("simulation completes");

        println!("== {} on {} ==", w.name(), core.name);
        println!(
            "IPC {:.2} of {} — looks {}; achieved {:.1} of {:.1} GFLOPS ({:.0}%)",
            report.result.ipc(),
            core.accounting_width(),
            if report.result.ipc() / f64::from(core.accounting_width()) > 0.7 {
                "healthy"
            } else {
                "stalled"
            },
            report.gflops(core.freq_ghz),
            core.peak_gflops(),
            report.gflops(core.freq_ghz) / core.peak_gflops() * 100.0,
        );
        print!("{}", flops_stack_lines(&report.flops, core.freq_ghz, 40));

        // The punchline the paper draws from these stacks:
        let n = report.flops.normalized();
        let mem = n[FlopsComponent::Memory.index()];
        let dep = n[FlopsComponent::Depend.index()];
        if mem > dep {
            println!(
                "→ dominated by FMAs waiting on loads ({:.0}%): the jit-style memory-operand\n\
                 \x20 FMAs serialize on the L1 — restructure towards register reuse.\n",
                mem * 100.0
            );
        } else {
            println!(
                "→ dominated by dependences ({:.0}%): FMAs serialize behind the broadcast —\n\
                 \x20 more accumulators / deeper unrolling would help.\n",
                dep * 100.0
            );
        }
    }
}
