//! End-to-end service tests over real sockets: boot a server on an
//! ephemeral port, drive it with the in-repo client, and check the
//! result-cache semantics the service promises — byte-identical hits,
//! no cross-key collisions, single-flight, backpressure, and response
//! bytes identical to the CLI's golden-pinned `--json` output.

use mstacks_serve::client::Client;
use mstacks_serve::{Server, ServerConfig};

fn small_server() -> (mstacks_serve::ServerHandle, Client) {
    let handle = Server::spawn(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

#[test]
fn healthz_and_stats_respond() {
    let (handle, mut c) = small_server();
    let h = c.get("/healthz").unwrap();
    assert_eq!((h.status, h.body.as_str()), (200, "{\"ok\":true}"));
    let s = c.get("/v1/stats").unwrap();
    assert_eq!(s.status, 200);
    assert!(s.body.contains("\"cache\""), "{}", s.body);
    assert!(s.body.contains("\"pool\""), "{}", s.body);
    handle.shutdown();
}

#[test]
fn simulate_hit_is_byte_identical_to_its_miss() {
    let (handle, mut c) = small_server();
    let body = r#"{"workload":"mcf","core":"bdw","uops":20000}"#;
    let miss = c.post("/v1/simulate", body).unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("X-Cache"), Some("miss"));
    // The audit member is part of the schema even with no audit.
    assert!(miss.body.contains("\"audit\":null"), "{}", miss.body);
    let hit = c.post("/v1/simulate", body).unwrap();
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("X-Cache"), Some("hit"));
    assert_eq!(hit.body, miss.body, "hit must replay the exact miss bytes");
    handle.shutdown();
}

#[test]
fn response_bytes_match_the_cli_json_schema() {
    // The serve path and the CLI must serialize the same report through
    // the same emitter: compare against an in-process run of the same
    // pipeline the CLI uses for `simulate --json`.
    use mstacks_core::{jsonfmt, Session};
    use mstacks_model::coretab;
    use mstacks_workloads::{spec, SharedTraceBuffer, TraceBuffer};

    let (handle, mut c) = small_server();
    let got = c
        .post(
            "/v1/simulate",
            r#"{"workload":"lbm","core":"skx","uops":20000}"#,
        )
        .unwrap();
    assert_eq!(got.status, 200, "{}", got.body);
    let cfg = coretab::builtin("skx").unwrap();
    let buf = TraceBuffer::capture(&spec::lbm(), 20_000).shared();
    let report = Session::new(cfg).run(buf.cursor()).expect("runs");
    let want = jsonfmt::sim_report(&report, None);
    assert_eq!(got.body, want, "service bytes must equal the CLI emitter");
    handle.shutdown();
}

#[test]
fn distinct_flags_plans_and_cores_get_distinct_entries() {
    let (handle, mut c) = small_server();
    let variants = [
        r#"{"workload":"mcf","uops":20000}"#,
        r#"{"workload":"mcf","uops":20000,"ideal":"dcache"}"#,
        r#"{"workload":"mcf","uops":20000,"ideal":"bpred"}"#,
        r#"{"workload":"mcf","uops":20000,"sample":"500:1500:8000"}"#,
        r#"{"workload":"mcf","uops":20000,"core":"knl"}"#,
    ];
    let mut bodies = Vec::new();
    for v in variants {
        let r = c.post("/v1/simulate", v).unwrap();
        assert_eq!(r.status, 200, "{v}: {}", r.body);
        assert_eq!(r.header("X-Cache"), Some("miss"), "{v} must not collide");
        bodies.push(r.body);
    }
    for i in 0..bodies.len() {
        for j in i + 1..bodies.len() {
            assert_ne!(bodies[i], bodies[j], "distinct requests, distinct results");
        }
    }
    handle.shutdown();
}

#[test]
fn corun_endpoint_returns_the_corun_schema() {
    let (handle, mut c) = small_server();
    let r = c
        .post("/v1/corun", r#"{"workloads":["mcf","lbm"],"uops":20000}"#)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"cores\":["), "{}", r.body);
    assert!(r.body.contains("\"interference_cycles\""), "{}", r.body);
    assert!(r.body.contains("\"shared\""), "{}", r.body);
    // Bad arity is a 400, not a 500.
    let bad = c.post("/v1/corun", r#"{"workloads":["mcf"]}"#).unwrap();
    assert_eq!(bad.status, 400);
    handle.shutdown();
}

#[test]
fn sweep_lattice_rides_the_cache() {
    let (handle, mut c) = small_server();
    // The 16-subset IdealFlags lattice, twice: the second pass must be
    // all hits, so the overall hit rate is ≥ 50%.
    let flags = ["icache", "dcache", "bpred", "alu"];
    let mut points = Vec::new();
    for mask in 0..16u32 {
        let list: Vec<&str> = flags
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| *f)
            .collect();
        points.push(format!(
            r#"{{"workload":"mcf","uops":15000,"ideal":"{}"}}"#,
            list.join(",")
        ));
    }
    let body = format!(r#"{{"points":[{}]}}"#, points.join(","));
    let first = c.post("/v1/sweep", &body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("X-Cache-Misses"), Some("16"));
    let second = c.post("/v1/sweep", &body).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Cache-Hits"), Some("16"), "all warm");
    assert_eq!(second.body, first.body, "sweep hits replay the same bytes");
    handle.shutdown();
}

#[test]
fn concurrent_identical_requests_simulate_once() {
    let (handle, _c) = small_server();
    let addr = handle.addr();
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let r = c
                        .post("/v1/simulate", r#"{"workload":"bwaves","uops":40000}"#)
                        .unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                    r.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0]);
    }
    let stats = handle.stats_json();
    // Single-flight: exactly one cache miss across the 6 requests.
    assert!(
        stats.contains("\"cache\":{\"hits\":5,\"misses\":1"),
        "{stats}"
    );
    handle.shutdown();
}

#[test]
fn over_budget_requests_get_429_with_retry_after() {
    // A tiny debt budget and no fast lane: the second big request must
    // be rejected while the first is still running.
    let handle = Server::spawn(ServerConfig {
        shards: 1,
        debt_budget_uops: 600_000,
        fast_lane_uops: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr();
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        // 500k µops of detailed simulation holds the debt for a while.
        c.post("/v1/simulate", r#"{"workload":"mcf","uops":500000}"#)
            .unwrap()
    });
    // Wait until the big job is actually admitted (debt outstanding)
    // before probing, so the probe can't win the race and reject *it*.
    let mut stats = Client::connect(addr).unwrap();
    for _ in 0..500 {
        let s = stats.get("/v1/stats").unwrap().body;
        if !s.contains("\"debt_uops\":0}") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    // Keep poking until we observe the debt window. Every probe uses a
    // fresh µop count (fresh cache key), so each one actually reaches
    // admission control instead of hitting the cache.
    let mut rejected = None;
    for i in 0..100u64 {
        let mut c = Client::connect(addr).unwrap();
        let r = c
            .post(
                "/v1/simulate",
                &format!(r#"{{"workload":"lbm","uops":{}}}"#, 400_000 + i),
            )
            .unwrap();
        if r.status == 429 {
            rejected = Some(r);
            break;
        }
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let r = rejected.expect("saw a 429 while the big job held the debt");
    let retry: u64 = r
        .header("Retry-After")
        .expect("429 carries Retry-After")
        .parse()
        .expect("integer seconds");
    assert!(retry >= 1);
    assert!(r.body.contains("\"error\""), "{}", r.body);
    assert_eq!(slow.join().unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn small_requests_ride_the_fast_lane_past_a_busy_queue() {
    let handle = Server::spawn(ServerConfig {
        shards: 1,
        debt_budget_uops: 2_000_000,
        fast_lane_uops: 50_000,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr();
    // Park the single shard worker on a long cold run…
    let big = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.post("/v1/simulate", r#"{"workload":"cactus","uops":1500000}"#)
            .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    // …and watch a small interactive query finish long before it.
    let mut c = Client::connect(addr).unwrap();
    let t = std::time::Instant::now();
    let small = c
        .post("/v1/simulate", r#"{"workload":"exchange2","uops":20000}"#)
        .unwrap();
    let small_latency = t.elapsed();
    assert_eq!(small.status, 200, "{}", small.body);
    assert!(
        small_latency < std::time::Duration::from_secs(2),
        "fast lane latency {small_latency:?}"
    );
    let stats = handle.stats_json();
    assert!(stats.contains("\"fast_lane\":1"), "{stats}");
    assert_eq!(big.join().unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn bad_requests_are_400s_and_unknown_routes_404() {
    let (handle, mut c) = small_server();
    assert_eq!(c.post("/v1/simulate", "not json").unwrap().status, 400);
    assert_eq!(
        c.post("/v1/simulate", r#"{"workload":"nope"}"#)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        c.post("/v1/simulate", r#"{"workload":"mcf","core":"p4"}"#)
            .unwrap()
            .status,
        400
    );
    assert_eq!(c.post("/v1/nope", "{}").unwrap().status, 404);
    assert_eq!(c.get("/nope").unwrap().status, 404);
    handle.shutdown();
}
