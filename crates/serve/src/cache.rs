//! Content-addressed result cache: canonical request string → response
//! bytes, with an LRU byte budget and single-flight computation.
//!
//! The digest in [`CacheKey`] is the shard/log address; *equality* is
//! always the full canonical string, so a 64-bit collision can never
//! serve the wrong bytes. Entries store the exact response body — the
//! golden-pinned JSON the simulator emitted — so a hit is byte-identical
//! to the miss that populated it.
//!
//! Single-flight: the first requester for a key becomes the *leader* and
//! computes; concurrent requesters for the same key block on a condvar
//! and receive the leader's bytes, so N simultaneous identical requests
//! cost one simulation. If the leader fails (admission rejection,
//! simulation error), waiters wake, see the slot cleared, and the next
//! one takes over leadership.

use mstacks_core::cachekey::CacheKey;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a resident entry.
    pub hits: u64,
    /// Requests that computed and inserted.
    pub misses: u64,
    /// Requests that waited for a concurrent leader's result.
    pub joined: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident (canonical keys + response bodies).
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

enum Slot {
    /// A leader is computing this entry.
    Building,
    /// Resident response with its LRU timestamp.
    Ready { body: Arc<Vec<u8>>, used: u64 },
}

struct Inner {
    slots: HashMap<String, Slot>,
    stats: CacheStats,
    tick: u64,
}

/// What a lookup resolved to.
pub enum Fetched {
    /// Served from cache (or from a concurrent leader's computation).
    Hit(Arc<Vec<u8>>),
    /// This caller computed and inserted the entry.
    Computed(Arc<Vec<u8>>),
}

impl Fetched {
    /// The response bytes either way.
    pub fn body(&self) -> &Arc<Vec<u8>> {
        match self {
            Fetched::Hit(b) | Fetched::Computed(b) => b,
        }
    }

    /// True when served without computing.
    pub fn was_hit(&self) -> bool {
        matches!(self, Fetched::Hit(_))
    }
}

/// The single-flight, LRU-bounded result cache (see module docs).
pub struct ResultCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    budget_bytes: usize,
}

impl ResultCache {
    /// A cache bounded at ~`budget_bytes` of resident keys + bodies.
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                stats: CacheStats::default(),
                tick: 0,
            }),
            ready: Condvar::new(),
            budget_bytes,
        }
    }

    /// Returns the cached bytes for `key`, computing them with `compute`
    /// on this thread if absent (single-flight across threads).
    ///
    /// `compute` errors propagate to the caller and leave no entry — the
    /// next requester retries.
    pub fn get_or_compute<E>(
        &self,
        key: &CacheKey,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<Fetched, E> {
        let canon = key.canonical();
        let mut inner = self.inner.lock().expect("cache poisoned");
        loop {
            match inner.slots.get(canon) {
                Some(Slot::Ready { .. }) => {
                    inner.tick += 1;
                    inner.stats.hits += 1;
                    let now = inner.tick;
                    if let Some(Slot::Ready { body, used }) = inner.slots.get_mut(canon) {
                        *used = now;
                        return Ok(Fetched::Hit(body.clone()));
                    }
                    unreachable!("entry vanished under the lock");
                }
                Some(Slot::Building) => {
                    inner.stats.joined += 1;
                    inner = self.ready.wait(inner).expect("cache poisoned");
                    // Loop: either Ready now (hit), or the leader failed
                    // and the slot is gone (this caller leads the retry).
                }
                None => {
                    inner.slots.insert(canon.to_string(), Slot::Building);
                    inner.stats.misses += 1;
                    drop(inner);
                    let mut guard = ClearOnDrop {
                        cache: self,
                        canon,
                        armed: true,
                    };
                    let body = match compute() {
                        Ok(b) => Arc::new(b),
                        Err(e) => return Err(e), // guard clears Building
                    };
                    guard.armed = false;
                    drop(guard);
                    let mut inner = self.inner.lock().expect("cache poisoned");
                    inner.tick += 1;
                    let used = inner.tick;
                    inner.stats.resident_bytes += canon.len() + body.len();
                    inner.slots.insert(
                        canon.to_string(),
                        Slot::Ready {
                            body: body.clone(),
                            used,
                        },
                    );
                    inner.stats.entries = inner.slots.len();
                    self.evict_over_budget(&mut inner);
                    drop(inner);
                    self.ready.notify_all();
                    return Ok(Fetched::Computed(body));
                }
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache poisoned").stats
    }

    fn evict_over_budget(&self, inner: &mut Inner) {
        while inner.stats.resident_bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { used, .. } => Some((*used, k.clone())),
                    Slot::Building => None,
                })
                .min()
                .map(|(_, k)| k);
            let Some(k) = victim else { return };
            // Keep at least the newest entry resident even if it alone
            // exceeds the budget (otherwise an oversized response would
            // evict itself and thrash).
            if inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count()
                <= 1
            {
                return;
            }
            if let Some(Slot::Ready { body, .. }) = inner.slots.remove(&k) {
                inner.stats.resident_bytes = inner
                    .stats
                    .resident_bytes
                    .saturating_sub(k.len() + body.len());
                inner.stats.evictions += 1;
            }
            inner.stats.entries = inner.slots.len();
        }
    }
}

/// Clears a `Building` slot if the leader unwound or errored, waking
/// waiters so one of them can take over.
struct ClearOnDrop<'a> {
    cache: &'a ResultCache,
    canon: &'a str,
    armed: bool,
}

impl Drop for ClearOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut inner) = self.cache.inner.lock() {
                inner.slots.remove(self.canon);
                inner.stats.entries = inner.slots.len();
            }
            self.cache.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_core::cachekey::KeyBuilder;

    fn key(tag: &str) -> CacheKey {
        KeyBuilder::new("test").field("tag", tag).finish()
    }

    #[test]
    fn hit_returns_the_exact_inserted_bytes() {
        let cache = ResultCache::new(1 << 20);
        let k = key("a");
        let first = cache
            .get_or_compute::<()>(&k, || Ok(b"{\"x\":1}".to_vec()))
            .unwrap();
        assert!(!first.was_hit());
        let second = cache
            .get_or_compute::<()>(&k, || panic!("must not recompute"))
            .unwrap();
        assert!(second.was_hit());
        assert_eq!(second.body().as_slice(), first.body().as_slice());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // Budget fits two ~100-byte entries, not three.
        let cache = ResultCache::new(260);
        for tag in ["a", "b", "c"] {
            cache
                .get_or_compute::<()>(&key(tag), || Ok(vec![b'x'; 100]))
                .unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions >= 1, "{s:?}");
        assert!(s.resident_bytes <= 260, "{s:?}");
        // "a" was the least recently used entry: it recomputes.
        let again = cache
            .get_or_compute::<()>(&key("a"), || Ok(vec![b'x'; 100]))
            .unwrap();
        assert!(!again.was_hit());
    }

    #[test]
    fn recency_updates_on_hit() {
        let one = key("a").canonical().len() + 100;
        let cache = ResultCache::new(2 * one + 10);
        cache
            .get_or_compute::<()>(&key("a"), || Ok(vec![b'x'; 100]))
            .unwrap();
        cache
            .get_or_compute::<()>(&key("b"), || Ok(vec![b'x'; 100]))
            .unwrap();
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache
            .get_or_compute::<()>(&key("a"), || panic!("resident"))
            .unwrap()
            .was_hit());
        cache
            .get_or_compute::<()>(&key("c"), || Ok(vec![b'x'; 100]))
            .unwrap();
        assert!(cache
            .get_or_compute::<()>(&key("a"), || Err(()))
            .expect("a stayed resident")
            .was_hit());
        assert!(cache.get_or_compute::<()>(&key("b"), || Err(())).is_err());
    }

    #[test]
    fn failed_compute_leaves_no_entry() {
        let cache = ResultCache::new(1 << 20);
        let k = key("a");
        assert!(cache.get_or_compute(&k, || Err("boom")).is_err());
        let ok = cache
            .get_or_compute::<()>(&k, || Ok(b"fine".to_vec()))
            .unwrap();
        assert!(!ok.was_hit());
    }

    #[test]
    fn concurrent_same_key_requests_compute_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = Arc::new(ResultCache::new(1 << 20));
        let computes = AtomicU64::new(0);
        let k = key("shared");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = cache.clone();
                let k = &k;
                let computes = &computes;
                s.spawn(move || {
                    let got = cache
                        .get_or_compute::<()>(k, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(b"body".to_vec())
                        })
                        .unwrap();
                    assert_eq!(got.body().as_slice(), b"body");
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        let s = cache.stats();
        // Exactly one leader computed; every other thread resolved to a
        // hit (after joining the in-flight computation or arriving late).
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.hits, 7, "{s:?}");
    }
}
