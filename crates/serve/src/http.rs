//! Minimal HTTP/1.1 over `std::net`: exactly what the service needs —
//! request-line + headers + `Content-Length` bodies, keep-alive
//! connections, fixed-length responses. No chunked encoding, no TLS, no
//! multipart; clients are the in-repo loadgen, CI smoke checks and
//! `curl`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Caps to keep a hostile or confused client from ballooning memory.
const MAX_HEADER_BYTES: usize = 16 * 1024;
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: String,
    /// Client asked to close after this response.
    pub close: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF between requests (client hung up keep-alive).
    Eof,
    /// Malformed request; the message is safe to echo in a 400.
    Bad(String),
    /// Socket-level failure.
    Io(std::io::Error),
}

/// Reads one request from a keep-alive connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<HttpRequest, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Eof),
        Ok(_) => {}
        Err(e) => return Err(ReadError::Io(e)),
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(ReadError::Bad(format!("malformed request line `{line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("unsupported version `{version}`")));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    let mut header_bytes = 0usize;
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => return Err(ReadError::Bad("truncated headers".to_string())),
            Ok(n) => header_bytes += n,
            Err(e) => return Err(ReadError::Io(e)),
        }
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ReadError::Bad("headers too large".to_string()));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header `{h}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad content-length `{value}`")))?;
            if content_length > MAX_BODY_BYTES {
                return Err(ReadError::Bad("body too large".to_string()));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ReadError::Io)?;
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Bad("body is not valid UTF-8".to_string()))?;
    Ok(HttpRequest {
        method,
        path,
        body,
        close,
    })
}

/// A response under construction.
pub struct HttpResponse {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    pub fn new(status: u16, reason: &'static str) -> Self {
        HttpResponse {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    pub fn json(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        let mut r = HttpResponse::new(status, reason);
        r.headers
            .push(("Content-Type".to_string(), "application/json".to_string()));
        r.body = body.into();
        r
    }

    /// A JSON error payload: `{"error": "..."}` with the message escaped.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Self {
        let body = format!("{{\"error\":\"{}\"}}", mstacks_core::jsonfmt::esc(message));
        HttpResponse::json(status, reason, body.into_bytes())
    }

    pub fn header(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes and writes the response (always with Content-Length).
    pub fn write(&self, stream: &mut TcpStream, close: bool) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Result<HttpRequest, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        read_request(&mut BufReader::new(server_side))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            "POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 18\r\n\r\n{\"workload\":\"mcf\"}",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.body, "{\"workload\":\"mcf\"}");
        assert!(!req.close);
    }

    #[test]
    fn honors_connection_close() {
        let req = roundtrip("GET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.close);
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            roundtrip("NONSENSE\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            roundtrip("GET / SPDY/9\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            roundtrip("GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
    }
}
