//! Decoding `/v1/*` JSON bodies into executable analysis requests, plus
//! their content-addressed cache keys and admission-cost estimates.
//!
//! The canonical identity of a request is built from round-trip-canonical
//! forms (see `mstacks_core::cachekey`): asking for `"core": "bdw"` and
//! posting the verbatim `.core` table that `cores dump bdw` prints are
//! the *same* cache entry.

use crate::jsonin::Value;
use mstacks_core::cachekey::{CacheKey, KeyBuilder};
use mstacks_core::{BadSpecMode, SamplePlan};
use mstacks_model::{coretab, CoreConfig, IdealFlags};
use mstacks_workloads::{spec, Workload};

/// A decoded, validated analysis request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request kind (drives execution and the response schema).
    pub kind: Kind,
    /// Core configuration (from a preset name or a verbatim table).
    pub core: CoreConfig,
    /// One workload for simulate, 2–4 for corun.
    pub workloads: Vec<Workload>,
    /// Idealization flags (default: none).
    pub ideal: IdealFlags,
    /// Optional interval-sampling plan (simulate only).
    pub sample: Option<SamplePlan>,
    /// Micro-ops per core.
    pub uops: u64,
}

/// The executable request kinds (`sweep` decodes into many `Simulate`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Simulate,
    CoRun,
}

/// A client error: reported as HTTP 400 with this message.
#[derive(Debug)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn bad(msg: impl Into<String>) -> BadRequest {
    BadRequest(msg.into())
}

impl Request {
    /// Decodes a `/v1/simulate` body.
    pub fn simulate(body: &Value) -> Result<Request, BadRequest> {
        let w = workload_field(body, "workload")?;
        let mut r = Request::common(Kind::Simulate, body, vec![w])?;
        if let Some(s) = body.get("sample") {
            let text = s
                .as_str()
                .ok_or_else(|| bad("`sample` must be a \"warmup:detailed:ff\" string"))?;
            r.sample = Some(SamplePlan::parse(text).map_err(bad)?);
        }
        Ok(r)
    }

    /// Decodes a `/v1/corun` body (2–4 workloads, no sampling — the same
    /// restriction as the CLI: fast-forwarding desynchronizes the shared
    /// uncore).
    pub fn corun(body: &Value) -> Result<Request, BadRequest> {
        let names = body
            .get("workloads")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("`workloads` must be an array of 2-4 workload names"))?;
        if !(2..=4).contains(&names.len()) {
            return Err(bad(format!(
                "corun takes 2-4 workloads (one per core), got {}",
                names.len()
            )));
        }
        if body.get("sample").is_some() {
            return Err(bad(
                "`sample` is not supported for co-run sessions (run cores in full detail)",
            ));
        }
        let workloads = names
            .iter()
            .map(|n| {
                let name = n
                    .as_str()
                    .ok_or_else(|| bad("workload names are strings"))?;
                by_name(name)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Request::common(Kind::CoRun, body, workloads)
    }

    /// Decodes a `/v1/sweep` body: `{"points": [<simulate body>...]}`.
    /// Each point keys independently (and identically to a direct
    /// `/v1/simulate` call), so repeated sweep points and the IdealFlags
    /// lattice are cache hits.
    pub fn sweep(body: &Value) -> Result<Vec<Request>, BadRequest> {
        let pts = body
            .get("points")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("`points` must be an array of simulate requests"))?;
        if pts.is_empty() {
            return Err(bad("`points` must not be empty"));
        }
        if pts.len() > 1024 {
            return Err(bad("`points` is capped at 1024 per request"));
        }
        pts.iter().map(Request::simulate).collect()
    }

    fn common(kind: Kind, body: &Value, workloads: Vec<Workload>) -> Result<Request, BadRequest> {
        let core = core_field(body)?;
        let uops = match body.get("uops") {
            None => 300_000,
            Some(v) => v
                .as_u64()
                .filter(|&u| u > 0)
                .ok_or_else(|| bad("`uops` must be a positive integer"))?,
        };
        let ideal = match body.get("ideal") {
            None => IdealFlags::none(),
            Some(v) => parse_ideal(
                v.as_str()
                    .ok_or_else(|| bad("`ideal` must be a comma-list string"))?,
            )?,
        };
        Ok(Request {
            kind,
            core,
            workloads,
            ideal,
            sample: None,
            uops,
        })
    }

    /// The content-addressed identity of this request. Every constituent
    /// is a canonical form: the `.core` table dump, the workload's total
    /// `Debug` serialization, the `Display` forms of the flag set and the
    /// plan (both round-trip through their parsers).
    pub fn cache_key(&self) -> CacheKey {
        let endpoint = match self.kind {
            Kind::Simulate => "simulate",
            Kind::CoRun => "corun",
        };
        let mut b = KeyBuilder::new(endpoint)
            .field("core", self.core.to_table())
            .field("cores", self.workloads.len())
            .field("ideal", self.ideal)
            .field("uops", self.uops)
            .field(
                "sample",
                self.sample
                    .as_ref()
                    .map_or("-".to_string(), |p| p.to_string()),
            )
            .field("badspec", format!("{:?}", BadSpecMode::GroundTruth));
        for w in &self.workloads {
            b = b.field("workload", format!("{w:?}"));
        }
        b.finish()
    }

    /// Admission-control cost estimate in µops: the total detailed µop
    /// count the engine will actually retire. Sampled runs only simulate
    /// their warmup+detailed windows; the fast-forward is a functional
    /// profile (~10× cheaper), priced at 1/8 of a detailed µop.
    pub fn cost_uops(&self) -> u64 {
        let per_core = match &self.sample {
            None => self.uops,
            Some(p) => {
                let round = p.warmup + p.detailed + p.ff;
                let detailed = (p.warmup + p.detailed) as f64 / round as f64;
                let ff = p.ff as f64 / round as f64 / 8.0;
                (self.uops as f64 * (detailed + ff)).ceil() as u64
            }
        };
        per_core * self.workloads.len() as u64
    }
}

fn workload_field(body: &Value, field: &str) -> Result<Workload, BadRequest> {
    let name = body
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| bad(format!("`{field}` must be a workload name string")))?;
    by_name(name)
}

fn by_name(name: &str) -> Result<Workload, BadRequest> {
    spec::by_name(name).ok_or_else(|| bad(format!("unknown workload `{name}`")))
}

/// `core` (preset name) or `core_table` (verbatim `.core` text); both
/// canonicalize through the table round trip. Default: `bdw`.
fn core_field(body: &Value) -> Result<CoreConfig, BadRequest> {
    match (body.get("core"), body.get("core_table")) {
        (Some(_), Some(_)) => Err(bad("give `core` or `core_table`, not both")),
        (Some(v), None) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad("`core` must be a preset name"))?;
            coretab::builtin(name).ok_or_else(|| {
                bad(format!(
                    "unknown core `{name}` (use {})",
                    coretab::BUILTIN_NAMES.join(", ")
                ))
            })
        }
        (None, Some(v)) => {
            let text = v
                .as_str()
                .ok_or_else(|| bad("`core_table` must be the .core file text"))?;
            coretab::parse(text).map_err(|e| bad(format!("bad core table: {e}")))
        }
        (None, None) => Ok(coretab::builtin("bdw").expect("bdw is built in")),
    }
}

fn parse_ideal(text: &str) -> Result<IdealFlags, BadRequest> {
    let mut f = IdealFlags::none();
    for part in text.split(',').filter(|p| !p.is_empty()) {
        f = match part.trim() {
            "icache" => f.with_perfect_icache(),
            "dcache" => f.with_perfect_dcache(),
            "bpred" => f.with_perfect_bpred(),
            "alu" => f.with_single_cycle_alu(),
            other => {
                return Err(bad(format!(
                    "unknown ideal flag `{other}` (use icache, dcache, bpred, alu)"
                )))
            }
        };
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin;

    fn body(text: &str) -> Value {
        jsonin::parse(text).expect("test body parses")
    }

    #[test]
    fn simulate_decodes_with_defaults() {
        let r = Request::simulate(&body(r#"{"workload":"mcf"}"#)).expect("decodes");
        assert_eq!(r.kind, Kind::Simulate);
        assert_eq!(r.core.name, "bdw");
        assert_eq!(r.uops, 300_000);
        assert!(r.ideal.is_baseline());
        assert!(r.sample.is_none());
    }

    #[test]
    fn preset_and_verbatim_table_share_a_key() {
        let preset = Request::simulate(&body(r#"{"workload":"mcf","core":"skx"}"#)).unwrap();
        let table = coretab::builtin("skx").unwrap().to_table();
        let verbatim = Request::simulate(
            &jsonin::parse(&format!(
                r#"{{"workload":"mcf","core_table":{}}}"#,
                quote(&table)
            ))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            preset.cache_key().canonical(),
            verbatim.cache_key().canonical()
        );
    }

    #[test]
    fn distinct_ideal_flags_and_plans_never_collide() {
        let variants = [
            r#"{"workload":"mcf"}"#.to_string(),
            r#"{"workload":"mcf","ideal":"dcache"}"#.to_string(),
            r#"{"workload":"mcf","ideal":"icache"}"#.to_string(),
            r#"{"workload":"mcf","ideal":"dcache,icache"}"#.to_string(),
            r#"{"workload":"mcf","sample":"500:2500:12000"}"#.to_string(),
            r#"{"workload":"mcf","sample":"500:2500:1200"}"#.to_string(),
            r#"{"workload":"mcf","uops":300001}"#.to_string(),
            r#"{"workload":"lbm"}"#.to_string(),
        ];
        let keys: Vec<String> = variants
            .iter()
            .map(|v| {
                Request::simulate(&body(v))
                    .unwrap()
                    .cache_key()
                    .canonical()
                    .to_string()
            })
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "{} vs {}", variants[i], variants[j]);
            }
        }
    }

    #[test]
    fn corun_validates_arity_and_keys_on_every_workload() {
        assert!(Request::corun(&body(r#"{"workloads":["mcf"]}"#)).is_err());
        let ab = Request::corun(&body(r#"{"workloads":["mcf","lbm"]}"#)).unwrap();
        let ba = Request::corun(&body(r#"{"workloads":["lbm","mcf"]}"#)).unwrap();
        // Core order is part of the identity (core 0 vs core 1 stacks).
        assert_ne!(ab.cache_key().canonical(), ba.cache_key().canonical());
        // And corun never aliases a simulate of the same workload.
        let sim = Request::simulate(&body(r#"{"workload":"mcf"}"#)).unwrap();
        assert_ne!(ab.cache_key().canonical(), sim.cache_key().canonical());
    }

    #[test]
    fn sweep_decodes_each_point_as_a_simulate() {
        let pts = Request::sweep(&body(
            r#"{"points":[{"workload":"mcf"},{"workload":"mcf"}]}"#,
        ))
        .unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(
            pts[0].cache_key().canonical(),
            pts[1].cache_key().canonical()
        );
        assert!(Request::sweep(&body(r#"{"points":[]}"#)).is_err());
    }

    #[test]
    fn cost_scales_with_cores_and_discounts_sampling() {
        let sim = Request::simulate(&body(r#"{"workload":"mcf","uops":100000}"#)).unwrap();
        assert_eq!(sim.cost_uops(), 100_000);
        let co = Request::corun(&body(r#"{"workloads":["mcf","lbm"],"uops":100000}"#)).unwrap();
        assert_eq!(co.cost_uops(), 200_000);
        let sampled = Request::simulate(&body(
            r#"{"workload":"mcf","uops":100000,"sample":"500:2500:12000"}"#,
        ))
        .unwrap();
        // warmup+detailed is 20% of the round, ff priced at 1/8: ~30k.
        assert!(sampled.cost_uops() < 40_000, "{}", sampled.cost_uops());
    }

    #[test]
    fn bad_bodies_fail_clean() {
        assert!(Request::simulate(&body(r#"{}"#)).is_err());
        assert!(Request::simulate(&body(r#"{"workload":"nope"}"#)).is_err());
        assert!(Request::simulate(&body(r#"{"workload":"mcf","uops":0}"#)).is_err());
        assert!(Request::simulate(&body(r#"{"workload":"mcf","ideal":"magic"}"#)).is_err());
        assert!(Request::simulate(&body(r#"{"workload":"mcf","core":"p4"}"#)).is_err());
        assert!(Request::corun(&body(r#"{"workloads":["mcf","lbm"],"sample":"1:2:3"}"#)).is_err());
    }

    fn quote(s: &str) -> String {
        let mut out = String::from("\"");
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}
