//! Sharded worker pool with admission control.
//!
//! Simulation jobs are CPU-bound and wildly variable (a cached-size 20k-µop
//! interactive probe vs. a 4M-µop detailed run), so the pool provides:
//!
//! * **Sharding**: requests land on `digest % shards`, so repeated
//!   requests for the same content keep their working set (decoded trace
//!   buffers, warmed allocator arenas) on one worker — the same atomic
//!   work-index discipline as the bench crate's sweep executor, with
//!   long-lived workers instead of scoped ones.
//! * **Admission control**: every job carries a µop-cost estimate; the
//!   pool tracks the total *debt* (estimated µops admitted but not yet
//!   retired) and rejects new work once the debt exceeds a budget. The
//!   rejection carries a `Retry-After` estimate derived from the debt and
//!   a calibrated engine throughput, so clients back off proportionally.
//! * **A fast lane**: jobs at or under the fast-lane threshold bypass the
//!   shard queues into a dedicated worker, so a small interactive query
//!   never sits behind a multi-million-µop run. Fast jobs are *always*
//!   admitted — they are the queries backpressure is protecting.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Admission rejection: the queue's estimated cycle debt exceeds budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Client back-off hint in seconds (the HTTP `Retry-After`).
    pub retry_after_secs: u64,
    /// Debt at rejection time, in estimated µops.
    pub debt_uops: u64,
}

/// Pool statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted onto a shard queue.
    pub admitted: u64,
    /// Jobs routed to the fast lane.
    pub fast_lane: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Jobs fully executed.
    pub executed: u64,
    /// Estimated µops admitted but not yet retired.
    pub debt_uops: u64,
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().expect("queue poisoned").push_back(job);
        self.ready.notify_one();
    }

    /// Blocks until a job arrives or the pool shuts down.
    fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, std::time::Duration::from_millis(50))
                .expect("queue poisoned");
            jobs = guard;
        }
    }
}

/// The sharded, debt-bounded worker pool (see module docs).
pub struct Pool {
    shards: Vec<Arc<Queue>>,
    fast: Arc<Queue>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    debt: Arc<AtomicU64>,
    debt_budget_uops: u64,
    fast_lane_uops: u64,
    /// Calibrated engine throughput for Retry-After estimates (µops/s).
    throughput_uops_per_sec: u64,
    admitted: AtomicU64,
    fast_count: AtomicU64,
    rejected: AtomicU64,
    executed: Arc<AtomicU64>,
}

impl Pool {
    /// Spawns `shards` shard workers plus one fast-lane worker.
    ///
    /// `debt_budget_uops` bounds the estimated µops outstanding across
    /// all shard queues; `fast_lane_uops` routes jobs at or under the
    /// threshold to the dedicated fast worker.
    pub fn new(shards: usize, debt_budget_uops: u64, fast_lane_uops: u64) -> Self {
        let shards = shards.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let debt = Arc::new(AtomicU64::new(0));
        let executed = Arc::new(AtomicU64::new(0));
        let queues: Vec<Arc<Queue>> = (0..shards).map(|_| Arc::new(Queue::new())).collect();
        let fast = Arc::new(Queue::new());
        let mut workers = Vec::with_capacity(shards + 1);
        for (i, q) in queues.iter().cloned().chain([fast.clone()]).enumerate() {
            let shutdown = shutdown.clone();
            let executed = executed.clone();
            let name = if i < shards {
                format!("mstacks-shard-{i}")
            } else {
                "mstacks-fastlane".to_string()
            };
            workers.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        while let Some(job) = q.pop(&shutdown) {
                            job();
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        Pool {
            shards: queues,
            fast,
            shutdown,
            workers,
            debt,
            debt_budget_uops,
            fast_lane_uops,
            throughput_uops_per_sec: 5_000_000,
            admitted: AtomicU64::new(0),
            fast_count: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            executed,
        }
    }

    /// Number of shard workers (excludes the fast lane).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Submits a job with content shard `shard` and estimated cost
    /// `cost_uops`. The job runs on a worker; the pool retires the debt
    /// when it finishes. Jobs over the current budget are rejected.
    pub fn submit(
        &self,
        shard: usize,
        cost_uops: u64,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), Rejected> {
        let fast = cost_uops <= self.fast_lane_uops;
        if !fast {
            // Optimistic add, roll back on over-budget: the race window
            // only ever over-rejects by one in-flight submission.
            let debt = self.debt.fetch_add(cost_uops, Ordering::AcqRel) + cost_uops;
            if debt > self.debt_budget_uops {
                self.debt.fetch_sub(cost_uops, Ordering::AcqRel);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                let retry = (debt / self.throughput_uops_per_sec).clamp(1, 30);
                return Err(Rejected {
                    retry_after_secs: retry,
                    debt_uops: debt - cost_uops,
                });
            }
        } else {
            self.debt.fetch_add(cost_uops, Ordering::AcqRel);
            self.fast_count.fetch_add(1, Ordering::Relaxed);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let debt = self.debt.clone();
        let wrapped: Job = Box::new(move || {
            job();
            debt.fetch_sub(cost_uops, Ordering::AcqRel);
        });
        if fast {
            self.fast.push(wrapped);
        } else {
            self.shards[shard % self.shards.len()].push(wrapped);
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            fast_lane: self.fast_count.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            debt_uops: self.debt.load(Ordering::Acquire),
        }
    }

    /// Signals workers to drain and exit, then joins them.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        for q in self.shards.iter().chain([&self.fast]) {
            q.ready.notify_one();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Detached workers exit via the shutdown flag's 50 ms poll; join
        // only in the explicit `shutdown()` path.
        self.shutdown.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn jobs_execute_and_debt_retires() {
        let pool = Pool::new(2, 1_000_000, 0);
        let (tx, rx) = mpsc::channel();
        for i in 0..8u64 {
            let tx = tx.clone();
            pool.submit(i as usize, 10_000, move || tx.send(i).unwrap())
                .expect("admitted");
        }
        let mut got: Vec<u64> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // Debt drains once jobs retire.
        for _ in 0..100 {
            if pool.stats().debt_uops == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.stats().debt_uops, 0);
        pool.shutdown();
    }

    #[test]
    fn over_budget_submissions_are_rejected_with_backoff() {
        let pool = Pool::new(1, 150_000, 0);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        // Park the single shard worker on a long job.
        pool.submit(0, 100_000, move || {
            let _ = hold_rx.recv();
        })
        .expect("first job fits");
        // Queue depth: second job fits the budget, third exceeds it.
        pool.submit(0, 50_000, || {}).expect("second job fits");
        let err = pool.submit(0, 50_000, || {}).expect_err("over budget");
        assert!(err.retry_after_secs >= 1);
        assert!(err.debt_uops >= 150_000);
        assert_eq!(pool.stats().rejected, 1);
        hold_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn fast_lane_bypasses_a_busy_shard_and_is_always_admitted() {
        let pool = Pool::new(1, 100_000, 20_000);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<&'static str>();
        // Saturate the only shard worker AND the debt budget.
        pool.submit(0, 100_000, move || {
            let _ = hold_rx.recv();
        })
        .expect("admitted");
        assert!(pool.submit(0, 50_000, || {}).is_err(), "budget is full");
        // A small job still gets through, on the fast worker, immediately.
        let tx = done_tx.clone();
        pool.submit(0, 10_000, move || tx.send("fast").unwrap())
            .expect("fast lane admits");
        assert_eq!(
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("fast job ran while the shard was parked"),
            "fast"
        );
        assert_eq!(pool.stats().fast_lane, 1);
        hold_tx.send(()).unwrap();
        pool.shutdown();
    }
}
