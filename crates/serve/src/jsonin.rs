//! Minimal JSON *parsing* (the emission side lives in
//! `mstacks_core::jsonfmt`). Recursive descent over the full JSON grammar
//! with the escapes the service's clients actually produce; numbers parse
//! as `f64`, which is exact for every integer the API accepts (µop counts
//! fit in 2⁵³ with room to spare).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `name` of an object, if present.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer content, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting guard: the service parses untrusted bodies on real threads.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by any
                            // client of this API; reject rather than
                            // mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape".to_string())?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v = parse(r#"{"workload":"mcf","core":"bdw","uops":300000,"ideal":"dcache"}"#)
            .expect("parses");
        assert_eq!(v.get("workload").and_then(Value::as_str), Some("mcf"));
        assert_eq!(v.get("uops").and_then(Value::as_u64), Some(300_000));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_points() {
        let v = parse(r#"{"points":[{"workload":"mcf"},{"workload":"lbm"}]}"#).expect("parses");
        let pts = v.get("points").and_then(Value::as_arr).expect("array");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].get("workload").and_then(Value::as_str), Some("lbm"));
    }

    #[test]
    fn strings_unescape() {
        let v = parse(r#""a\nb\"cA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\nb\"cA"));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(&("[".repeat(100) + &"]".repeat(100))).is_err());
    }

    #[test]
    fn literals() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert!(parse("tru").is_err());
    }
}
