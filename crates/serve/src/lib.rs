//! `mstacks-serve` — a zero-dependency HTTP/1.1 analysis service over the
//! mstacks simulator.
//!
//! The ROADMAP's production framing ("a system serving heavy traffic")
//! needs a long-lived, queryable entry point rather than one-shot CLI
//! binaries. This crate provides it with three cooperating mechanisms
//! (DESIGN.md §15):
//!
//! * a **content-addressed result cache** ([`cache::ResultCache`]):
//!   requests canonicalize to a string built from round-trip-canonical
//!   forms (`.core` table dump, workload `Debug`, `IdealFlags`/plan
//!   `Display`), FNV-1a-digested for sharding; a hit replays the exact
//!   response bytes the simulator emitted, single-flighted so concurrent
//!   identical requests simulate once;
//! * a **sharded worker pool** ([`pool::Pool`]): one queue+worker per
//!   shard keyed by content digest, plus a dedicated fast lane for small
//!   interactive jobs, with workload trace capture shared across requests
//!   through [`mstacks_workloads::CaptureRegistry`];
//! * **admission control**: every job carries a µop-cost estimate; when
//!   the pool's outstanding debt exceeds its budget the request gets
//!   `429 Too Many Requests` with a proportional `Retry-After`.
//!
//! # Endpoints
//!
//! | Route | Body | Response |
//! |---|---|---|
//! | `POST /v1/simulate` | `{"workload","core"∣"core_table","uops","ideal","sample"}` | the CLI's `--json` simulate schema, byte-identical |
//! | `POST /v1/sweep` | `{"points":[<simulate body>…]}` | `{"results":[…]}`, each point the simulate schema |
//! | `POST /v1/corun` | `{"workloads":[2–4 names],…}` | the CLI's corun schema |
//! | `GET /v1/stats` | — | cache/registry/pool counters |
//! | `GET /healthz` | — | `{"ok":true}` |
//!
//! Responses carry `X-Cache: hit|miss` (sweeps: `X-Cache-Hits`/`-Misses`
//! counts).
//!
//! # Quick start
//!
//! ```no_run
//! let handle = mstacks_serve::Server::spawn(mstacks_serve::ServerConfig::default())
//!     .expect("bind");
//! println!("listening on {}", handle.addr());
//! // POST {"workload":"mcf","core":"bdw"} to /v1/simulate …
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod jsonin;
pub mod pool;
pub mod request;

use cache::{Fetched, ResultCache};
use http::{HttpRequest, HttpResponse, ReadError};
use mstacks_core::{jsonfmt, CoRun, Session};
use mstacks_workloads::{CaptureRegistry, SharedTraceBuffer};
use pool::{Pool, Rejected};
use request::{BadRequest, Kind, Request};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Server tuning knobs (defaults suit a developer box and CI).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard workers (the fast lane adds one more thread).
    pub shards: usize,
    /// Result-cache byte budget (keys + response bodies).
    pub cache_bytes: usize,
    /// Capture-registry byte budget (decoded trace buffers).
    pub registry_bytes: usize,
    /// Admission budget: estimated µops admitted but not yet retired.
    pub debt_budget_uops: u64,
    /// Jobs at or under this estimate ride the fast lane.
    pub fast_lane_uops: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(2).clamp(1, 8))
            .unwrap_or(4);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            cache_bytes: 64 << 20,
            registry_bytes: 256 << 20,
            debt_budget_uops: 16_000_000,
            fast_lane_uops: 100_000,
        }
    }
}

/// Shared service state.
struct App {
    cache: ResultCache,
    registry: CaptureRegistry,
    pool: Pool,
    started: Instant,
    requests: AtomicU64,
}

/// A running server: bound address plus a shutdown switch.
pub struct Server;

/// Handle to a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    app: Arc<App>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the accept loop and the worker pool,
    /// and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let app = Arc::new(App {
            cache: ResultCache::new(config.cache_bytes),
            registry: CaptureRegistry::new(config.registry_bytes),
            pool: Pool::new(
                config.shards,
                config.debt_budget_uops,
                config.fast_lane_uops,
            ),
            started: Instant::now(),
            requests: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let app = app.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("mstacks-accept".to_string())
                .spawn(move || accept_loop(&listener, &app, &stop))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            app,
            stop,
            acceptor: Some(acceptor),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `GET /v1/stats` payload, for in-process embedders (loadgen,
    /// smoke tests) that want counters without a round trip.
    pub fn stats_json(&self) -> String {
        stats_json(&self.app)
    }

    /// Stops accepting connections and joins the accept thread. Worker
    /// threads drain and exit once the shared state drops.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Poke the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, app: &Arc<App>, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let app = app.clone();
        let _ = std::thread::Builder::new()
            .name("mstacks-conn".to_string())
            .spawn(move || serve_connection(stream, &app));
    }
}

/// Handles one keep-alive connection until close/EOF/error.
fn serve_connection(stream: TcpStream, app: &Arc<App>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(60)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::Eof) => return,
            Err(ReadError::Bad(msg)) => {
                let _ = HttpResponse::error(400, "Bad Request", &msg).write(&mut write_half, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        app.requests.fetch_add(1, Ordering::Relaxed);
        let close = req.close;
        let resp = route(app, &req);
        if resp.write(&mut write_half, close).is_err() || close {
            return;
        }
    }
}

fn route(app: &Arc<App>, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => HttpResponse::json(200, "OK", &b"{\"ok\":true}"[..]),
        ("GET", "/v1/stats") => HttpResponse::json(200, "OK", stats_json(app).into_bytes()),
        ("POST", "/v1/simulate") => one_shot(app, &req.body, Request::simulate),
        ("POST", "/v1/corun") => one_shot(app, &req.body, Request::corun),
        ("POST", "/v1/sweep") => sweep(app, &req.body),
        ("POST", _) | ("GET", _) => HttpResponse::error(404, "Not Found", "unknown route"),
        _ => HttpResponse::error(405, "Method Not Allowed", "use GET or POST"),
    }
}

/// Parses, executes and serializes a single-result endpoint.
fn one_shot(
    app: &Arc<App>,
    body: &str,
    decode: impl Fn(&jsonin::Value) -> Result<Request, BadRequest>,
) -> HttpResponse {
    let parsed = match jsonin::parse(body) {
        Ok(v) => v,
        Err(e) => return HttpResponse::error(400, "Bad Request", &format!("bad JSON: {e}")),
    };
    let req = match decode(&parsed) {
        Ok(r) => r,
        Err(e) => return HttpResponse::error(400, "Bad Request", &e.0),
    };
    match execute_cached(app, req) {
        Ok(f) => {
            let cache_state = if f.was_hit() { "hit" } else { "miss" };
            HttpResponse::json(200, "OK", f.body().as_slice()).header("X-Cache", cache_state)
        }
        Err(e) => e.into_response(),
    }
}

/// `/v1/sweep`: every point keys (and caches) exactly like a direct
/// simulate call; cold points fan out over the worker pool concurrently
/// via the same atomic work-index discipline as the bench sweep executor.
fn sweep(app: &Arc<App>, body: &str) -> HttpResponse {
    let parsed = match jsonin::parse(body) {
        Ok(v) => v,
        Err(e) => return HttpResponse::error(400, "Bad Request", &format!("bad JSON: {e}")),
    };
    let points = match Request::sweep(&parsed) {
        Ok(p) => p,
        Err(e) => return HttpResponse::error(400, "Bad Request", &e.0),
    };
    let n = points.len();
    let mut results: Vec<Option<Result<Fetched, ComputeError>>> = Vec::new();
    results.resize_with(n, || None);
    let results = Mutex::new(results);
    let next = AtomicU64::new(0);
    let lanes = (app.pool.shards() + 1).min(n);
    std::thread::scope(|s| {
        for _ in 0..lanes {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= n {
                    return;
                }
                let out = execute_cached(app, points[i].clone());
                results.lock().expect("sweep results")[i] = Some(out);
            });
        }
    });
    let results = results.into_inner().expect("sweep results");
    let mut bodies = Vec::with_capacity(n);
    let (mut hits, mut misses) = (0usize, 0usize);
    let mut worst: Option<ComputeError> = None;
    for r in results {
        match r.expect("every sweep point resolved") {
            Ok(f) => {
                if f.was_hit() {
                    hits += 1;
                } else {
                    misses += 1;
                }
                bodies.push(String::from_utf8_lossy(f.body()).into_owned());
            }
            Err(e) => worst = Some(worst.map_or(e.clone(), |w| w.worse(e))),
        }
    }
    if let Some(e) = worst {
        return e.into_response();
    }
    let body = format!("{{\"results\":[{}]}}", bodies.join(","));
    HttpResponse::json(200, "OK", body.into_bytes())
        .header("X-Cache-Hits", hits)
        .header("X-Cache-Misses", misses)
}

/// Why a request failed to execute.
#[derive(Debug, Clone)]
enum ComputeError {
    /// Admission control said no.
    Backpressure(Rejected),
    /// The simulation itself failed (deadlock watchdog, …).
    Failed(String),
}

impl ComputeError {
    fn into_response(self) -> HttpResponse {
        match self {
            ComputeError::Backpressure(r) => {
                HttpResponse::error(429, "Too Many Requests", "queue over budget; retry later")
                    .header("Retry-After", r.retry_after_secs)
            }
            ComputeError::Failed(msg) => HttpResponse::error(500, "Internal Server Error", &msg),
        }
    }

    /// Merges two sweep-point failures: server errors dominate
    /// backpressure; larger Retry-After dominates smaller.
    fn worse(self, other: ComputeError) -> ComputeError {
        match (self, other) {
            (ComputeError::Failed(m), _) | (_, ComputeError::Failed(m)) => ComputeError::Failed(m),
            (ComputeError::Backpressure(a), ComputeError::Backpressure(b)) => {
                ComputeError::Backpressure(if a.retry_after_secs >= b.retry_after_secs {
                    a
                } else {
                    b
                })
            }
        }
    }
}

/// A one-shot rendezvous the leader blocks on while its job runs on a
/// pool worker.
type ResultSlot = Arc<(Mutex<Option<Result<Vec<u8>, String>>>, Condvar)>;

/// The cache-then-pool execution path shared by every analysis endpoint.
fn execute_cached(app: &Arc<App>, req: Request) -> Result<Fetched, ComputeError> {
    let key = req.cache_key();
    let shard = key.shard(app.pool.shards());
    let cost = req.cost_uops();
    app.cache.get_or_compute(&key, || {
        // Leader: run on the worker pool (admission-controlled) and wait.
        let slot: ResultSlot = Arc::new((Mutex::new(None), Condvar::new()));
        let job_slot = slot.clone();
        let job_app = app.clone();
        app.pool
            .submit(shard, cost, move || {
                let out = compute(&job_app, &req);
                let (lock, cv) = &*job_slot;
                *lock.lock().expect("result slot") = Some(out);
                cv.notify_all();
            })
            .map_err(ComputeError::Backpressure)?;
        let (lock, cv) = &*slot;
        let mut got = lock.lock().expect("result slot");
        while got.is_none() {
            got = cv.wait(got).expect("result slot");
        }
        got.take()
            .expect("slot filled")
            .map_err(ComputeError::Failed)
    })
}

/// Runs the simulation for `req` and serializes the golden-pinned JSON.
/// Trace decode goes through the shared capture registry, so concurrent
/// and repeated requests for one workload profile decode it once.
fn compute(app: &Arc<App>, req: &Request) -> Result<Vec<u8>, String> {
    match req.kind {
        Kind::Simulate => {
            let w = &req.workloads[0];
            let buf = app.registry.get_or_capture(w, req.uops);
            let session = Session::new(req.core.clone()).with_ideal(req.ideal);
            if let Some(plan) = req.sample {
                let sampled = session
                    .run_sampled(req.uops, plan, &buf)
                    .map_err(|e| format!("simulation failed: {e}"))?;
                Ok(jsonfmt::sampled_report(&sampled).into_bytes())
            } else {
                let report = session
                    .run(buf.cursor())
                    .map_err(|e| format!("simulation failed: {e}"))?;
                Ok(jsonfmt::sim_report(&report, None).into_bytes())
            }
        }
        Kind::CoRun => {
            let names: Vec<String> = req.workloads.iter().map(|w| w.name()).collect();
            let bufs: Vec<_> = req
                .workloads
                .iter()
                .map(|w| app.registry.get_or_capture(w, req.uops))
                .collect();
            let report = CoRun::new(req.core.clone())
                .with_ideal(req.ideal)
                .run(bufs.iter().map(|b| b.cursor()).collect())
                .map_err(|e| format!("simulation failed: {e}"))?;
            Ok(jsonfmt::corun_report(&names, &report, None).into_bytes())
        }
    }
}

/// `GET /v1/stats` payload.
fn stats_json(app: &Arc<App>) -> String {
    let c = app.cache.stats();
    let r = app.registry.stats();
    let p = app.pool.stats();
    format!(
        "{{\"uptime_secs\":{},\"requests\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"joined\":{},\"evictions\":{},\"resident_bytes\":{},\"entries\":{}}},\
         \"registry\":{{\"hits\":{},\"misses\":{},\"joined\":{},\"evictions\":{},\"resident_bytes\":{}}},\
         \"pool\":{{\"admitted\":{},\"fast_lane\":{},\"rejected\":{},\"executed\":{},\"debt_uops\":{}}}}}",
        app.started.elapsed().as_secs(),
        app.requests.load(Ordering::Relaxed),
        c.hits,
        c.misses,
        c.joined,
        c.evictions,
        c.resident_bytes,
        c.entries,
        r.hits,
        r.misses,
        r.joined,
        r.evictions,
        r.resident_bytes,
        p.admitted,
        p.fast_lane,
        p.rejected,
        p.executed,
        p.debt_uops,
    )
}
