//! A curl-equivalent in-repo HTTP client: exactly enough to exercise the
//! service from the loadgen binary, CI smoke checks and integration
//! tests, over a persistent keep-alive connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    /// Header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        let req = format!(
            "POST {path} HTTP/1.1\r\nHost: mstacks\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        let req = format!("GET {path} HTTP/1.1\r\nHost: mstacks\r\n\r\n");
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line `{}`", line.trim_end())))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(bad("truncated headers"));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                let value = value.trim().to_string();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name.to_string(), value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            headers,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
        })
    }
}
