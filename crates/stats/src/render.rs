//! Plain-text rendering: stacked bars and aligned tables.
//!
//! The experiment binaries print every figure as text; these helpers keep
//! the output readable and consistent.

use mstacks_core::{Component, CpiStack, FlopsStack, COMPONENTS, FLOPS_COMPONENTS};
use mstacks_mem::HitLevel;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use mstacks_stats::TextTable;
///
/// let mut t = TextTable::new(vec!["app".into(), "CPI".into()]);
/// t.row(vec!["mcf".into(), "1.41".into()]);
/// let s = t.to_string();
/// assert!(s.contains("mcf"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells that
    /// contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:w$}", c, w = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            print_row(f, r)?;
        }
        Ok(())
    }
}

/// Renders one CPI stack as labelled component lines with proportional
/// bars, e.g. for paper Fig. 1/3-style output.
pub fn cpi_stack_lines(stack: &CpiStack, bar_width: usize) -> String {
    let total = stack.total_cpi().max(1e-12);
    let mut out = String::new();
    out.push_str(&format!(
        "{} stack: CPI = {:.3}\n",
        stack.stage,
        stack.total_cpi()
    ));
    for &c in COMPONENTS.iter() {
        let v = stack.cpi_of(c);
        if v < 1e-9 {
            continue;
        }
        let n = ((v / total) * bar_width as f64).round() as usize;
        out.push_str(&format!(
            "  {:<12} {:>7.3}  {}\n",
            c.label(),
            v,
            "#".repeat(n.max(1))
        ));
        // Per-level refinement of the Dcache component (paper §III-A).
        if c == Component::Dcache {
            for (name, level) in [
                ("· l2", HitLevel::L2),
                ("· l3", HitLevel::L3),
                ("· mem", HitLevel::Mem),
            ] {
                let lv = stack.dcache_level_cpi(level);
                if lv > 1e-9 {
                    out.push_str(&format!("    {name:<10} {lv:>7.3}\n"));
                }
            }
        }
    }
    out
}

/// Renders a FLOPS stack in GFLOPS units (paper Fig. 5 right).
pub fn flops_stack_lines(stack: &FlopsStack, freq_ghz: f64, bar_width: usize) -> String {
    let comps = stack.gflops_components(freq_ghz);
    let peak: f64 = comps.iter().sum();
    let mut out = String::new();
    out.push_str(&format!(
        "FLOPS stack: achieved {:.1} / {:.1} GFLOPS\n",
        stack.achieved_gflops(freq_ghz),
        peak
    ));
    for &c in FLOPS_COMPONENTS.iter() {
        let v = comps[c.index()];
        if v < 1e-9 {
            continue;
        }
        let n = ((v / peak.max(1e-12)) * bar_width as f64).round() as usize;
        out.push_str(&format!(
            "  {:<12} {:>8.2}  {}\n",
            c.label(),
            v,
            "#".repeat(n.max(1))
        ));
    }
    out
}

/// Formats a signed number compactly for tables.
pub fn fmt_signed(v: f64) -> String {
    format!("{v:+.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_core::{Component, FlopsComponent, Stage};

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a-long-name".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have the same width structure.
        assert!(lines[2].starts_with("a-long-name"));
        assert!(lines[3].starts_with("b          "));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["plain".into(), "with,comma".into()]);
        t.row(vec!["quote\"d".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"quote\"\"d\",x");
    }

    #[test]
    fn cpi_render_skips_zero_components() {
        let mut counts = [0.0; COMPONENTS.len()];
        counts[Component::Base.index()] = 25.0;
        counts[Component::Dcache.index()] = 75.0;
        let s = CpiStack::from_counts(Stage::Commit, counts, 100, 100);
        let text = cpi_stack_lines(&s, 40);
        assert!(text.contains("base"));
        assert!(text.contains("dcache"));
        assert!(!text.contains("bpred"));
        assert!(text.contains("CPI = 1.000"));
    }

    #[test]
    fn flops_render_shows_achieved() {
        let mut counts = [0.0; FLOPS_COMPONENTS.len()];
        counts[FlopsComponent::Base.index()] = 50.0;
        counts[FlopsComponent::Memory.index()] = 50.0;
        let s = FlopsStack::from_counts(counts, 100, 64);
        let text = flops_stack_lines(&s, 2.0, 40);
        assert!(text.contains("achieved 64.0 / 128.0 GFLOPS"));
        assert!(text.contains("memory"));
    }

    #[test]
    fn fmt_signed_shows_sign() {
        assert_eq!(fmt_signed(0.5), "+0.500");
        assert_eq!(fmt_signed(-0.25), "-0.250");
    }
}
