//! Component-wise stack aggregation (paper §IV: "we aggregate the CPI
//! stacks by averaging them component per component").

use mstacks_core::{CpiStack, FlopsStack, COMPONENTS, FLOPS_COMPONENTS};

/// Averages the CPI components of several stacks (e.g. the same stage
/// across threads or benchmarks). Returns per-component CPI values in
/// canonical order.
///
/// # Panics
///
/// Panics if `stacks` is empty.
pub fn average_cpi_components(stacks: &[&CpiStack]) -> [f64; COMPONENTS.len()] {
    assert!(!stacks.is_empty(), "cannot average zero stacks");
    let mut out = [0.0; COMPONENTS.len()];
    for s in stacks {
        for (o, c) in out.iter_mut().zip(COMPONENTS.iter()) {
            *o += s.cpi_of(*c);
        }
    }
    for o in &mut out {
        *o /= stacks.len() as f64;
    }
    out
}

/// Averages the *normalized* components of several FLOPS stacks (the
/// paper's Fig. 4 aggregation). Returns fractions summing to ≈1.
///
/// # Panics
///
/// Panics if `stacks` is empty.
pub fn average_flops_normalized(stacks: &[&FlopsStack]) -> [f64; FLOPS_COMPONENTS.len()] {
    assert!(!stacks.is_empty(), "cannot average zero stacks");
    let mut out = [0.0; FLOPS_COMPONENTS.len()];
    for s in stacks {
        let n = s.normalized();
        for (o, v) in out.iter_mut().zip(n.iter()) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= stacks.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_core::{Component, FlopsComponent, Stage};

    fn cpi_stack(base: f64, dcache: f64) -> CpiStack {
        let mut counts = [0.0; COMPONENTS.len()];
        counts[Component::Base.index()] = base;
        counts[Component::Dcache.index()] = dcache;
        CpiStack::from_counts(Stage::Issue, counts, 100, 100)
    }

    #[test]
    fn cpi_average_is_componentwise() {
        let a = cpi_stack(25.0, 75.0);
        let b = cpi_stack(25.0, 25.0);
        let avg = average_cpi_components(&[&a, &b]);
        assert!((avg[Component::Base.index()] - 0.25).abs() < 1e-12);
        assert!((avg[Component::Dcache.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flops_average_normalizes_first() {
        let mut c1 = [0.0; FLOPS_COMPONENTS.len()];
        c1[FlopsComponent::Base.index()] = 100.0; // all base
        let a = FlopsStack::from_counts(c1, 100, 64);
        let mut c2 = [0.0; FLOPS_COMPONENTS.len()];
        c2[FlopsComponent::Memory.index()] = 500.0; // all memory, 5× cycles
        let b = FlopsStack::from_counts(c2, 500, 64);
        let avg = average_flops_normalized(&[&a, &b]);
        // Normalization makes both stacks weigh equally.
        assert!((avg[FlopsComponent::Base.index()] - 0.5).abs() < 1e-12);
        assert!((avg[FlopsComponent::Memory.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero stacks")]
    fn empty_average_panics() {
        let _ = average_cpi_components(&[]);
    }
}
