//! The Fig. 2 error methodology.
//!
//! For every (benchmark, component) pair where the component is at least
//! 10 % of total CPI *in any of the three stacks*, the paper compares each
//! stack's predicted component against the actual CPI reduction measured
//! by re-simulating with that structure idealized. The "error" of a single
//! stack is `predicted − actual`; the error of the multi-stage
//! representation is zero when the actual reduction falls within the
//! [min, max] bounds, else the distance to the nearest bound.

use crate::boxplot::Boxplot;
use mstacks_core::{Component, MultiStackReport};

/// One (benchmark, component) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSample {
    /// Benchmark name.
    pub benchmark: String,
    /// Component under study.
    pub component: Component,
    /// Dispatch-stack prediction error (`predicted − actual`).
    pub dispatch: f64,
    /// Issue-stack prediction error.
    pub issue: f64,
    /// Commit-stack prediction error.
    pub commit: f64,
    /// Multi-stage bound error (0 when the actual falls in the bounds).
    pub multi: f64,
}

/// Collects [`ErrorSample`]s for one component and summarizes them.
#[derive(Debug, Clone, Default)]
pub struct ComponentErrorStudy {
    samples: Vec<ErrorSample>,
}

impl ComponentErrorStudy {
    /// An empty study.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ≥10 %-of-total-CPI relevance filter: `true` if `c` contributes
    /// at least `threshold` (fraction) of the total CPI in *any* stack.
    /// The paper uses 0.10 to "filter out zeros".
    pub fn is_relevant(multi: &MultiStackReport, c: Component, threshold: f64) -> bool {
        multi.stacks().iter().any(|s| {
            let total = s.total_cpi();
            total > 0.0 && s.cpi_of(c) / total >= threshold
        })
    }

    /// Adds the observation for one benchmark: `multi` is its baseline
    /// multi-stack report, `actual` the measured CPI reduction from
    /// idealizing the structure behind `c`.
    pub fn add(&mut self, benchmark: &str, multi: &MultiStackReport, c: Component, actual: f64) {
        self.samples.push(ErrorSample {
            benchmark: benchmark.to_string(),
            component: c,
            dispatch: multi.dispatch.cpi_of(c) - actual,
            issue: multi.issue.cpi_of(c) - actual,
            commit: multi.commit.cpi_of(c) - actual,
            multi: multi.bound_error(c, actual),
        });
    }

    /// All collected samples.
    pub fn samples(&self) -> &[ErrorSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Boxplots over (dispatch, issue, commit, multi) errors.
    pub fn boxplots(&self) -> Option<[Boxplot; 4]> {
        let col = |f: fn(&ErrorSample) -> f64| {
            Boxplot::from_samples(&self.samples.iter().map(f).collect::<Vec<_>>())
        };
        Some([
            col(|s| s.dispatch)?,
            col(|s| s.issue)?,
            col(|s| s.commit)?,
            col(|s| s.multi)?,
        ])
    }

    /// Mean absolute error per stack kind (dispatch, issue, commit, multi).
    pub fn mean_abs_errors(&self) -> Option<[f64; 4]> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let mut out = [0.0; 4];
        for s in &self.samples {
            out[0] += s.dispatch.abs();
            out[1] += s.issue.abs();
            out[2] += s.commit.abs();
            out[3] += s.multi.abs();
        }
        for o in &mut out {
            *o /= n;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_core::{CpiStack, Stage, COMPONENTS};

    fn stack(stage: Stage, base: f64, dcache: f64) -> CpiStack {
        let mut counts = [0.0; COMPONENTS.len()];
        counts[Component::Base.index()] = base;
        counts[Component::Dcache.index()] = dcache;
        CpiStack::from_counts(stage, counts, 1_000, 1_000)
    }

    fn multi(d: f64, i: f64, c: f64) -> MultiStackReport {
        MultiStackReport {
            dispatch: stack(Stage::Dispatch, 250.0, d * 1_000.0),
            issue: stack(Stage::Issue, 250.0, i * 1_000.0),
            commit: stack(Stage::Commit, 250.0, c * 1_000.0),
            fetch: None,
        }
    }

    #[test]
    fn relevance_filter() {
        let m = multi(0.05, 0.08, 0.2);
        // Dcache is 0.2 / 0.45 ≈ 44% of commit CPI → relevant at 10%.
        assert!(ComponentErrorStudy::is_relevant(
            &m,
            Component::Dcache,
            0.10
        ));
        // Bpred is zero everywhere.
        assert!(!ComponentErrorStudy::is_relevant(
            &m,
            Component::Bpred,
            0.10
        ));
    }

    #[test]
    fn errors_per_stack_and_multi() {
        let mut study = ComponentErrorStudy::new();
        let m = multi(0.06, 0.15, 0.30);
        // Actual reduction 0.29 is within [0.06, 0.30] → multi error 0.
        study.add("mcf", &m, Component::Dcache, 0.29);
        let s = &study.samples()[0];
        assert!((s.dispatch + 0.23).abs() < 1e-12);
        assert!((s.issue + 0.14).abs() < 1e-12);
        assert!((s.commit - 0.01).abs() < 1e-12);
        assert_eq!(s.multi, 0.0);
    }

    #[test]
    fn out_of_bounds_multi_error() {
        let mut study = ComponentErrorStudy::new();
        let m = multi(0.06, 0.15, 0.30);
        study.add("cactus", &m, Component::Dcache, 0.40);
        // Nearest bound 0.30 → error −0.10 (prediction too low).
        assert!((study.samples()[0].multi + 0.10).abs() < 1e-12);
    }

    #[test]
    fn boxplots_and_mae() {
        let mut study = ComponentErrorStudy::new();
        let m = multi(0.06, 0.15, 0.30);
        for (name, actual) in [("a", 0.10), ("b", 0.20), ("c", 0.35)] {
            study.add(name, &m, Component::Dcache, actual);
        }
        let boxes = study.boxplots().unwrap();
        assert_eq!(boxes[0].n, 3);
        let mae = study.mean_abs_errors().unwrap();
        // Multi MAE must be the smallest (bounds absorb in-range cases).
        assert!(mae[3] <= mae[0] && mae[3] <= mae[1] && mae[3] <= mae[2]);
    }

    #[test]
    fn empty_study() {
        let s = ComponentErrorStudy::new();
        assert!(s.is_empty());
        assert!(s.boxplots().is_none());
        assert!(s.mean_abs_errors().is_none());
    }
}
