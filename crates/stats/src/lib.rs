//! Statistics and reporting utilities for `mstacks` experiments.
//!
//! * [`boxplot`] — five-number summaries (the representation of paper
//!   Fig. 2: quartile boxes, median line, whiskers to the extremes).
//! * [`error`] — the Fig. 2 error methodology: per-component differences
//!   between a stack's prediction and the measured CPI reduction, with the
//!   multi-stage bound error, and the ≥10 %-of-CPI relevance filter.
//! * [`aggregate`] — component-wise averaging of stacks across benchmarks
//!   or threads (paper §IV).
//! * [`render`] — plain-text stacked bars and aligned tables used by the
//!   experiment binaries that regenerate every figure and table.

pub mod aggregate;
pub mod boxplot;
pub mod error;
pub mod render;

pub use aggregate::{average_cpi_components, average_flops_normalized};
pub use boxplot::Boxplot;
pub use error::{ComponentErrorStudy, ErrorSample};
pub use render::TextTable;
