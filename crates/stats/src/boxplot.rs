//! Five-number summaries.

/// A five-number summary: whiskers at the extremes, a box bounded by the
/// first and third quartile, and the median — exactly the representation
/// of paper Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// Smallest sample.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Boxplot {
    /// Computes the summary of `samples` (need not be sorted).
    ///
    /// Returns `None` for an empty slice. Quartiles use linear
    /// interpolation between order statistics (type-7, the numpy default).
    pub fn from_samples(samples: &[f64]) -> Option<Boxplot> {
        if samples.is_empty() {
            return None;
        }
        let mut s: Vec<f64> = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Some(Boxplot {
            min: s[0],
            q1: quantile(&s, 0.25),
            median: quantile(&s, 0.5),
            q3: quantile(&s, 0.75),
            max: s[s.len() - 1],
            n: s.len(),
        })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl std::fmt::Display for Boxplot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:+.3} |{:+.3} {:+.3} {:+.3}| {:+.3}] (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Boxplot::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let b = Boxplot::from_samples(&[2.0]).unwrap();
        assert_eq!(b.min, 2.0);
        assert_eq!(b.median, 2.0);
        assert_eq!(b.max, 2.0);
    }

    #[test]
    fn known_quartiles() {
        // 1..=5: q1 = 2, median = 3, q3 = 4 (type-7).
        let b = Boxplot::from_samples(&[5.0, 3.0, 1.0, 4.0, 2.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.iqr(), 2.0);
        assert_eq!(b.n, 5);
    }

    #[test]
    fn interpolated_quartiles() {
        // 1..=4: median = 2.5.
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((b.median - 2.5).abs() < 1e-12);
        assert!((b.q1 - 1.75).abs() < 1e-12);
        assert!((b.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_numbers() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        let s = b.to_string();
        assert!(s.contains("n=3"));
    }
}
