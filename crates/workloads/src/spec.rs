//! Named synthetic profiles standing in for the paper's SPEC CPU 2017
//! benchmarks.
//!
//! Each profile targets the bottleneck structure the paper reports (or
//! implies) for the matching benchmark — see `DESIGN.md` for the
//! substitution rationale. The five profiles the paper's Fig. 3 case
//! studies rely on encode their specific mechanisms:
//!
//! * [`mcf`] — pointer-chasing over a memory-sized working set plus hard
//!   branches: large Dcache and bpred components that *overlap* (Table I,
//!   Fig. 3(a)).
//! * [`cactus`] — instruction footprint ≫ L1I *and* data footprint sized to
//!   contend for the same unified L2: the I↔D coupling of Fig. 3(b), plus a
//!   D-cache-dependent dependence component.
//! * [`bwaves`] — many concurrent data streams that keep the stride
//!   prefetcher firing into the L2 MSHRs, with a code footprint slightly
//!   above the L1I: I-cache misses queue behind prefetches (Fig. 3(c)).
//! * [`povray`] — microcoded instructions and hard branches (Fig. 3(d) on
//!   KNL).
//! * [`imagick`] — serial chains of multi-cycle ALU/FP operations: the
//!   issue stack blames ALU latency where dispatch/commit see dependences
//!   (Fig. 3(e)).

use crate::addr::AddrPattern;
use crate::synth::{Mix, SynthParams};
use crate::Workload;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Baseline parameters every profile starts from.
fn base(name: &'static str, seed: u64) -> SynthParams {
    SynthParams {
        name,
        seed,
        n_blocks: 120,
        block_len: (4, 9),
        ifootprint: 12 * KB,
        loop_frac: 0.35,
        random_frac: 0.10,
        call_frac: 0.08,
        indirect_frac: 0.0,
        taken_prob: 0.5,
        loop_trip: (4, 24),
        mix: Mix {
            alu: 4.0,
            lea: 1.2,
            mul: 0.3,
            div: 0.02,
            load: 2.4,
            store: 1.0,
            ..Mix::default()
        },
        microcode_frac: 0.0,
        ilp: 4,
        fp_ilp: 2,
        load_dep_frac: 0.35,
        branch_dep_frac: 0.25,
        mem: vec![
            (AddrPattern::Random { bytes: 16 * KB }, 3.0),
            (
                AddrPattern::Stream {
                    bytes: 128 * KB,
                    stride: 64,
                },
                1.0,
            ),
        ],
        vec_lanes: 8,
    }
}

/// `mcf`-like: memory-latency-bound pointer chasing + hard branches.
pub fn mcf() -> Workload {
    let mut p = base("mcf", 0x6D63_6601);
    p.random_frac = 0.55;
    p.loop_frac = 0.15;
    p.taken_prob = 0.5;
    p.ilp = 3;
    p.load_dep_frac = 0.45;
    p.branch_dep_frac = 0.9;
    p.mix.load = 2.6;
    p.mix.store = 0.8;
    p.mem = vec![
        (AddrPattern::Chase { bytes: 2 * MB }, 0.05),
        (AddrPattern::Random { bytes: 256 * KB }, 0.30),
        (AddrPattern::Random { bytes: 16 * KB }, 5.0),
    ];
    Workload::Synth(p)
}

/// `cactuBSSN`-like: huge code footprint coupled to a large data footprint
/// through the unified L2.
pub fn cactus() -> Workload {
    let mut p = base("cactus", 0x6361_6301);
    p.n_blocks = 900;
    p.ifootprint = 130 * KB;
    p.block_len = (4, 9);
    p.loop_frac = 0.45;
    p.random_frac = 0.03;
    p.call_frac = 0.05;
    p.loop_trip = (3, 8);
    p.ilp = 2;
    p.fp_ilp = 2;
    p.load_dep_frac = 0.5;
    p.mix = Mix {
        alu: 2.0,
        lea: 1.0,
        mul: 0.2,
        load: 2.8,
        store: 1.2,
        fp_add: 1.2,
        fp_mul: 1.2,
        ..Mix::default()
    };
    p.mem = vec![
        (AddrPattern::Random { bytes: 160 * KB }, 1.2),
        (
            AddrPattern::Stream {
                bytes: 4 * MB,
                stride: 8,
            },
            0.5,
        ),
        (AddrPattern::Random { bytes: 16 * KB }, 2.2),
    ];
    Workload::Synth(p)
}

/// `bwaves`-like: many concurrent memory streams (prefetcher-saturating)
/// with a code footprint slightly above the L1I.
pub fn bwaves() -> Workload {
    let mut p = base("bwaves", 0x6277_6101);
    p.n_blocks = 700;
    p.ifootprint = 56 * KB;
    p.block_len = (8, 16);
    p.loop_frac = 0.55;
    p.random_frac = 0.01;
    p.call_frac = 0.02;
    p.loop_trip = (8, 48);
    p.ilp = 6;
    p.fp_ilp = 4;
    p.load_dep_frac = 0.5;
    p.mix = Mix {
        alu: 1.2,
        lea: 1.0,
        load: 3.4,
        store: 1.1,
        fp_add: 1.4,
        fp_mul: 1.4,
        ..Mix::default()
    };
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 12 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 12 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 12 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 12 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 12 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 12 * MB,
                stride: 8,
            },
            1.0,
        ),
        (AddrPattern::Random { bytes: 16 * KB }, 1.2),
    ];
    Workload::Synth(p)
}

/// `povray`-like: microcoded instructions, branchy scalar FP (the KNL
/// Microcode component of Fig. 3(d)).
pub fn povray() -> Workload {
    let mut p = base("povray", 0x706F_7601);
    p.random_frac = 0.30;
    p.loop_frac = 0.25;
    p.call_frac = 0.15;
    p.taken_prob = 0.5;
    p.microcode_frac = 0.16;
    p.ilp = 3;
    p.fp_ilp = 2;
    p.mix = Mix {
        alu: 3.0,
        lea: 1.0,
        mul: 0.4,
        div: 0.05,
        load: 2.0,
        store: 0.8,
        fp_add: 1.2,
        fp_mul: 1.4,
        ..Mix::default()
    };
    p.mem = vec![
        (AddrPattern::Random { bytes: 20 * KB }, 4.0),
        (AddrPattern::Random { bytes: 192 * KB }, 0.25),
    ];
    Workload::Synth(p)
}

/// `imagick`-like: serial chains of multi-cycle operations — the issue
/// stack blames ALU latency where dispatch/commit see dependences
/// (Fig. 3(e)).
pub fn imagick() -> Workload {
    let mut p = base("imagick", 0x696D_6101);
    p.loop_frac = 0.55;
    p.random_frac = 0.02;
    p.loop_trip = (16, 64);
    p.microcode_frac = 0.04;
    p.ilp = 3; // interleaved chains: heads are often 1-cycle dependents
    p.fp_ilp = 1;
    p.load_dep_frac = 0.25;
    p.mix = Mix {
        alu: 4.2,
        lea: 0.8,
        mul: 0.7,
        load: 1.0,
        store: 0.4,
        fp_mul: 0.7,
        fp_add: 0.4,
        ..Mix::default()
    };
    p.mem = vec![(
        AddrPattern::Stream {
            bytes: 20 * KB,
            stride: 8,
        },
        1.0,
    )];
    Workload::Synth(p)
}

/// `gcc`-like: large code footprint, branchy integer code.
pub fn gcc() -> Workload {
    let mut p = base("gcc", 0x6763_6301);
    p.n_blocks = 1000;
    p.ifootprint = 280 * KB;
    p.random_frac = 0.22;
    p.loop_frac = 0.25;
    p.call_frac = 0.12;
    p.indirect_frac = 0.06;
    p.mem = vec![
        (AddrPattern::Random { bytes: 64 * KB }, 2.5),
        (AddrPattern::Random { bytes: 2 * MB }, 0.8),
    ];
    Workload::Synth(p)
}

/// `perlbench`-like: indirect-branch-heavy interpreter loop.
pub fn perlbench() -> Workload {
    let mut p = base("perlbench", 0x7065_7201);
    p.n_blocks = 500;
    p.ifootprint = 120 * KB;
    p.random_frac = 0.20;
    p.loop_frac = 0.15;
    p.call_frac = 0.15;
    p.indirect_frac = 0.20;
    p.taken_prob = 0.5;
    p.taken_prob = 0.5;
    p.branch_dep_frac = 0.35;
    p.mem = vec![
        (AddrPattern::Random { bytes: 32 * KB }, 2.5),
        (AddrPattern::Random { bytes: MB }, 0.15),
    ];
    Workload::Synth(p)
}

/// `xz`-like: data-dependent integer compression with mid-size working set.
pub fn xz() -> Workload {
    let mut p = base("xz", 0x787A_0001);
    p.random_frac = 0.40;
    p.loop_frac = 0.20;
    p.ilp = 2;
    p.load_dep_frac = 0.6;
    p.branch_dep_frac = 0.5;
    p.mem = vec![
        (AddrPattern::Random { bytes: MB }, 0.5),
        (AddrPattern::Random { bytes: 8 * MB }, 0.1),
        (AddrPattern::Random { bytes: 16 * KB }, 2.0),
    ];
    Workload::Synth(p)
}

/// `omnetpp`-like: discrete-event simulation — pointer-heavy, branchy.
pub fn omnetpp() -> Workload {
    let mut p = base("omnetpp", 0x6F6D_6E01);
    p.n_blocks = 600;
    p.ifootprint = 150 * KB;
    p.random_frac = 0.35;
    p.call_frac = 0.15;
    p.load_dep_frac = 0.5;
    p.branch_dep_frac = 0.5;
    p.mem = vec![
        (AddrPattern::Chase { bytes: 8 * MB }, 0.12),
        (AddrPattern::Random { bytes: 32 * KB }, 2.2),
    ];
    Workload::Synth(p)
}

/// `x264`-like: high-ILP media kernels with streaming access.
pub fn x264() -> Workload {
    let mut p = base("x264", 0x7832_3601);
    p.loop_frac = 0.5;
    p.random_frac = 0.06;
    p.ilp = 6;
    p.mix.mul = 0.8;
    p.mix.vec_int = 0.8;
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 512 * KB,
                stride: 16,
            },
            1.2,
        ),
        (AddrPattern::Random { bytes: 48 * KB }, 2.0),
    ];
    Workload::Synth(p)
}

/// `deepsjeng`-like: game-tree search — hard branches, small data.
pub fn deepsjeng() -> Workload {
    let mut p = base("deepsjeng", 0x6473_6A01);
    p.random_frac = 0.50;
    p.loop_frac = 0.10;
    p.call_frac = 0.15;
    p.taken_prob = 0.5;
    p.branch_dep_frac = 0.4;
    p.mem = vec![
        (AddrPattern::Random { bytes: 24 * KB }, 3.0),
        (AddrPattern::Random { bytes: 512 * KB }, 0.15),
    ];
    Workload::Synth(p)
}

/// `leela`-like: Monte-Carlo tree search — branches + mid-size data.
pub fn leela() -> Workload {
    let mut p = base("leela", 0x6C65_6501);
    p.random_frac = 0.45;
    p.loop_frac = 0.15;
    p.load_dep_frac = 0.5;
    p.branch_dep_frac = 0.5;
    p.mem = vec![
        (AddrPattern::Chase { bytes: MB }, 0.15),
        (AddrPattern::Random { bytes: 24 * KB }, 2.5),
    ];
    Workload::Synth(p)
}

/// `exchange2`-like: branch-light, cache-resident integer puzzle solver.
pub fn exchange2() -> Workload {
    let mut p = base("exchange2", 0x6578_6301);
    p.loop_frac = 0.35;
    p.random_frac = 0.30;
    p.taken_prob = 0.5;
    p.loop_trip = (8, 64);
    p.ilp = 2;
    p.mix.mul = 0.8;
    p.mem = vec![(AddrPattern::Random { bytes: 24 * KB }, 1.0)];
    Workload::Synth(p)
}

/// `xalancbmk`-like: XML processing — large code, calls, small-object data.
pub fn xalancbmk() -> Workload {
    let mut p = base("xalancbmk", 0x7861_6C01);
    p.n_blocks = 1200;
    p.ifootprint = 350 * KB;
    p.call_frac = 0.20;
    p.random_frac = 0.20;
    p.mem = vec![
        (AddrPattern::Random { bytes: 96 * KB }, 2.0),
        (AddrPattern::Random { bytes: 3 * MB }, 0.6),
    ];
    Workload::Synth(p)
}

/// `lbm`-like: lattice-Boltzmann — pure streaming, bandwidth-bound.
pub fn lbm() -> Workload {
    let mut p = base("lbm", 0x6C62_6D01);
    p.n_blocks = 80;
    p.ifootprint = 8 * KB;
    p.loop_frac = 0.6;
    p.random_frac = 0.01;
    p.loop_trip = (16, 64);
    p.ilp = 6;
    p.fp_ilp = 4;
    p.mix = Mix {
        alu: 1.0,
        lea: 0.8,
        load: 3.0,
        store: 1.8,
        fp_add: 1.5,
        fp_mul: 1.5,
        ..Mix::default()
    };
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 24 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 24 * MB,
                stride: 8,
            },
            1.0,
        ),
    ];
    Workload::Synth(p)
}

/// `wrf`-like: weather model — mixed FP, mid footprints.
pub fn wrf() -> Workload {
    let mut p = base("wrf", 0x7772_6601);
    p.n_blocks = 800;
    p.ifootprint = 200 * KB;
    p.loop_frac = 0.45;
    p.random_frac = 0.05;
    p.fp_ilp = 2;
    p.mix.fp_add = 1.4;
    p.mix.fp_mul = 1.4;
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 6 * MB,
                stride: 8,
            },
            1.0,
        ),
        (AddrPattern::Random { bytes: 128 * KB }, 1.5),
    ];
    Workload::Synth(p)
}

/// `cam4`-like: climate model — large code + FP.
pub fn cam4() -> Workload {
    let mut p = base("cam4", 0x6361_6D01);
    p.n_blocks = 1100;
    p.ifootprint = 300 * KB;
    p.loop_frac = 0.45;
    p.random_frac = 0.08;
    p.mix.fp_add = 1.2;
    p.mix.fp_mul = 1.2;
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 3 * MB,
                stride: 8,
            },
            0.8,
        ),
        (AddrPattern::Random { bytes: 64 * KB }, 1.8),
    ];
    Workload::Synth(p)
}

/// `pop2`-like: ocean model — streams + halo exchanges.
pub fn pop2() -> Workload {
    let mut p = base("pop2", 0x706F_7001);
    p.loop_frac = 0.5;
    p.random_frac = 0.04;
    p.fp_ilp = 3;
    p.mix.fp_add = 1.3;
    p.mix.fp_mul = 1.3;
    p.mix.load = 2.8;
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 8 * MB,
                stride: 8,
            },
            1.2,
        ),
        (AddrPattern::Random { bytes: 256 * KB }, 0.8),
    ];
    Workload::Synth(p)
}

/// `nab`-like: molecular dynamics — FP chains, cache-resident.
pub fn nab() -> Workload {
    let mut p = base("nab", 0x6E61_6201);
    p.loop_frac = 0.55;
    p.random_frac = 0.04;
    p.fp_ilp = 1;
    p.mix.fp_add = 1.6;
    p.mix.fp_mul = 1.8;
    p.mix.div = 0.08;
    p.mem = vec![(AddrPattern::Random { bytes: 96 * KB }, 1.0)];
    Workload::Synth(p)
}

/// `fotonik3d`-like: FDTD solver — streaming, bandwidth-bound FP.
pub fn fotonik3d() -> Workload {
    let mut p = base("fotonik3d", 0x666F_7401);
    p.loop_frac = 0.6;
    p.random_frac = 0.01;
    p.ilp = 5;
    p.fp_ilp = 3;
    p.mix.fp_add = 1.5;
    p.mix.fp_mul = 1.5;
    p.mix.load = 3.2;
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 16 * MB,
                stride: 8,
            },
            1.0,
        ),
        (
            AddrPattern::Stream {
                bytes: 16 * MB,
                stride: 16,
            },
            1.0,
        ),
    ];
    Workload::Synth(p)
}

/// `roms`-like: regional ocean model — streams + small random.
pub fn roms() -> Workload {
    let mut p = base("roms", 0x726F_6D01);
    p.loop_frac = 0.5;
    p.random_frac = 0.03;
    p.fp_ilp = 2;
    p.mix.fp_add = 1.4;
    p.mix.fp_mul = 1.2;
    p.mem = vec![
        (
            AddrPattern::Stream {
                bytes: 10 * MB,
                stride: 8,
            },
            1.0,
        ),
        (AddrPattern::Random { bytes: 32 * KB }, 1.2),
    ];
    Workload::Synth(p)
}

/// All SPEC-like profiles (the Fig. 2 evaluation corpus).
pub fn all() -> Vec<Workload> {
    vec![
        mcf(),
        cactus(),
        bwaves(),
        povray(),
        imagick(),
        gcc(),
        perlbench(),
        xz(),
        omnetpp(),
        x264(),
        deepsjeng(),
        leela(),
        exchange2(),
        xalancbmk(),
        lbm(),
        wrf(),
        cam4(),
        pop2(),
        nab(),
        fotonik3d(),
        roms(),
    ]
}

/// Looks a profile up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::UopKind;

    #[test]
    fn all_profiles_generate() {
        for w in all() {
            let uops: Vec<_> = w.trace(2_000).collect();
            assert_eq!(uops.len(), 2_000, "{}", w.name());
            assert!(
                uops.iter().any(|u| u.kind.is_branch()),
                "{} must contain branches",
                w.name()
            );
        }
    }

    #[test]
    fn by_name_finds_profiles() {
        assert!(by_name("mcf").is_some());
        assert!(by_name("bwaves").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn mcf_has_chase_loads() {
        let uops: Vec<_> = mcf().trace(40_000).collect();
        let chase_loads = uops
            .iter()
            .filter(|u| u.kind.is_load() && u.srcs().any(|r| r.index() == 24))
            .count();
        // Chase loads are deliberately rare (they each cost a full memory
        // round-trip) but must be present.
        assert!(chase_loads > 20, "mcf must pointer-chase: {chase_loads}");
    }

    #[test]
    fn povray_is_microcoded() {
        let uops: Vec<_> = povray().trace(5_000).collect();
        let micro = uops.iter().filter(|u| u.microcoded).count();
        assert!(micro > 200, "povray must be microcoded: {micro}");
    }

    #[test]
    fn cactus_touches_many_instruction_lines() {
        let uops: Vec<_> = cactus().trace(60_000).collect();
        let lines: std::collections::HashSet<u64> = uops.iter().map(|u| u.pc >> 6).collect();
        // Far larger than the 512-line L1I (the Fig. 3(b) requirement).
        assert!(
            lines.len() > 700,
            "cactus must have a large I-footprint: {} lines",
            lines.len()
        );
    }

    #[test]
    fn bwaves_streams() {
        let uops: Vec<_> = bwaves().trace(5_000).collect();
        let stores = uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Store { .. }))
            .count();
        let loads = uops.iter().filter(|u| u.kind.is_load()).count();
        assert!(loads > 800, "bwaves is load-heavy: {loads}");
        assert!(stores > 200);
    }

    #[test]
    fn imagick_has_serial_multiplies() {
        let uops: Vec<_> = imagick().trace(5_000).collect();
        let muls = uops
            .iter()
            .filter(|u| {
                matches!(
                    u.kind,
                    UopKind::IntAlu(mstacks_model::AluClass::Mul) | UopKind::ScalarFp(_)
                )
            })
            .count();
        // ~22% of the mix weight is mul/FP; the exact count in the first
        // 5000 micro-ops depends on the PRNG stream, so bound well below
        // the expectation while still proving multi-cycle chains dominate.
        assert!(muls > 600, "imagick needs multi-cycle chains: {muls}");
    }

    #[test]
    fn perlbench_has_indirect_branches() {
        use mstacks_model::BranchKind;
        let uops: Vec<_> = perlbench().trace(20_000).collect();
        let indirect = uops
            .iter()
            .filter(|u| {
                matches!(
                    u.kind,
                    mstacks_model::UopKind::Branch(b) if b.kind == BranchKind::Indirect
                )
            })
            .count();
        assert!(
            indirect > 100,
            "interpreter profile needs indirect jumps: {indirect}"
        );
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<String> = all().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), all().len());
    }
}
