//! Micro-op sources for interval sampling.
//!
//! A sampled run slices its trace two ways: detailed windows replay as a
//! plain micro-op iterator, and fast-forward segments stream into a
//! [`WarmSink`] (the functional-warming half of the engine). A
//! [`SampleSource`] provides both. The pre-decoded
//! [`TraceBuffer`](crate::TraceBuffer) overrides
//! [`SampleSource::warm_range`] to feed the sink straight from its packed
//! structure-of-arrays columns — no [`MicroOp`] is materialized, roughly
//! doubling fast-forward throughput — while any windowed closure wrapped
//! in [`WindowFn`] samples correctly through the per-µop fallback.

use mstacks_model::{MicroOp, WarmSink};

/// A random-access micro-op stream that interval sampling can slice into
/// detailed windows and fast-forward (warming) ranges.
pub trait SampleSource {
    /// The detailed-window iterator type.
    type Window: Iterator<Item = MicroOp>;

    /// Micro-ops `[start, end)` for detailed execution.
    fn window(&self, start: u64, end: u64) -> Self::Window;

    /// Streams micro-ops `[start, end)` into the warm sink. The default
    /// iterates [`SampleSource::window`] and dispatches per µop; batched
    /// sources override it to read their packed representation directly,
    /// and must produce the identical call sequence (asserted by the
    /// equivalence tests in the buffer module and the sampling suite).
    fn warm_range(&self, start: u64, end: u64, sink: &mut impl WarmSink) {
        for uop in self.window(start, end) {
            sink.feed(&uop);
        }
    }
}

/// Adapts a `Fn(start, end) -> impl Iterator<Item = MicroOp>` closure into
/// a [`SampleSource`] (warming via the fallback per-µop path), so sampled
/// runs also work over sources with no batched representation — e.g. a
/// re-seeded streaming generator too long to hold in memory.
pub struct WindowFn<F>(pub F);

impl<I, F> SampleSource for WindowFn<F>
where
    I: Iterator<Item = MicroOp>,
    F: Fn(u64, u64) -> I,
{
    type Window = I;

    fn window(&self, start: u64, end: u64) -> I {
        (self.0)(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, ArchReg, BranchInfo, BranchKind, UopKind};

    #[derive(Default)]
    struct Recorder(Vec<(u8, u64)>);

    impl WarmSink for Recorder {
        fn inst(&mut self, pc: u64) {
            self.0.push((0, pc));
        }
        fn branch(&mut self, pc: u64, _info: &BranchInfo) {
            self.0.push((1, pc));
        }
        fn load(&mut self, addr: u64, _pc: u64) {
            self.0.push((2, addr));
        }
        fn store(&mut self, addr: u64, _pc: u64) {
            self.0.push((3, addr));
        }
    }

    fn uops() -> Vec<MicroOp> {
        vec![
            MicroOp::new(0x10, UopKind::IntAlu(AluClass::Add)).with_dst(ArchReg::new(1)),
            MicroOp::new(0x14, UopKind::Load { addr: 0x8000 }),
            MicroOp::new(0x18, UopKind::Store { addr: 0x9000 }),
            MicroOp::new(
                0x1c,
                UopKind::Branch(BranchInfo {
                    taken: true,
                    target: 0x10,
                    fallthrough: 0x20,
                    kind: BranchKind::Cond,
                }),
            ),
        ]
    }

    #[test]
    fn window_fn_warms_through_the_fallback_path() {
        let all = uops();
        let src = WindowFn(|a: u64, b: u64| all[a as usize..b as usize].iter().copied());
        let mut rec = Recorder::default();
        src.warm_range(1, 4, &mut rec);
        assert_eq!(
            rec.0,
            vec![
                (0, 0x14),
                (2, 0x8000),
                (0, 0x18),
                (3, 0x9000),
                (0, 0x1c),
                (1, 0x1c)
            ]
        );
    }

    #[test]
    fn window_fn_windows_slice_exactly() {
        let all = uops();
        let src = WindowFn(|a: u64, b: u64| all[a as usize..b as usize].iter().copied());
        assert_eq!(src.window(0, 2).count(), 2);
        assert_eq!(src.window(2, 4).collect::<Vec<_>>(), all[2..4]);
    }
}
