//! Dynamic address generators.
//!
//! A workload declares *where its data lives* as a set of address patterns
//! over working sets of configurable size; at execution time each load or
//! store draws its byte address from one of them. Working-set size relative
//! to the cache geometry is what turns a pattern into L1 hits, L2 hits, or
//! DRAM misses — and a `Stream` pattern is what wakes the stride
//! prefetcher up (paper Fig. 3(c)).

use mstacks_model::rng::SmallRng;

/// A static address pattern over one working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddrPattern {
    /// Sequential streaming through `bytes` with the given stride —
    /// prefetcher-friendly, bandwidth-hungry.
    Stream {
        /// Working-set size in bytes.
        bytes: u64,
        /// Stride between consecutive accesses in bytes.
        stride: u64,
    },
    /// Uniform random accesses in `bytes` — prefetch-hostile.
    Random {
        /// Working-set size in bytes.
        bytes: u64,
    },
    /// Random accesses whose loads are *serialized* by the executor
    /// (each chase load depends on the previous one): pointer chasing.
    Chase {
        /// Working-set size in bytes.
        bytes: u64,
    },
}

impl AddrPattern {
    /// `true` if loads from this pattern must depend on the previous load
    /// (pointer-chase semantics).
    pub fn is_chase(&self) -> bool {
        matches!(self, AddrPattern::Chase { .. })
    }
}

/// Runtime state of one address pattern.
#[derive(Debug, Clone)]
pub struct AddrGen {
    pattern: AddrPattern,
    base: u64,
    pos: u64,
    rng: SmallRng,
}

impl AddrGen {
    /// Instantiates `pattern` at `base`, with deterministic randomness from
    /// `seed`.
    pub fn new(pattern: AddrPattern, base: u64, seed: u64) -> Self {
        AddrGen {
            pattern,
            base,
            pos: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The pattern this generator follows.
    pub fn pattern(&self) -> AddrPattern {
        self.pattern
    }

    /// Produces the next byte address.
    pub fn next_addr(&mut self) -> u64 {
        match self.pattern {
            AddrPattern::Stream { bytes, stride } => {
                let a = self.base + self.pos;
                self.pos = (self.pos + stride) % bytes.max(stride);
                a
            }
            AddrPattern::Random { bytes } | AddrPattern::Chase { bytes } => {
                // 8-byte aligned uniform address in the working set.
                let off = self.rng.gen_range(0..bytes.max(8) / 8) * 8;
                self.base + off
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_wraps_at_working_set() {
        let mut g = AddrGen::new(
            AddrPattern::Stream {
                bytes: 256,
                stride: 64,
            },
            0x10000,
            1,
        );
        let addrs: Vec<_> = (0..6).map(|_| g.next_addr()).collect();
        assert_eq!(
            addrs,
            vec![0x10000, 0x10040, 0x10080, 0x100c0, 0x10000, 0x10040]
        );
    }

    #[test]
    fn random_stays_in_working_set() {
        let mut g = AddrGen::new(AddrPattern::Random { bytes: 4096 }, 0x20000, 7);
        for _ in 0..100 {
            let a = g.next_addr();
            assert!((0x20000..0x20000 + 4096).contains(&a));
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || AddrGen::new(AddrPattern::Random { bytes: 1 << 20 }, 0, 42);
        let a: Vec<_> = {
            let mut g = mk();
            (0..32).map(|_| g.next_addr()).collect()
        };
        let b: Vec<_> = {
            let mut g = mk();
            (0..32).map(|_| g.next_addr()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn chase_is_flagged() {
        assert!(AddrPattern::Chase { bytes: 64 }.is_chase());
        assert!(!AddrPattern::Random { bytes: 64 }.is_chase());
    }
}
