//! DeepBench-like configuration tables.
//!
//! DeepBench's real lists hold 235 GEMM and 94 convolution layer shapes
//! drawn from production deep-learning models. We model a representative,
//! *scaled-down* subset (dimensions divided by ~16, minimum 16) so a full
//! sweep remains tractable on one machine; the experiment harness reports
//! how many configurations ran. The shapes keep the properties that matter
//! for FLOPS-stack behaviour: tall/skinny vs square aspect ratios,
//! train-vs-inference batch sizes, and convolution layers from early
//! (large spatial, few channels) to late (small spatial, many channels).

/// One GEMM layer shape: `C[m×n] += A[m×k] · B[k×n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmConfig {
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Training shape (large batch) vs inference shape (small batch).
    pub train: bool,
}

impl GemmConfig {
    /// Floating-point operations of the full GEMM (2·m·n·k).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Scaled-down DeepBench training GEMM shapes.
pub fn sgemm_train_configs() -> Vec<GemmConfig> {
    let dims: [(usize, usize, usize); 12] = [
        (110, 440, 110), // 1760×7000×1760 / 16
        (128, 440, 128), // 2048×7000×2048
        (160, 440, 160), // 2560×7000×2560
        (110, 220, 110), // smaller batch
        (128, 220, 128),
        (230, 128, 128), // attention-style tall
        (256, 64, 256),
        (110, 440, 55), // rectangular K
        (64, 880, 64),  // very wide N
        (320, 110, 320),
        (96, 330, 96),
        (440, 440, 64), // wide M×N, short K
    ];
    dims.iter()
        .map(|&(m, n, k)| GemmConfig {
            m,
            n,
            k,
            train: true,
        })
        .collect()
}

/// Scaled-down DeepBench inference GEMM shapes (batch-1-ish: tiny N).
pub fn sgemm_inference_configs() -> Vec<GemmConfig> {
    let dims: [(usize, usize, usize); 10] = [
        (320, 16, 128), // 5124×1/2-ish batch
        (320, 16, 160),
        (440, 16, 110),
        (128, 16, 128),
        (220, 32, 220),
        (160, 32, 160),
        (440, 32, 55),
        (96, 16, 96),
        (256, 16, 64),
        (110, 32, 110),
    ];
    dims.iter()
        .map(|&(m, n, k)| GemmConfig {
            m,
            n,
            k,
            train: false,
        })
        .collect()
}

/// One convolution layer shape (NCHW, square-ish filters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvConfig {
    /// Input width.
    pub w: usize,
    /// Input height.
    pub h: usize,
    /// Input channels.
    pub c: usize,
    /// Batch size.
    pub n: usize,
    /// Output channels (filter count).
    pub k: usize,
    /// Filter width.
    pub fw: usize,
    /// Filter height.
    pub fh: usize,
    /// Spatial stride.
    pub stride: usize,
}

impl ConvConfig {
    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        (self.w - self.fw) / self.stride + 1
    }

    /// Output height after convolution.
    pub fn out_h(&self) -> usize {
        (self.h - self.fh) / self.stride + 1
    }

    /// Floating-point operations of the forward pass.
    pub fn flops(&self) -> u64 {
        2 * self.out_w() as u64
            * self.out_h() as u64
            * self.k as u64
            * self.c as u64
            * self.fw as u64
            * self.fh as u64
            * self.n as u64
    }
}

/// One recurrent-layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RnnConfig {
    /// Hidden-state width.
    pub hidden: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Time steps unrolled.
    pub timesteps: usize,
}

/// Scaled-down DeepBench recurrent-layer shapes.
pub fn rnn_configs() -> Vec<RnnConfig> {
    vec![
        RnnConfig {
            hidden: 110,
            batch: 4,
            timesteps: 8,
        }, // 1760/16 speech
        RnnConfig {
            hidden: 160,
            batch: 4,
            timesteps: 8,
        }, // 2560/16
        RnnConfig {
            hidden: 64,
            batch: 8,
            timesteps: 16,
        }, // small translator
        RnnConfig {
            hidden: 128,
            batch: 2,
            timesteps: 8,
        },
    ]
}

/// Scaled-down DeepBench training convolution shapes.
pub fn conv_configs() -> Vec<ConvConfig> {
    vec![
        // Early layers: large spatial, few channels, stride 2.
        ConvConfig {
            w: 56,
            h: 56,
            c: 3,
            n: 2,
            k: 16,
            fw: 7,
            fh: 7,
            stride: 2,
        },
        ConvConfig {
            w: 28,
            h: 28,
            c: 16,
            n: 2,
            k: 32,
            fw: 5,
            fh: 5,
            stride: 2,
        },
        // Mid layers.
        ConvConfig {
            w: 28,
            h: 28,
            c: 32,
            n: 2,
            k: 32,
            fw: 3,
            fh: 3,
            stride: 1,
        },
        ConvConfig {
            w: 14,
            h: 14,
            c: 32,
            n: 2,
            k: 64,
            fw: 3,
            fh: 3,
            stride: 1,
        },
        ConvConfig {
            w: 14,
            h: 14,
            c: 64,
            n: 2,
            k: 64,
            fw: 3,
            fh: 3,
            stride: 1,
        },
        // Late layers: small spatial, many channels.
        ConvConfig {
            w: 7,
            h: 7,
            c: 64,
            n: 2,
            k: 128,
            fw: 3,
            fh: 3,
            stride: 1,
        },
        ConvConfig {
            w: 7,
            h: 7,
            c: 128,
            n: 2,
            k: 128,
            fw: 3,
            fh: 3,
            stride: 1,
        },
        // 1×1 bottlenecks.
        ConvConfig {
            w: 14,
            h: 14,
            c: 64,
            n: 2,
            k: 32,
            fw: 1,
            fh: 1,
            stride: 1,
        },
        ConvConfig {
            w: 7,
            h: 7,
            c: 128,
            n: 2,
            k: 64,
            fw: 1,
            fh: 1,
            stride: 1,
        },
        // Wide RNN-ish speech layer.
        ConvConfig {
            w: 40,
            h: 20,
            c: 8,
            n: 2,
            k: 16,
            fw: 5,
            fh: 3,
            stride: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_lists_are_nonempty_and_consistent() {
        let train = sgemm_train_configs();
        let inf = sgemm_inference_configs();
        assert!(train.len() >= 10);
        assert!(inf.len() >= 8);
        assert!(train.iter().all(|c| c.train));
        assert!(inf.iter().all(|c| !c.train));
        // Inference shapes have small N (batch).
        assert!(inf.iter().all(|c| c.n <= 32));
    }

    #[test]
    fn gemm_flops() {
        let c = GemmConfig {
            m: 10,
            n: 20,
            k: 30,
            train: true,
        };
        assert_eq!(c.flops(), 12_000);
    }

    #[test]
    fn conv_geometry_and_flops() {
        let c = ConvConfig {
            w: 28,
            h: 28,
            c: 16,
            n: 1,
            k: 32,
            fw: 3,
            fh: 3,
            stride: 1,
        };
        assert_eq!(c.out_w(), 26);
        assert_eq!(c.out_h(), 26);
        assert_eq!(c.flops(), 2 * 26 * 26 * 32 * 16 * 9);
    }

    #[test]
    fn conv_configs_cover_strides() {
        let cfgs = conv_configs();
        assert!(cfgs.iter().any(|c| c.stride == 2));
        assert!(cfgs.iter().any(|c| c.fw == 1 && c.fh == 1));
    }
}
