//! Program-shaped trace model: a static basic-block graph executed into a
//! micro-op stream.
//!
//! The *static* side (per-block instruction kinds, branch patterns, target
//! blocks, which address pattern each memory instruction uses) is fixed at
//! build time, so re-executing a block re-produces the same instructions at
//! the same PCs — which is what makes branch predictors and caches able to
//! learn, exactly as for real code. The *dynamic* side (branch outcomes of
//! random patterns, concrete addresses, operand rotation) is drawn from
//! seeded PRNGs at execution time.

use crate::addr::{AddrGen, AddrPattern};
use mstacks_model::rng::SmallRng;
use mstacks_model::{
    AluClass, ArchReg, BranchInfo, BranchKind, ElemType, FpOpKind, MicroOp, UopKind, VecFpOp,
};

/// A static instruction template inside a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpTemplate {
    /// Integer/address arithmetic of the given class.
    Alu(AluClass),
    /// Pipeline-filling no-op.
    Nop,
    /// Load drawing addresses from pattern `gen`; `chase` loads depend on
    /// the previous chase load (pointer chasing).
    Load {
        /// Index into the program's address patterns.
        gen: usize,
        /// Serialize on the previous chase load.
        chase: bool,
    },
    /// Store drawing addresses from pattern `gen`.
    Store {
        /// Index into the program's address patterns.
        gen: usize,
    },
    /// Scalar floating-point operation.
    ScalarFp(FpOpKind),
    /// Vector floating-point operation over `lanes` active lanes.
    VecFp {
        /// Operation kind (FMA counts 2 ops/lane).
        op: FpOpKind,
        /// Active (unmasked) lanes.
        lanes: u8,
    },
    /// Vector-integer / shuffle / broadcast work.
    VecInt,
}

/// One templated micro-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateUop {
    /// What it does.
    pub op: OpTemplate,
    /// Microcoded marker (decode stalls on KNL-style cores).
    pub microcoded: bool,
}

/// Static branch behaviour of a block terminator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchPattern {
    /// Loop back `trip − 1` times, then fall through (highly predictable).
    Loop {
        /// Total iterations per loop entry.
        trip: u32,
    },
    /// Taken with probability `taken_prob` per execution (random draws —
    /// hard to predict when the probability is near 0.5).
    Random {
        /// Per-execution taken probability.
        taken_prob: f64,
    },
}

/// How a block ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Target block.
        to: usize,
    },
    /// Conditional branch.
    Cond {
        /// Outcome behaviour.
        pattern: BranchPattern,
        /// Block when taken.
        taken_to: usize,
        /// Block when not taken.
        fall_to: usize,
    },
    /// Call a function block (pushes the return block).
    Call {
        /// Function entry block.
        callee: usize,
        /// Block to return to.
        ret_to: usize,
    },
    /// Return to the most recent caller.
    Ret,
    /// Indirect jump through a table: the executed target rotates through
    /// `targets` (an interpreter-style dispatch — the BTB can only hold
    /// the last target, so target changes mispredict).
    IndirectJump {
        /// Candidate target blocks.
        targets: [usize; 4],
    },
}

/// A static basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Start address of the block's first instruction.
    pub pc: u64,
    /// Instruction templates (the terminating branch is implicit).
    pub uops: Vec<TemplateUop>,
    /// How the block ends.
    pub term: Terminator,
}

impl Block {
    /// PC of the terminating branch.
    pub fn branch_pc(&self) -> u64 {
        self.pc + self.uops.len() as u64 * 4
    }
}

/// A static program: blocks + the address patterns its memory instructions
/// use + dependence-shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Basic blocks; execution starts at block 0.
    pub blocks: Vec<Block>,
    /// Address patterns memory templates refer to.
    pub addr_patterns: Vec<AddrPattern>,
    /// Number of parallel integer dependence chains (1 = fully serial).
    pub ilp: usize,
    /// Number of parallel floating-point chains.
    pub fp_ilp: usize,
    /// Probability an ALU op consumes the most recent load's result.
    pub load_dep_frac: f64,
    /// Probability a conditional branch consumes the most recent load's
    /// result (its resolution then waits for the load — this is what makes
    /// mispredict penalties long on memory-bound code like `mcf`).
    pub branch_dep_frac: f64,
    /// Base address of the data segment (address patterns are laid out
    /// from here, one after another).
    pub data_base: u64,
}

// Register-file layout used by the executor.
const ALU_RING_BASE: u16 = 0; // up to 8 integer chains
const LOAD_RING_BASE: u16 = 8; // 8 rotating load destinations
const CHASE_REG: u16 = 24;
const STORE_SRC: u16 = 25;
const FP_RING_BASE: u16 = 48; // up to 8 FP chains
const VEC_RING_BASE: u16 = 64; // 8 vector accumulators

/// Executes a [`Program`] into an endless micro-op stream.
#[derive(Debug, Clone)]
pub struct Executor {
    program: Program,
    addr_gens: Vec<AddrGen>,
    cur_block: usize,
    cur_uop: usize,
    loop_counters: Vec<u32>,
    rng: SmallRng,
    op_rng: SmallRng,
    ret_stack: Vec<usize>,
    alu_pos: usize,
    fp_pos: usize,
    vec_pos: usize,
    load_pos: u16,
    have_load: bool,
    have_chase: bool,
}

impl Executor {
    /// Starts executing `program` at block 0 with randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the program has no blocks or an out-of-range pattern
    /// index.
    pub fn new(program: Program, seed: u64) -> Self {
        assert!(
            !program.blocks.is_empty(),
            "program needs at least one block"
        );
        let mut base = program.data_base;
        let mut addr_gens = Vec::with_capacity(program.addr_patterns.len());
        for (i, &p) in program.addr_patterns.iter().enumerate() {
            addr_gens.push(AddrGen::new(
                p,
                base,
                seed ^ (i as u64 + 1).wrapping_mul(0x9E37),
            ));
            let bytes = match p {
                AddrPattern::Stream { bytes, .. }
                | AddrPattern::Random { bytes }
                | AddrPattern::Chase { bytes } => bytes,
            };
            // Separate the working sets, aligned to 4 KiB.
            base += (bytes + 4095) & !4095;
        }
        let n = program.blocks.len();
        Executor {
            program,
            addr_gens,
            cur_block: 0,
            cur_uop: 0,
            loop_counters: vec![0; n],
            rng: SmallRng::seed_from_u64(seed),
            op_rng: SmallRng::seed_from_u64(seed ^ 0xABCD_EF01),
            ret_stack: Vec::new(),
            alu_pos: 0,
            fp_pos: 0,
            vec_pos: 0,
            load_pos: 0,
            have_load: false,
            have_chase: false,
        }
    }

    fn alu_regs(&mut self) -> (ArchReg, ArchReg) {
        let ilp = self.program.ilp.clamp(1, 8);
        let src = ArchReg::new(ALU_RING_BASE + (self.alu_pos % ilp) as u16);
        self.alu_pos = (self.alu_pos + 1) % ilp;
        let dst = ArchReg::new(ALU_RING_BASE + (self.alu_pos % ilp) as u16);
        (src, dst)
    }

    fn fp_regs(&mut self) -> (ArchReg, ArchReg) {
        let ilp = self.program.fp_ilp.clamp(1, 8);
        let src = ArchReg::new(FP_RING_BASE + (self.fp_pos % ilp) as u16);
        self.fp_pos = (self.fp_pos + 1) % ilp;
        let dst = ArchReg::new(FP_RING_BASE + (self.fp_pos % ilp) as u16);
        (src, dst)
    }

    fn emit(&mut self, t: TemplateUop, pc: u64) -> MicroOp {
        let mut u = match t.op {
            OpTemplate::Nop => MicroOp::new(pc, UopKind::Nop),
            OpTemplate::Alu(class) => {
                let (src, dst) = self.alu_regs();
                let mut u = MicroOp::new(pc, UopKind::IntAlu(class))
                    .with_src(src)
                    .with_dst(dst);
                if self.have_load && self.op_rng.gen_bool(self.program.load_dep_frac) {
                    u = u.with_src(ArchReg::new(LOAD_RING_BASE + self.load_pos % 8));
                }
                u
            }
            OpTemplate::Load { gen, chase } => {
                let addr = self.addr_gens[gen].next_addr();
                if chase {
                    self.have_chase = true;
                    let mut u =
                        MicroOp::new(pc, UopKind::Load { addr }).with_dst(ArchReg::new(CHASE_REG));
                    if self.have_chase {
                        u = u.with_src(ArchReg::new(CHASE_REG));
                    }
                    u
                } else {
                    self.load_pos = (self.load_pos + 1) % 8;
                    self.have_load = true;
                    MicroOp::new(pc, UopKind::Load { addr })
                        .with_dst(ArchReg::new(LOAD_RING_BASE + self.load_pos))
                }
            }
            OpTemplate::Store { gen } => {
                let addr = self.addr_gens[gen].next_addr();
                MicroOp::new(pc, UopKind::Store { addr }).with_src(ArchReg::new(STORE_SRC))
            }
            OpTemplate::ScalarFp(op) => {
                let (src, dst) = self.fp_regs();
                let mut u = MicroOp::new(pc, UopKind::ScalarFp(op))
                    .with_src(src)
                    .with_dst(dst);
                if self.have_load && self.op_rng.gen_bool(self.program.load_dep_frac) {
                    u = u.with_src(ArchReg::new(LOAD_RING_BASE + self.load_pos % 8));
                }
                u
            }
            OpTemplate::VecFp { op, lanes } => {
                let acc = ArchReg::new(VEC_RING_BASE + (self.vec_pos % 8) as u16);
                self.vec_pos += 1;
                let mut u = MicroOp::new(
                    pc,
                    UopKind::VecFp(VecFpOp {
                        op,
                        active_lanes: lanes,
                        elem: ElemType::F32,
                    }),
                )
                .with_src(acc)
                .with_dst(acc);
                // Streaming kernels feed their FMAs from memory.
                if self.have_load && self.op_rng.gen_bool(self.program.load_dep_frac) {
                    u = u.with_src(ArchReg::new(LOAD_RING_BASE + self.load_pos % 8));
                }
                u
            }
            OpTemplate::VecInt => {
                let acc = ArchReg::new(VEC_RING_BASE + (self.vec_pos % 8) as u16);
                MicroOp::new(pc, UopKind::VecInt)
                    .with_src(acc)
                    .with_dst(acc)
            }
        };
        u.microcoded = t.microcoded;
        u
    }

    /// Decides the terminator of `block`, returning the branch micro-op and
    /// the next block index.
    fn terminate(&mut self, block_idx: usize) -> (MicroOp, usize) {
        let block = &self.program.blocks[block_idx];
        let pc = block.branch_pc();
        let blocks = &self.program.blocks;
        match block.term {
            Terminator::Jump { to } => {
                let b = BranchInfo {
                    taken: true,
                    target: blocks[to].pc,
                    fallthrough: pc + 4,
                    kind: BranchKind::Uncond,
                };
                (MicroOp::new(pc, UopKind::Branch(b)), to)
            }
            Terminator::Cond {
                pattern,
                taken_to,
                fall_to,
            } => {
                let taken = match pattern {
                    BranchPattern::Loop { trip } => {
                        let c = &mut self.loop_counters[block_idx];
                        *c += 1;
                        if *c < trip {
                            true
                        } else {
                            *c = 0;
                            false
                        }
                    }
                    BranchPattern::Random { taken_prob } => self.rng.gen_bool(taken_prob),
                };
                let next = if taken { taken_to } else { fall_to };
                let b = BranchInfo {
                    taken,
                    target: blocks[taken_to].pc,
                    fallthrough: blocks[fall_to].pc,
                    kind: BranchKind::Cond,
                };
                let mut u = MicroOp::new(pc, UopKind::Branch(b));
                // Data-dependent branches resolve only when the value they
                // test arrives (random patterns only; loop exits are
                // counter-driven).
                if matches!(pattern, BranchPattern::Random { .. })
                    && self.have_load
                    && self.op_rng.gen_bool(self.program.branch_dep_frac)
                {
                    // Pointer-chasing codes test values from the chased
                    // structure: prefer the chase register when present.
                    let reg = if self.have_chase && self.op_rng.gen_bool(0.5) {
                        CHASE_REG
                    } else {
                        LOAD_RING_BASE + self.load_pos % 8
                    };
                    u = u.with_src(ArchReg::new(reg));
                }
                (u, next)
            }
            Terminator::Call { callee, ret_to } => {
                self.ret_stack.push(ret_to);
                if self.ret_stack.len() > 64 {
                    self.ret_stack.remove(0);
                }
                let b = BranchInfo {
                    taken: true,
                    target: blocks[callee].pc,
                    fallthrough: blocks[ret_to].pc,
                    kind: BranchKind::Call,
                };
                (MicroOp::new(pc, UopKind::Branch(b)), callee)
            }
            Terminator::Ret => {
                let to = self.ret_stack.pop().unwrap_or(0);
                let b = BranchInfo {
                    taken: true,
                    target: blocks[to].pc,
                    fallthrough: pc + 4,
                    kind: BranchKind::Ret,
                };
                (MicroOp::new(pc, UopKind::Branch(b)), to)
            }
            Terminator::IndirectJump { targets } => {
                let idx = (self.rng.gen_range(0..4u8)) as usize;
                let to = targets[idx];
                let b = BranchInfo {
                    taken: true,
                    target: blocks[to].pc,
                    fallthrough: pc + 4,
                    kind: BranchKind::Indirect,
                };
                (MicroOp::new(pc, UopKind::Branch(b)), to)
            }
        }
    }
}

impl Iterator for Executor {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let block = &self.program.blocks[self.cur_block];
        if self.cur_uop < block.uops.len() {
            let t = block.uops[self.cur_uop];
            let pc = block.pc + self.cur_uop as u64 * 4;
            self.cur_uop += 1;
            Some(self.emit(t, pc))
        } else {
            let (branch, next) = self.terminate(self.cur_block);
            self.cur_block = next;
            self.cur_uop = 0;
            Some(branch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu_t() -> TemplateUop {
        TemplateUop {
            op: OpTemplate::Alu(AluClass::Add),
            microcoded: false,
        }
    }

    fn two_block_loop() -> Program {
        Program {
            blocks: vec![
                Block {
                    pc: 0x1000,
                    uops: vec![alu_t(), alu_t()],
                    term: Terminator::Cond {
                        pattern: BranchPattern::Loop { trip: 3 },
                        taken_to: 0,
                        fall_to: 1,
                    },
                },
                Block {
                    pc: 0x2000,
                    uops: vec![alu_t()],
                    term: Terminator::Jump { to: 0 },
                },
            ],
            addr_patterns: vec![],
            ilp: 2,
            fp_ilp: 1,
            load_dep_frac: 0.0,
            branch_dep_frac: 0.0,
            data_base: 0x1000_0000,
        }
    }

    #[test]
    fn loop_pattern_iterates_trip_times() {
        let mut ex = Executor::new(two_block_loop(), 1);
        // Block 0 (2 uops + branch) × 3 iterations, then block 1.
        let uops: Vec<_> = (&mut ex).take(3 * 3 + 2).collect();
        // First two branches taken (back to block 0), third not taken.
        let branches: Vec<_> = uops
            .iter()
            .filter_map(|u| match u.kind {
                UopKind::Branch(b) => Some(b.taken),
                _ => None,
            })
            .collect();
        assert_eq!(&branches[..3], &[true, true, false]);
        // After the loop exits we're in block 1.
        assert_eq!(uops[9].pc, 0x2000);
    }

    #[test]
    fn pcs_follow_block_layout() {
        let mut ex = Executor::new(two_block_loop(), 1);
        let u0 = ex.next().unwrap();
        let u1 = ex.next().unwrap();
        let br = ex.next().unwrap();
        assert_eq!(u0.pc, 0x1000);
        assert_eq!(u1.pc, 0x1004);
        assert_eq!(br.pc, 0x1008);
        assert!(br.kind.is_branch());
    }

    #[test]
    fn call_and_ret_round_trip() {
        let p = Program {
            blocks: vec![
                Block {
                    pc: 0x1000,
                    uops: vec![alu_t()],
                    term: Terminator::Call {
                        callee: 1,
                        ret_to: 2,
                    },
                },
                Block {
                    pc: 0x5000,
                    uops: vec![alu_t()],
                    term: Terminator::Ret,
                },
                Block {
                    pc: 0x1010,
                    uops: vec![alu_t()],
                    term: Terminator::Jump { to: 0 },
                },
            ],
            addr_patterns: vec![],
            ilp: 1,
            fp_ilp: 1,
            load_dep_frac: 0.0,
            branch_dep_frac: 0.0,
            data_base: 0x1000_0000,
        };
        let ex = Executor::new(p, 9);
        let pcs: Vec<u64> = ex.take(8).map(|u| u.pc).collect();
        // block0 (0x1000, call at 0x1004) → block1 (0x5000, ret at 0x5004)
        // → block2 (0x1010, jump) → block0 …
        assert_eq!(
            pcs,
            vec![0x1000, 0x1004, 0x5000, 0x5004, 0x1010, 0x1014, 0x1000, 0x1004]
        );
    }

    #[test]
    fn chase_loads_depend_on_previous_chase() {
        let p = Program {
            blocks: vec![Block {
                pc: 0x1000,
                uops: vec![
                    TemplateUop {
                        op: OpTemplate::Load {
                            gen: 0,
                            chase: true
                        },
                        microcoded: false,
                    };
                    2
                ],
                term: Terminator::Jump { to: 0 },
            }],
            addr_patterns: vec![AddrPattern::Chase { bytes: 1 << 20 }],
            ilp: 1,
            fp_ilp: 1,
            load_dep_frac: 0.0,
            branch_dep_frac: 0.0,
            data_base: 0x2000_0000,
        };
        let ex = Executor::new(p, 3);
        let uops: Vec<_> = ex.take(5).collect();
        // The second chase load must read the chase register.
        let second = &uops[1];
        assert!(second.kind.is_load());
        assert!(second.srcs().any(|r| r.index() == 24));
        // Addresses fall inside the chase working set.
        assert!(second.mem_addr().unwrap() >= 0x2000_0000);
    }

    #[test]
    fn indirect_jump_rotates_targets() {
        let p = Program {
            blocks: vec![
                Block {
                    pc: 0x1000,
                    uops: vec![alu_t()],
                    term: Terminator::IndirectJump {
                        targets: [1, 2, 1, 2],
                    },
                },
                Block {
                    pc: 0x2000,
                    uops: vec![alu_t()],
                    term: Terminator::Jump { to: 0 },
                },
                Block {
                    pc: 0x3000,
                    uops: vec![alu_t()],
                    term: Terminator::Jump { to: 0 },
                },
            ],
            addr_patterns: vec![],
            ilp: 1,
            fp_ilp: 1,
            load_dep_frac: 0.0,
            branch_dep_frac: 0.0,
            data_base: 0,
        };
        let ex = Executor::new(p, 5);
        let targets: std::collections::HashSet<u64> = ex
            .take(200)
            .filter_map(|u| match u.kind {
                UopKind::Branch(b) if b.kind == BranchKind::Indirect => Some(b.target),
                _ => None,
            })
            .collect();
        assert_eq!(
            targets,
            [0x2000u64, 0x3000].into_iter().collect(),
            "indirect jumps must visit multiple targets"
        );
    }

    #[test]
    fn executor_is_deterministic() {
        let a: Vec<_> = Executor::new(two_block_loop(), 7).take(100).collect();
        let b: Vec<_> = Executor::new(two_block_loop(), 7).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn microcoded_flag_propagates() {
        let p = Program {
            blocks: vec![Block {
                pc: 0x1000,
                uops: vec![TemplateUop {
                    op: OpTemplate::Alu(AluClass::Add),
                    microcoded: true,
                }],
                term: Terminator::Jump { to: 0 },
            }],
            addr_patterns: vec![],
            ilp: 1,
            fp_ilp: 1,
            load_dep_frac: 0.0,
            branch_dep_frac: 0.0,
            data_base: 0,
        };
        let mut ex = Executor::new(p, 1);
        assert!(ex.next().unwrap().microcoded);
    }
}
