//! Synthetic program builder: turns a parameter profile into a static
//! [`Program`](crate::program) value plus its executing trace.

use crate::addr::AddrPattern;
use crate::program::{
    Block, BranchPattern, Executor, OpTemplate, Program, TemplateUop, Terminator,
};
use mstacks_model::rng::SmallRng;
use mstacks_model::{AluClass, FpOpKind};

/// Instruction-mix weights (relative; normalized internally).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mix {
    /// Single-cycle integer ALU.
    pub alu: f64,
    /// Address arithmetic.
    pub lea: f64,
    /// Integer multiply.
    pub mul: f64,
    /// Integer divide.
    pub div: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Scalar FP add.
    pub fp_add: f64,
    /// Scalar FP multiply.
    pub fp_mul: f64,
    /// Vector FMA.
    pub vec_fma: f64,
    /// Vector FP add/mul.
    pub vec_add: f64,
    /// Vector integer / shuffle.
    pub vec_int: f64,
    /// No-ops.
    pub nop: f64,
}

impl Mix {
    fn weights(&self) -> [f64; 12] {
        [
            self.alu,
            self.lea,
            self.mul,
            self.div,
            self.load,
            self.store,
            self.fp_add,
            self.fp_mul,
            self.vec_fma,
            self.vec_add,
            self.vec_int,
            self.nop,
        ]
    }
}

/// Full parameter profile of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthParams {
    /// Profile name (reported by [`crate::Workload::name`]).
    pub name: &'static str,
    /// Seed for both program construction and execution randomness.
    pub seed: u64,
    /// Number of basic blocks (with `ifootprint`, sets the code footprint).
    pub n_blocks: usize,
    /// Min/max micro-ops per block (excluding the terminator).
    pub block_len: (usize, usize),
    /// Code-footprint in bytes the blocks are spread over.
    pub ifootprint: u64,
    /// Fraction of blocks ending in a (predictable) loop back-edge.
    pub loop_frac: f64,
    /// Fraction of blocks ending in a hard random branch.
    pub random_frac: f64,
    /// Fraction of blocks ending in a call to a function block.
    pub call_frac: f64,
    /// Fraction of blocks ending in an interpreter-style indirect jump
    /// (4 rotating targets; the BTB mispredicts on every target change).
    pub indirect_frac: f64,
    /// Taken probability of random branches (0.5 = hardest).
    pub taken_prob: f64,
    /// Loop trip-count range.
    pub loop_trip: (u32, u32),
    /// Instruction mix.
    pub mix: Mix,
    /// Fraction of micro-ops that are microcoded (KNL decode stalls).
    pub microcode_frac: f64,
    /// Parallel integer dependence chains (1 = serial).
    pub ilp: usize,
    /// Parallel FP dependence chains.
    pub fp_ilp: usize,
    /// Probability an ALU/FP op consumes the latest load result.
    pub load_dep_frac: f64,
    /// Probability a random conditional branch consumes the latest load
    /// result (long mispredict resolution).
    pub branch_dep_frac: f64,
    /// Weighted data-address patterns (working sets).
    pub mem: Vec<(AddrPattern, f64)>,
    /// Active lanes for vector templates.
    pub vec_lanes: u8,
}

impl SynthParams {
    /// Builds the static program for this profile.
    pub fn build(&self) -> Program {
        assert!(self.n_blocks >= 2, "need at least two blocks");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let (lo, hi) = self.block_len;
        assert!(lo >= 1 && hi >= lo, "invalid block length range");

        // Function blocks live at the top of the index space.
        let n_funcs = ((self.n_blocks as f64 * 0.1) as usize).max(1);
        let n_main = self.n_blocks - n_funcs;

        // Spread blocks over the instruction footprint.
        let max_block_bytes = ((hi + 1) * 4) as u64;
        let spacing = (self.ifootprint / self.n_blocks as u64)
            .max(max_block_bytes)
            .next_multiple_of(16);
        let base_pc = 0x40_0000u64;

        // Address patterns and their cumulative weights.
        let patterns: Vec<AddrPattern> = self.mem.iter().map(|&(p, _)| p).collect();
        let weights: Vec<f64> = self.mem.iter().map(|&(_, w)| w).collect();
        let wsum: f64 = weights.iter().sum();

        let mix_w = self.mix.weights();
        let mix_sum: f64 = mix_w.iter().sum();
        assert!(mix_sum > 0.0, "instruction mix must have positive weight");

        let mut blocks = Vec::with_capacity(self.n_blocks);
        for i in 0..self.n_blocks {
            let len = rng.gen_range(lo..=hi);
            let mut uops = Vec::with_capacity(len);
            for _ in 0..len {
                let mut x = rng.gen_range(0.0..mix_sum);
                let mut op = OpTemplate::Nop;
                for (j, &w) in mix_w.iter().enumerate() {
                    if x < w {
                        op = match j {
                            0 => OpTemplate::Alu(AluClass::Add),
                            1 => OpTemplate::Alu(AluClass::Lea),
                            2 => OpTemplate::Alu(AluClass::Mul),
                            3 => OpTemplate::Alu(AluClass::Div),
                            4 | 5 => {
                                // Pick a working set (static per template).
                                let mut y = rng.gen_range(0.0..wsum.max(f64::MIN_POSITIVE));
                                let mut gen = 0;
                                for (gi, &gw) in weights.iter().enumerate() {
                                    if y < gw {
                                        gen = gi;
                                        break;
                                    }
                                    y -= gw;
                                }
                                if j == 4 {
                                    OpTemplate::Load {
                                        gen,
                                        chase: patterns[gen].is_chase(),
                                    }
                                } else {
                                    OpTemplate::Store { gen }
                                }
                            }
                            6 => OpTemplate::ScalarFp(FpOpKind::Add),
                            7 => OpTemplate::ScalarFp(FpOpKind::Mul),
                            8 => OpTemplate::VecFp {
                                op: FpOpKind::Fma,
                                lanes: self.vec_lanes,
                            },
                            9 => OpTemplate::VecFp {
                                op: FpOpKind::Add,
                                lanes: self.vec_lanes,
                            },
                            10 => OpTemplate::VecInt,
                            _ => OpTemplate::Nop,
                        };
                        break;
                    }
                    x -= w;
                }
                // Memory templates need a pattern to exist.
                if matches!(op, OpTemplate::Load { .. } | OpTemplate::Store { .. })
                    && patterns.is_empty()
                {
                    op = OpTemplate::Alu(AluClass::Add);
                }
                uops.push(TemplateUop {
                    op,
                    microcoded: rng.gen_bool(self.microcode_frac),
                });
            }

            let next = (i + 1) % n_main.max(1);
            let term = if i >= n_main {
                // Function block.
                Terminator::Ret
            } else {
                let r: f64 = rng.gen_f64();
                if r < self.loop_frac {
                    Terminator::Cond {
                        pattern: BranchPattern::Loop {
                            trip: rng.gen_range(
                                self.loop_trip.0..=self.loop_trip.1.max(self.loop_trip.0),
                            ),
                        },
                        taken_to: i,
                        fall_to: next,
                    }
                } else if r < self.loop_frac + self.random_frac {
                    // Random branch to a random main block.
                    let target = rng.gen_range(0..n_main);
                    Terminator::Cond {
                        pattern: BranchPattern::Random {
                            taken_prob: self.taken_prob,
                        },
                        taken_to: target,
                        fall_to: next,
                    }
                } else if r < self.loop_frac + self.random_frac + self.call_frac {
                    Terminator::Call {
                        callee: n_main + rng.gen_range(0..n_funcs),
                        ret_to: next,
                    }
                } else if r < self.loop_frac
                    + self.random_frac
                    + self.call_frac
                    + self.indirect_frac
                {
                    Terminator::IndirectJump {
                        targets: [
                            rng.gen_range(0..n_main),
                            rng.gen_range(0..n_main),
                            rng.gen_range(0..n_main),
                            next,
                        ],
                    }
                } else {
                    Terminator::Jump { to: next }
                }
            };

            blocks.push(Block {
                pc: base_pc + i as u64 * spacing,
                uops,
                term,
            });
        }

        Program {
            blocks,
            addr_patterns: patterns,
            ilp: self.ilp,
            fp_ilp: self.fp_ilp,
            load_dep_frac: self.load_dep_frac,
            branch_dep_frac: self.branch_dep_frac,
            data_base: 0x1000_0000,
        }
    }
}

/// The executing trace of a [`SynthParams`] profile.
#[derive(Debug, Clone)]
pub struct SynthTrace {
    exec: Executor,
}

impl SynthTrace {
    /// Builds the program and starts executing it.
    pub fn new(params: SynthParams) -> Self {
        let program = params.build();
        SynthTrace {
            exec: Executor::new(program, params.seed ^ 0x5EED_CAFE),
        }
    }
}

impl Iterator for SynthTrace {
    type Item = mstacks_model::MicroOp;

    fn next(&mut self) -> Option<Self::Item> {
        self.exec.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::UopKind;

    fn base_params() -> SynthParams {
        SynthParams {
            name: "test",
            seed: 42,
            n_blocks: 50,
            block_len: (4, 8),
            ifootprint: 16 * 1024,
            loop_frac: 0.3,
            random_frac: 0.2,
            call_frac: 0.1,
            indirect_frac: 0.0,
            taken_prob: 0.5,
            loop_trip: (4, 16),
            mix: Mix {
                alu: 4.0,
                lea: 1.0,
                mul: 0.5,
                load: 2.0,
                store: 1.0,
                ..Mix::default()
            },
            microcode_frac: 0.0,
            ilp: 3,
            fp_ilp: 2,
            load_dep_frac: 0.3,
            branch_dep_frac: 0.2,
            mem: vec![
                (AddrPattern::Random { bytes: 16 * 1024 }, 2.0),
                (
                    AddrPattern::Stream {
                        bytes: 1 << 20,
                        stride: 64,
                    },
                    1.0,
                ),
            ],
            vec_lanes: 8,
        }
    }

    #[test]
    fn build_produces_requested_blocks() {
        let p = base_params().build();
        assert_eq!(p.blocks.len(), 50);
        // Function blocks end in Ret.
        assert!(p.blocks.iter().any(|b| b.term == Terminator::Ret));
        // PCs are strictly increasing and within the footprint scale.
        for w in p.blocks.windows(2) {
            assert!(w[1].pc > w[0].pc);
        }
    }

    #[test]
    fn trace_contains_expected_kinds() {
        let t = SynthTrace::new(base_params());
        let uops: Vec<_> = t.take(5_000).collect();
        let loads = uops.iter().filter(|u| u.kind.is_load()).count();
        let stores = uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Store { .. }))
            .count();
        let branches = uops.iter().filter(|u| u.kind.is_branch()).count();
        assert!(loads > 300, "load fraction too low: {loads}");
        assert!(stores > 100, "store fraction too low: {stores}");
        assert!(branches > 300, "branch fraction too low: {branches}");
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<_> = SynthTrace::new(base_params()).take(2_000).collect();
        let b: Vec<_> = SynthTrace::new(base_params()).take(2_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p2 = base_params();
        p2.seed = 43;
        let a: Vec<_> = SynthTrace::new(base_params()).take(2_000).collect();
        let b: Vec<_> = SynthTrace::new(p2).take(2_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn microcode_fraction_respected() {
        let mut p = base_params();
        p.microcode_frac = 0.2;
        let uops: Vec<_> = SynthTrace::new(p).take(5_000).collect();
        let micro = uops.iter().filter(|u| u.microcoded).count();
        assert!(micro > 400, "expected ~20% microcoded, got {micro}/5000");
        assert!(micro < 1_800);
    }

    #[test]
    fn memory_templates_use_configured_working_sets() {
        let uops: Vec<_> = SynthTrace::new(base_params()).take(5_000).collect();
        // All data addresses fall in [data_base, data_base + total ws + slack).
        for u in uops.iter().filter(|u| u.kind.is_mem()) {
            let a = u.mem_addr().unwrap();
            assert!(a >= 0x1000_0000, "addr {a:#x} below data base");
            assert!(
                a < 0x1000_0000 + (2 << 20),
                "addr {a:#x} beyond working sets"
            );
        }
    }
}
