//! Pre-decoded micro-op buffers: flat structure-of-arrays chunks.
//!
//! [`Workload::trace`] produces micro-ops through a generator object a
//! call at a time; for throughput-critical runs the engine wants to
//! consume micro-ops *by index*, with no virtual dispatch and no per-µop
//! allocation on the hot path. [`TraceBuffer::capture`] runs any workload
//! generator once up front and packs the stream into fixed-size
//! structure-of-arrays chunks — one parallel array per field (packed
//! opcode class, source/destination registers, memory address, branch
//! target + outcome, flags) — and [`TraceCursor`] replays it as a plain
//! `Iterator<Item = MicroOp>` whose `next()` is a handful of indexed
//! loads.
//!
//! The decode is *lossless*: for every workload,
//! `capture(w, n).cursor()` yields the byte-identical stream to
//! `w.trace(n)` (asserted by the round-trip tests below and by the engine
//! golden-digest suite), so the batched path can replace the streaming
//! path anywhere without disturbing a single accounting bit. The
//! streaming iterator stays available as the fallback for workloads too
//! long to hold in memory.

use crate::sample::SampleSource;
use crate::Workload;
use mstacks_model::{
    AluClass, ArchReg, BranchInfo, BranchKind, ElemType, FpOpKind, MicroOp, UopKind, VecFpOp,
    WarmSink,
};
use std::sync::Arc;

/// Micro-ops per chunk. A power of two so cursor arithmetic is shift/mask.
pub const CHUNK_UOPS: usize = 8192;

/// Register slot sentinel: "no register".
const NO_REG: u16 = u16::MAX;

/// Packed opcode-class tags. The tag fully determines which payload
/// arrays are meaningful for the µop.
mod tag {
    pub const NOP: u8 = 0;
    pub const ALU_ADD: u8 = 1;
    pub const ALU_MUL: u8 = 2;
    pub const ALU_DIV: u8 = 3;
    pub const ALU_LEA: u8 = 4;
    // Scalar-FP tags are SFP_FMA + the FpOpKind offset (Fma, Add, Mul,
    // Div, Other); vector-FP tags mirror that from VFP_FMA.
    pub const SFP_FMA: u8 = 5;
    pub const SFP_OTHER: u8 = 9;
    pub const BR_COND: u8 = 10;
    pub const BR_UNCOND: u8 = 11;
    pub const BR_CALL: u8 = 12;
    pub const BR_RET: u8 = 13;
    pub const BR_INDIRECT: u8 = 14;
    pub const LOAD: u8 = 15;
    pub const STORE: u8 = 16;
    pub const VFP_FMA: u8 = 17;
    pub const VFP_OTHER: u8 = 21;
    pub const VECINT: u8 = 22;
}

/// Flag bits (one byte per µop).
mod flag {
    pub const MICROCODED: u8 = 1 << 0;
    pub const TAKEN: u8 = 1 << 1;
    pub const ELEM_F64: u8 = 1 << 2;
}

/// One fixed-capacity structure-of-arrays block of decoded micro-ops.
/// Fields the µop class does not use hold zero.
#[derive(Debug, Default)]
struct Chunk {
    /// Instruction addresses.
    pc: Vec<u64>,
    /// Packed opcode class ([`tag`]).
    op: Vec<u8>,
    /// Flag bits ([`flag`]).
    flags: Vec<u8>,
    /// Primary payload: memory address (loads/stores) or branch target.
    a: Vec<u64>,
    /// Secondary payload: branch fall-through address.
    b: Vec<u64>,
    /// Source registers, [`NO_REG`]-filled.
    srcs: Vec<[u16; 3]>,
    /// Destination register or [`NO_REG`].
    dst: Vec<u16>,
    /// Active vector lanes (VecFp only).
    lanes: Vec<u8>,
}

impl Chunk {
    fn with_capacity(n: usize) -> Self {
        Chunk {
            pc: Vec::with_capacity(n),
            op: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            a: Vec::with_capacity(n),
            b: Vec::with_capacity(n),
            srcs: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            lanes: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.op.len()
    }

    fn push(&mut self, u: &MicroOp) {
        let (op, flags, a, b, lanes) = encode(u);
        self.pc.push(u.pc);
        self.op.push(op);
        self.flags
            .push(flags | if u.microcoded { flag::MICROCODED } else { 0 });
        self.a.push(a);
        self.b.push(b);
        let mut srcs = [NO_REG; 3];
        for (slot, reg) in srcs.iter_mut().zip(&u.src_regs) {
            if let Some(r) = reg {
                *slot = u16::from(*r);
            }
        }
        self.srcs.push(srcs);
        self.dst.push(u.dst.map_or(NO_REG, u16::from));
        self.lanes.push(lanes);
    }

    /// Reconstructs the µop at `i` — a few indexed loads, no allocation.
    #[inline]
    fn decode(&self, i: usize) -> MicroOp {
        let flags = self.flags[i];
        let kind = decode_kind(self.op[i], flags, self.a[i], self.b[i], self.lanes[i]);
        let s = self.srcs[i];
        let reg = |v: u16| (v != NO_REG).then(|| ArchReg::new(v));
        MicroOp {
            pc: self.pc[i],
            kind,
            src_regs: [reg(s[0]), reg(s[1]), reg(s[2])],
            dst: reg(self.dst[i]),
            microcoded: flags & flag::MICROCODED != 0,
        }
    }
}

/// Splits a [`UopKind`] into (tag, flags, payload a, payload b, lanes).
fn encode(u: &MicroOp) -> (u8, u8, u64, u64, u8) {
    use tag::*;
    match u.kind {
        UopKind::Nop => (NOP, 0, 0, 0, 0),
        UopKind::IntAlu(c) => (
            match c {
                AluClass::Add => ALU_ADD,
                AluClass::Mul => ALU_MUL,
                AluClass::Div => ALU_DIV,
                AluClass::Lea => ALU_LEA,
            },
            0,
            0,
            0,
            0,
        ),
        UopKind::ScalarFp(k) => (SFP_FMA + fp_offset(k), 0, 0, 0, 0),
        UopKind::Branch(b) => (
            match b.kind {
                BranchKind::Cond => BR_COND,
                BranchKind::Uncond => BR_UNCOND,
                BranchKind::Call => BR_CALL,
                BranchKind::Ret => BR_RET,
                BranchKind::Indirect => BR_INDIRECT,
            },
            if b.taken { flag::TAKEN } else { 0 },
            b.target,
            b.fallthrough,
            0,
        ),
        UopKind::Load { addr } => (LOAD, 0, addr, 0, 0),
        UopKind::Store { addr } => (STORE, 0, addr, 0, 0),
        UopKind::VecFp(v) => (
            VFP_FMA + fp_offset(v.op),
            if v.elem == ElemType::F64 {
                flag::ELEM_F64
            } else {
                0
            },
            0,
            0,
            v.active_lanes,
        ),
        UopKind::VecInt => (VECINT, 0, 0, 0, 0),
    }
}

#[inline]
fn fp_offset(k: FpOpKind) -> u8 {
    match k {
        FpOpKind::Fma => 0,
        FpOpKind::Add => 1,
        FpOpKind::Mul => 2,
        FpOpKind::Div => 3,
        FpOpKind::Other => 4,
    }
}

#[inline]
fn fp_kind(offset: u8) -> FpOpKind {
    match offset {
        0 => FpOpKind::Fma,
        1 => FpOpKind::Add,
        2 => FpOpKind::Mul,
        3 => FpOpKind::Div,
        _ => FpOpKind::Other,
    }
}

#[inline]
fn decode_kind(op: u8, flags: u8, a: u64, b: u64, lanes: u8) -> UopKind {
    use tag::*;
    match op {
        NOP => UopKind::Nop,
        ALU_ADD => UopKind::IntAlu(AluClass::Add),
        ALU_MUL => UopKind::IntAlu(AluClass::Mul),
        ALU_DIV => UopKind::IntAlu(AluClass::Div),
        ALU_LEA => UopKind::IntAlu(AluClass::Lea),
        SFP_FMA..=SFP_OTHER => UopKind::ScalarFp(fp_kind(op - SFP_FMA)),
        BR_COND..=BR_INDIRECT => UopKind::Branch(BranchInfo {
            taken: flags & flag::TAKEN != 0,
            target: a,
            fallthrough: b,
            kind: match op {
                BR_COND => BranchKind::Cond,
                BR_UNCOND => BranchKind::Uncond,
                BR_CALL => BranchKind::Call,
                BR_RET => BranchKind::Ret,
                _ => BranchKind::Indirect,
            },
        }),
        LOAD => UopKind::Load { addr: a },
        STORE => UopKind::Store { addr: a },
        VFP_FMA..=VFP_OTHER => UopKind::VecFp(VecFpOp {
            op: fp_kind(op - VFP_FMA),
            active_lanes: lanes,
            elem: if flags & flag::ELEM_F64 != 0 {
                ElemType::F64
            } else {
                ElemType::F32
            },
        }),
        VECINT => UopKind::VecInt,
        other => unreachable!("corrupt µop tag {other}"),
    }
}

/// A fully pre-decoded micro-op stream in structure-of-arrays chunks.
///
/// # Example
///
/// ```
/// use mstacks_workloads::{spec, SharedTraceBuffer, TraceBuffer};
///
/// let w = spec::mcf();
/// let buf = TraceBuffer::capture(&w, 1_000).shared();
/// let replay: Vec<_> = buf.cursor().collect();
/// let stream: Vec<_> = w.trace(1_000).collect();
/// assert_eq!(replay, stream);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuffer {
    chunks: Vec<Chunk>,
    len: u64,
}

impl TraceBuffer {
    /// Pre-decodes exactly `len` micro-ops of `w` (the batched equivalent
    /// of [`Workload::trace`]).
    pub fn capture(w: &Workload, len: u64) -> Self {
        Self::from_uops(w.trace(len))
    }

    /// Packs an arbitrary micro-op stream.
    pub fn from_uops(iter: impl Iterator<Item = MicroOp>) -> Self {
        let mut buf = TraceBuffer::default();
        for u in iter {
            buf.push(&u);
        }
        buf
    }

    fn push(&mut self, u: &MicroOp) {
        if self.chunks.last().is_none_or(|c| c.len() >= CHUNK_UOPS) {
            self.chunks.push(Chunk::with_capacity(CHUNK_UOPS));
        }
        self.chunks.last_mut().expect("chunk just ensured").push(u);
        self.len += 1;
    }

    /// Number of micro-ops captured.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of fixed-size chunks backing the buffer.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate resident heap size of the captured arrays, for cache
    /// byte-budget accounting. Counts the SoA column capacity per chunk
    /// (every chunk allocates full `CHUNK_UOPS` columns up front).
    pub fn approx_bytes(&self) -> usize {
        // Per µop: pc(8) + op(1) + flags(1) + a(8) + b(8) + srcs(6) +
        // dst(2) + lanes(1) = 35 bytes of column data.
        const BYTES_PER_UOP: usize = 35;
        self.chunks.len() * CHUNK_UOPS * BYTES_PER_UOP + std::mem::size_of::<Self>()
    }

    /// Wraps the buffer for shared, zero-copy replay: any number of
    /// [`TraceCursor`]s (engine threads, repeated benchmark runs) can read
    /// the same captured arrays.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Decodes the µop at absolute index `i` (`i < len`).
    #[inline]
    fn get(&self, i: u64) -> MicroOp {
        let chunk = (i as usize) / CHUNK_UOPS;
        let off = (i as usize) % CHUNK_UOPS;
        self.chunks[chunk].decode(off)
    }
}

/// An indexed replay of a shared [`TraceBuffer`]: a concrete
/// `Iterator<Item = MicroOp>` the engine monomorphizes over, so the hot
/// path has zero virtual dispatch and zero allocation per µop.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    buf: Arc<TraceBuffer>,
    next: u64,
    end: u64,
}

impl TraceCursor {
    /// A cursor over the whole buffer.
    pub fn new(buf: Arc<TraceBuffer>) -> Self {
        let end = buf.len();
        TraceCursor { buf, next: 0, end }
    }

    /// A cursor over µop indices `[start, end)` — the unit interval
    /// sampling slices windows out of.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` exceeds the buffer length.
    pub fn slice(buf: Arc<TraceBuffer>, start: u64, end: u64) -> Self {
        assert!(
            start <= end && end <= buf.len(),
            "cursor [{start}, {end}) out of bounds for buffer of {}",
            buf.len()
        );
        TraceCursor {
            buf,
            next: start,
            end,
        }
    }
}

impl Iterator for TraceCursor {
    type Item = MicroOp;

    #[inline]
    fn next(&mut self) -> Option<MicroOp> {
        if self.next >= self.end {
            return None;
        }
        let u = self.buf.get(self.next);
        self.next += 1;
        Some(u)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceCursor {}

/// Micro-ops decoded per [`BatchCursor`] refill. Small enough that the
/// working batch stays L1-resident, large enough to amortize the chunk
/// lookup and loop setup across hundreds of µops.
pub const BATCH_UOPS: usize = 256;

/// A batched replay of a shared [`TraceBuffer`] — the hot-path feed.
///
/// Where [`TraceCursor`] locates a chunk and decodes one µop per `next()`
/// call, `BatchCursor` refills a reusable [`BATCH_UOPS`]-deep buffer
/// straight from the chunk columns: one tight pass over the tag/payload
/// columns reconstructs the kinds, a second zipped pass fills the
/// register slots (the same column-walk shape as
/// [`SampleSource::warm_range`]). `next()` is then an indexed copy out of
/// the batch. The decode functions are shared with `TraceCursor`, so the
/// stream is byte-identical to the per-µop fallback — `TraceCursor`
/// remains available as the equivalence witness.
#[derive(Debug, Clone)]
pub struct BatchCursor {
    buf: Arc<TraceBuffer>,
    /// Absolute index of the first µop not yet decoded into `batch`.
    next: u64,
    end: u64,
    batch: Vec<MicroOp>,
    pos: usize,
}

impl BatchCursor {
    /// A batched cursor over the whole buffer.
    pub fn new(buf: Arc<TraceBuffer>) -> Self {
        let end = buf.len();
        Self::slice(buf, 0, end)
    }

    /// A batched cursor over µop indices `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` exceeds the buffer length.
    pub fn slice(buf: Arc<TraceBuffer>, start: u64, end: u64) -> Self {
        assert!(
            start <= end && end <= buf.len(),
            "cursor [{start}, {end}) out of bounds for buffer of {}",
            buf.len()
        );
        BatchCursor {
            buf,
            next: start,
            end,
            batch: Vec::with_capacity(BATCH_UOPS),
            pos: 0,
        }
    }

    /// Decodes the next run of µops into the batch buffer and returns the
    /// first. A refill never crosses a chunk boundary, so both column
    /// passes index a single chunk's arrays.
    #[cold]
    fn refill(&mut self) -> Option<MicroOp> {
        self.batch.clear();
        self.pos = 0;
        if self.next >= self.end {
            return None;
        }
        let i = self.next as usize;
        let c = &self.buf.chunks[i / CHUNK_UOPS];
        let off = i % CHUNK_UOPS;
        let take = BATCH_UOPS
            .min(CHUNK_UOPS - off)
            .min((self.end - self.next) as usize);
        // Column pass 1: tag + payload columns → pc, kind, microcode flag.
        for j in off..off + take {
            let flags = c.flags[j];
            self.batch.push(MicroOp {
                pc: c.pc[j],
                kind: decode_kind(c.op[j], flags, c.a[j], c.b[j], c.lanes[j]),
                src_regs: [None; 3],
                dst: None,
                microcoded: flags & flag::MICROCODED != 0,
            });
        }
        // Column pass 2: register columns.
        let reg = |v: u16| (v != NO_REG).then(|| ArchReg::new(v));
        let srcs = &c.srcs[off..off + take];
        let dst = &c.dst[off..off + take];
        for (u, (s, &d)) in self.batch.iter_mut().zip(srcs.iter().zip(dst)) {
            u.src_regs = [reg(s[0]), reg(s[1]), reg(s[2])];
            u.dst = reg(d);
        }
        self.next += take as u64;
        self.pos = 1;
        Some(self.batch[0])
    }
}

impl Iterator for BatchCursor {
    type Item = MicroOp;

    #[inline]
    fn next(&mut self) -> Option<MicroOp> {
        if let Some(&u) = self.batch.get(self.pos) {
            self.pos += 1;
            return Some(u);
        }
        self.refill()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize + (self.batch.len() - self.pos);
        (n, Some(n))
    }
}

impl ExactSizeIterator for BatchCursor {}

/// Cursor constructors on the shared handle, so call sites read
/// `buf.cursor()` / `buf.window(a, b)` instead of spelling the Arc clone.
/// Both return the batched cursor — the default hot path; reach for
/// [`TraceCursor`] explicitly when the per-µop fallback is wanted.
pub trait SharedTraceBuffer {
    /// A batched cursor over the whole buffer.
    fn cursor(&self) -> BatchCursor;
    /// A batched cursor over µop indices `[start, end)`.
    fn window(&self, start: u64, end: u64) -> BatchCursor;
    /// The per-µop fallback cursor over the whole buffer (equivalence
    /// witness for the batched path).
    fn cursor_per_uop(&self) -> TraceCursor;
}

impl SharedTraceBuffer for Arc<TraceBuffer> {
    fn cursor(&self) -> BatchCursor {
        BatchCursor::new(self.clone())
    }

    fn window(&self, start: u64, end: u64) -> BatchCursor {
        BatchCursor::slice(self.clone(), start, end)
    }

    fn cursor_per_uop(&self) -> TraceCursor {
        TraceCursor::new(self.clone())
    }
}

/// The batched sampling source: detailed windows replay through
/// [`BatchCursor`], and fast-forward segments stream straight out of the
/// packed chunk columns — no [`MicroOp`] is materialized, because the
/// warm paths only consume the program counter, the branch outcome and
/// the data address. Cuts fast-forward time roughly in half versus the
/// cursor fallback (the decode is ~55% of it).
impl SampleSource for Arc<TraceBuffer> {
    type Window = BatchCursor;

    fn window(&self, start: u64, end: u64) -> BatchCursor {
        BatchCursor::slice(self.clone(), start, end)
    }

    fn warm_range(&self, start: u64, end: u64, sink: &mut impl WarmSink) {
        assert!(
            start <= end && end <= self.len,
            "warm range [{start}, {end}) out of bounds for buffer of {}",
            self.len
        );
        let (mut i, end) = (start as usize, end as usize);
        while i < end {
            let c = &self.chunks[i / CHUNK_UOPS];
            let off = i % CHUNK_UOPS;
            let take = (CHUNK_UOPS - off).min(end - i);
            // One match on the packed tag per µop; the branch payload is
            // reassembled only for actual branches. Call order per µop
            // matches `WarmSink::feed` exactly.
            for j in off..off + take {
                let pc = c.pc[j];
                sink.inst(pc);
                match c.op[j] {
                    tag::LOAD => sink.load(c.a[j], pc),
                    tag::STORE => sink.store(c.a[j], pc),
                    op @ tag::BR_COND..=tag::BR_INDIRECT => {
                        let info = BranchInfo {
                            taken: c.flags[j] & flag::TAKEN != 0,
                            target: c.a[j],
                            fallthrough: c.b[j],
                            kind: match op {
                                tag::BR_COND => BranchKind::Cond,
                                tag::BR_UNCOND => BranchKind::Uncond,
                                tag::BR_CALL => BranchKind::Call,
                                tag::BR_RET => BranchKind::Ret,
                                _ => BranchKind::Indirect,
                            },
                        };
                        sink.branch(pc, &info);
                    }
                    _ => {}
                }
            }
            i += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deepbench, spec, ConvPhase, GemmStyle, RnnCell};

    #[test]
    fn round_trip_is_lossless_for_every_profile() {
        let mut workloads = spec::all();
        workloads.extend([
            Workload::Gemm {
                cfg: deepbench::sgemm_train_configs()[0],
                style: GemmStyle::KnlJit,
                lanes: 16,
            },
            Workload::Gemm {
                cfg: deepbench::sgemm_inference_configs()[0],
                style: GemmStyle::SkxBroadcast,
                lanes: 8,
            },
            Workload::Conv {
                cfg: deepbench::conv_configs()[0],
                phase: ConvPhase::Forward,
                lanes: 16,
            },
            Workload::Rnn {
                cfg: deepbench::rnn_configs()[0],
                cell: RnnCell::Lstm,
                lanes: 16,
            },
            Workload::Sequence(vec![(spec::exchange2(), 700), (spec::mcf(), 450)]),
        ]);
        for w in workloads {
            let n = 3_000;
            let buf = TraceBuffer::capture(&w, n).shared();
            assert_eq!(buf.len(), n);
            let replay: Vec<_> = TraceCursor::new(buf.clone()).collect();
            let stream: Vec<_> = w.trace(n).collect();
            assert_eq!(replay, stream, "decode mismatch for {}", w.name());
        }
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        let w = spec::mcf();
        let n = (CHUNK_UOPS as u64) * 2 + 17;
        let buf = TraceBuffer::capture(&w, n).shared();
        assert_eq!(buf.chunk_count(), 3);
        let replay: Vec<_> = buf.cursor().collect();
        let stream: Vec<_> = w.trace(n).collect();
        assert_eq!(replay.len() as u64, n);
        assert_eq!(replay, stream);
    }

    #[test]
    fn slices_compose_to_the_whole() {
        let w = spec::xz();
        let n = 10_000u64;
        let buf = TraceBuffer::capture(&w, n).shared();
        let mut joined = Vec::new();
        for (s, e) in [(0, 2_500), (2_500, 9_000), (9_000, n)] {
            joined.extend(TraceCursor::slice(buf.clone(), s, e));
        }
        assert_eq!(joined, w.trace(n).collect::<Vec<_>>());
        assert_eq!(TraceCursor::slice(buf.clone(), n, n).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let buf = TraceBuffer::capture(&spec::mcf(), 10).shared();
        let _ = TraceCursor::slice(buf, 5, 11);
    }

    /// Logs every warm call so the batched column walk can be compared
    /// against the per-µop fallback, call for call.
    #[derive(Default, PartialEq, Debug)]
    struct RecordingSink(Vec<(u8, u64, u64)>);

    impl WarmSink for RecordingSink {
        fn inst(&mut self, pc: u64) {
            self.0.push((0, pc, 0));
        }
        fn branch(&mut self, pc: u64, info: &BranchInfo) {
            self.0
                .push((1, pc, info.target ^ (u64::from(info.taken) << 63)));
        }
        fn load(&mut self, addr: u64, pc: u64) {
            self.0.push((2, addr, pc));
        }
        fn store(&mut self, addr: u64, pc: u64) {
            self.0.push((3, addr, pc));
        }
    }

    #[test]
    fn batched_warm_range_matches_the_cursor_fallback() {
        for w in spec::all() {
            let n = (CHUNK_UOPS as u64) + 700; // crosses a chunk boundary
            let buf = TraceBuffer::capture(&w, n).shared();
            let (mut batched, mut fallback) = (RecordingSink::default(), RecordingSink::default());
            buf.warm_range(13, n - 9, &mut batched);
            for uop in SampleSource::window(&buf, 13, n - 9) {
                fallback.feed(&uop);
            }
            assert_eq!(batched, fallback, "warm divergence for {}", w.name());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_warm_range_panics() {
        let buf = TraceBuffer::capture(&spec::mcf(), 10).shared();
        buf.warm_range(0, 11, &mut RecordingSink::default());
    }

    #[test]
    fn exact_size_and_shared_cursors() {
        let buf = TraceBuffer::capture(&spec::mcf(), 500).shared();
        let c1 = buf.cursor();
        assert_eq!(c1.len(), 500);
        let c2 = buf.cursor();
        assert_eq!(c1.collect::<Vec<_>>(), c2.collect::<Vec<_>>());
    }

    #[test]
    fn batch_cursor_matches_per_uop_cursor_for_every_profile() {
        for w in spec::all() {
            // Crosses batch boundaries (256) and a chunk boundary (8192).
            let n = (CHUNK_UOPS as u64) + BATCH_UOPS as u64 + 57;
            let buf = TraceBuffer::capture(&w, n).shared();
            let batched: Vec<_> = buf.cursor().collect();
            let fallback: Vec<_> = buf.cursor_per_uop().collect();
            assert_eq!(batched, fallback, "batch divergence for {}", w.name());
        }
    }

    #[test]
    fn batch_cursor_slices_compose_to_the_whole() {
        let w = spec::xz();
        let n = 10_000u64;
        let buf = TraceBuffer::capture(&w, n).shared();
        let mut joined = Vec::new();
        // Seams at a batch boundary, mid-batch, and the end.
        for (s, e) in [(0, 256), (256, 301), (301, 9_000), (9_000, n)] {
            joined.extend(BatchCursor::slice(buf.clone(), s, e));
        }
        assert_eq!(joined, w.trace(n).collect::<Vec<_>>());
        assert_eq!(BatchCursor::slice(buf.clone(), n, n).count(), 0);
    }

    #[test]
    fn batch_cursor_size_hint_tracks_consumption() {
        let buf = TraceBuffer::capture(&spec::mcf(), 600).shared();
        let mut c = buf.cursor();
        assert_eq!(c.len(), 600);
        for consumed in 1..=300 {
            c.next().expect("in range");
            assert_eq!(c.len(), 600 - consumed);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_batch_slice_panics() {
        let buf = TraceBuffer::capture(&spec::mcf(), 10).shared();
        let _ = BatchCursor::slice(buf, 5, 11);
    }
}
