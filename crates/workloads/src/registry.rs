//! Process-wide shared capture registry: one decoded [`TraceBuffer`] per
//! distinct `(workload, length)`, shared across concurrent requesters.
//!
//! A long-running service sees the same workloads over and over; decoding
//! a 4M-µop trace into the SoA buffer costs real time and ~35 B/µop of
//! memory, so concurrent requests for the same profile must decode it
//! *once* (single-flight) and later requests must reuse the resident
//! buffer. The registry keys on the workload's `Debug` form (a faithful,
//! total serialization of the generator parameters — the same property
//! [`Workload`]'s `PartialEq` relies on) plus the requested length, and
//! evicts least-recently-used buffers once a byte budget is exceeded.
//! Eviction only drops the registry's reference: in-flight simulations
//! keep their `Arc` alive until they finish.

use crate::{TraceBuffer, Workload};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Registry statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests served from a resident buffer.
    pub hits: u64,
    /// Requests that captured a fresh buffer.
    pub misses: u64,
    /// Requests that waited for another thread's in-flight capture.
    pub joined: u64,
    /// Buffers dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
}

#[derive(Clone)]
enum Slot {
    /// Another thread is capturing; wait on the condvar.
    Building,
    /// Resident buffer with its LRU timestamp.
    Ready { buf: Arc<TraceBuffer>, used: u64 },
}

struct Inner {
    slots: HashMap<(String, u64), Slot>,
    stats: RegistryStats,
    /// Logical clock for LRU ordering.
    tick: u64,
}

/// Shared, single-flight capture cache (see module docs).
pub struct CaptureRegistry {
    inner: Mutex<Inner>,
    ready: Condvar,
    budget_bytes: usize,
}

impl CaptureRegistry {
    /// A registry that keeps at most ~`budget_bytes` of decoded trace
    /// resident (the budget is advisory per-entry: a single buffer larger
    /// than the budget is still cached until the next insertion).
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        CaptureRegistry {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                stats: RegistryStats::default(),
                tick: 0,
            }),
            ready: Condvar::new(),
            budget_bytes,
        }
    }

    /// The decoded buffer for `(w, uops)` — captured now if absent,
    /// joined if another thread is mid-capture, returned immediately if
    /// resident.
    pub fn get_or_capture(&self, w: &Workload, uops: u64) -> Arc<TraceBuffer> {
        let key = (format!("{w:?}"), uops);
        let mut inner = self.inner.lock().expect("registry poisoned");
        loop {
            match inner.slots.get(&key) {
                Some(Slot::Ready { .. }) => {
                    inner.tick += 1;
                    inner.stats.hits += 1;
                    let now = inner.tick;
                    if let Some(Slot::Ready { buf, used }) = inner.slots.get_mut(&key) {
                        *used = now;
                        return buf.clone();
                    }
                    unreachable!("entry vanished under the lock");
                }
                Some(Slot::Building) => {
                    inner.stats.joined += 1;
                    inner = self.ready.wait(inner).expect("registry poisoned");
                }
                None => {
                    inner.slots.insert(key.clone(), Slot::Building);
                    inner.stats.misses += 1;
                    drop(inner);
                    // Capture outside the lock; on unwind, clear the
                    // Building slot so waiters retry instead of hanging.
                    let mut guard = ClearOnDrop {
                        reg: self,
                        key: key.clone(),
                        armed: true,
                    };
                    let buf = TraceBuffer::capture(w, uops).shared();
                    guard.armed = false;
                    drop(guard);
                    let mut inner = self.inner.lock().expect("registry poisoned");
                    inner.tick += 1;
                    let used = inner.tick;
                    inner.stats.resident_bytes += buf.approx_bytes();
                    inner.slots.insert(
                        key,
                        Slot::Ready {
                            buf: buf.clone(),
                            used,
                        },
                    );
                    self.evict_over_budget(&mut inner);
                    drop(inner);
                    self.ready.notify_all();
                    return buf;
                }
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> RegistryStats {
        self.inner.lock().expect("registry poisoned").stats
    }

    /// Drops least-recently-used Ready entries until the budget holds.
    fn evict_over_budget(&self, inner: &mut Inner) {
        while inner.stats.resident_bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { used, .. } => Some((*used, k.clone())),
                    Slot::Building => None,
                })
                .min()
                .map(|(_, k)| k);
            let Some(k) = victim else { return };
            // Never evict the entry we just inserted if it is the only one
            // (a single oversized buffer stays resident until displaced).
            if inner
                .slots
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count()
                <= 1
            {
                return;
            }
            if let Some(Slot::Ready { buf, .. }) = inner.slots.remove(&k) {
                inner.stats.resident_bytes = inner
                    .stats
                    .resident_bytes
                    .saturating_sub(buf.approx_bytes());
                inner.stats.evictions += 1;
            }
        }
    }
}

/// Removes a `Building` slot if the capture unwound, waking waiters.
struct ClearOnDrop<'a> {
    reg: &'a CaptureRegistry,
    key: (String, u64),
    armed: bool,
}

impl Drop for ClearOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut inner) = self.reg.inner.lock() {
                inner.slots.remove(&self.key);
            }
            self.reg.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_buffer() {
        let reg = CaptureRegistry::new(64 << 20);
        let a = reg.get_or_capture(&spec::mcf(), 10_000);
        let b = reg.get_or_capture(&spec::mcf(), 10_000);
        assert!(Arc::ptr_eq(&a, &b));
        let s = reg.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn distinct_lengths_are_distinct_entries() {
        let reg = CaptureRegistry::new(64 << 20);
        let a = reg.get_or_capture(&spec::mcf(), 10_000);
        let b = reg.get_or_capture(&spec::mcf(), 20_000);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // Each 10k-µop capture is ~2 chunks ≈ 570 KB; a 1 MB budget holds
        // one buffer but not two.
        let one = TraceBuffer::capture(&spec::mcf(), 10_000).approx_bytes();
        let reg = CaptureRegistry::new(one + one / 2);
        reg.get_or_capture(&spec::mcf(), 10_000);
        reg.get_or_capture(&spec::lbm(), 10_000);
        let s = reg.stats();
        assert_eq!(s.evictions, 1, "{s:?}");
        assert!(s.resident_bytes <= one + one / 2, "{s:?}");
        // The evicted (older) entry re-captures; the survivor hits.
        reg.get_or_capture(&spec::lbm(), 10_000);
        assert_eq!(reg.stats().hits, 1);
        reg.get_or_capture(&spec::mcf(), 10_000);
        assert_eq!(reg.stats().misses, 3);
    }

    #[test]
    fn concurrent_same_key_requests_capture_once() {
        let reg = Arc::new(CaptureRegistry::new(64 << 20));
        let bufs: Vec<Arc<TraceBuffer>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let reg = reg.clone();
                    s.spawn(move || reg.get_or_capture(&spec::bwaves(), 50_000))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for b in &bufs[1..] {
            assert!(Arc::ptr_eq(&bufs[0], b), "all callers share one capture");
        }
        let s = reg.stats();
        // Exactly one capture; every other thread resolved to a hit
        // (after joining the in-flight capture or arriving late).
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.hits, 7, "{s:?}");
    }
}
