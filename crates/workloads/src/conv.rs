//! Convolution kernel traces (forward, backward-filter, backward-data).
//!
//! Convolution inner loops carry much more integer/addressing overhead per
//! FMA than GEMM (im2col index arithmetic, boundary handling), so their
//! VFP fraction is lower — in FLOPS-stack terms, a large **frontend**
//! component (paper Fig. 4, conv suites). The backward phases add extra
//! memory traffic: `bwd_filter` accumulates into the filter gradient
//! (load+store per FMA group), `bwd_data` scatters with spatial stride
//! (worse locality).

use crate::deepbench::ConvConfig;
use mstacks_model::{
    AluClass, ArchReg, BranchInfo, BranchKind, ElemType, FpOpKind, MicroOp, UopKind, VecFpOp,
};
use std::collections::VecDeque;

/// Which phase of training the kernel computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvPhase {
    /// Forward propagation.
    Forward,
    /// Backward pass w.r.t. the filter weights.
    BackwardFilter,
    /// Backward pass w.r.t. the input data.
    BackwardData,
}

impl std::fmt::Display for ConvPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvPhase::Forward => write!(f, "fwd"),
            ConvPhase::BackwardFilter => write!(f, "bwd_f"),
            ConvPhase::BackwardData => write!(f, "bwd_d"),
        }
    }
}

const IN_BASE: u64 = 0x2000_0000;
const LOOP_PC: u64 = 0x40_3000;

const ACC_BASE: u16 = 64;
const LOAD_RING: u16 = 8;
const IDX0: u16 = 1;
const IDX1: u16 = 2;
const IDX2: u16 = 3;

/// A deterministic trace of one convolution phase.
#[derive(Debug, Clone)]
pub struct ConvTrace {
    cfg: ConvConfig,
    phase: ConvPhase,
    lanes: u8,
    queue: VecDeque<MicroOp>,
    iter: u64,
    in_pos: u64,
    out_pos: u64,
    in_bytes: u64,
    filt_bytes: u64,
    out_bytes: u64,
}

impl ConvTrace {
    /// Starts the kernel for `cfg` / `phase` with `lanes` vector lanes.
    pub fn new(cfg: ConvConfig, phase: ConvPhase, lanes: u8) -> Self {
        let in_bytes = (cfg.w * cfg.h * cfg.c * cfg.n * 4) as u64;
        let filt_bytes = (cfg.fw * cfg.fh * cfg.c * cfg.k * 4) as u64;
        let out_bytes = (cfg.out_w() * cfg.out_h() * cfg.k * cfg.n * 4) as u64;
        ConvTrace {
            cfg,
            phase,
            lanes,
            queue: VecDeque::with_capacity(64),
            iter: 0,
            in_pos: 0,
            out_pos: 0,
            in_bytes: in_bytes.max(4096),
            filt_bytes: filt_bytes.max(4096),
            out_bytes: out_bytes.max(4096),
        }
    }

    fn filt_base(&self) -> u64 {
        IN_BASE + ((self.in_bytes + 4095) & !4095)
    }

    fn out_base(&self) -> u64 {
        self.filt_base() + ((self.filt_bytes + 4095) & !4095)
    }

    fn push_idx_math(&mut self, pc: &mut u64, count: usize) {
        // Three independent index chains (w, h, c counters): serial within
        // a chain, parallel across chains — enough ILP to keep a 4-wide
        // core fed, as compiled loop nests are.
        for i in 0..count {
            let (src, dst) = match i % 3 {
                0 => (IDX0, IDX0),
                1 => (IDX1, IDX1),
                _ => (IDX2, IDX2),
            };
            let class = if i % 2 == 0 {
                AluClass::Lea
            } else {
                AluClass::Add
            };
            self.queue.push_back(
                MicroOp::new(*pc, UopKind::IntAlu(class))
                    .with_src(ArchReg::new(src))
                    .with_dst(ArchReg::new(dst)),
            );
            *pc += 4;
        }
    }

    fn fma(&self, pc: u64, acc: u16, src: u16) -> MicroOp {
        MicroOp::new(
            pc,
            UopKind::VecFp(VecFpOp {
                op: FpOpKind::Fma,
                active_lanes: self.lanes,
                elem: ElemType::F32,
            }),
        )
        .with_src(ArchReg::new(acc))
        .with_src(ArchReg::new(src))
        .with_dst(ArchReg::new(acc))
    }

    /// Emits one filter-position iteration.
    fn emit_iteration(&mut self) {
        let mut pc = LOOP_PC;
        let vec_bytes = u64::from(self.lanes) * 4;
        let stride_bytes = (self.cfg.stride * 4) as u64;

        // im2col-style index arithmetic: the frontend overhead that keeps
        // the VFP fraction low.
        let idx_ops = match self.phase {
            ConvPhase::Forward => 4,
            ConvPhase::BackwardFilter => 5,
            ConvPhase::BackwardData => 6,
        };
        self.push_idx_math(&mut pc, idx_ops);

        // Input row load. Real kernels are register/L1-blocked: the cursor
        // slides sub-line inside an 8 KiB window that migrates across the
        // input between outer iterations, so most accesses are L1 hits
        // (strided layers advance faster).
        const IN_WINDOW: u64 = 8 * 1024;
        let in_step = 16 * (1 + stride_bytes / 4);
        // The window is reused across all K output filters before moving.
        let window = ((self.iter / 4096) * IN_WINDOW) % self.in_bytes.max(IN_WINDOW);
        let in_addr = IN_BASE + window + (self.in_pos % IN_WINDOW.min(self.in_bytes));
        self.in_pos = self.in_pos.wrapping_add(in_step);
        let _ = vec_bytes;
        self.queue.push_back(
            MicroOp::new(pc, UopKind::Load { addr: in_addr })
                .with_src(ArchReg::new(IDX0))
                .with_dst(ArchReg::new(LOAD_RING)),
        );
        pc += 4;

        // Filter load: the active filter slice is hot in the L1.
        const F_WINDOW: u64 = 4 * 1024;
        let f_addr = self.filt_base()
            + ((self.iter / 2048) * F_WINDOW) % self.filt_bytes.max(F_WINDOW)
            + (self.iter * 8) % F_WINDOW.min(self.filt_bytes);
        self.queue.push_back(
            MicroOp::new(pc, UopKind::Load { addr: f_addr })
                .with_src(ArchReg::new(IDX1))
                .with_dst(ArchReg::new(LOAD_RING + 1)),
        );
        pc += 4;

        // FMA group: fewer per loads than GEMM.
        let fmas = match self.phase {
            ConvPhase::Forward => 3,
            ConvPhase::BackwardFilter => 2,
            ConvPhase::BackwardData => 2,
        };
        for r in 0..fmas {
            // Rotate through 8 accumulators so FMA chains overlap across
            // iterations (register-blocked kernels do exactly this).
            let acc = ACC_BASE + ((self.iter as u16).wrapping_mul(fmas as u16) + r as u16) % 8;
            let f = self
                .fma(pc, acc, LOAD_RING)
                .with_src(ArchReg::new(LOAD_RING + 1));
            self.queue.push_back(f);
            pc += 4;
        }

        // Phase-specific extra memory traffic.
        match self.phase {
            ConvPhase::Forward => {
                // Output store once per few iterations (sequential stream).
                if self.iter % 4 == 3 {
                    let addr = self.out_base() + self.out_pos;
                    self.out_pos = (self.out_pos + 16) % self.out_bytes;
                    self.queue.push_back(
                        MicroOp::new(pc, UopKind::Store { addr }).with_src(ArchReg::new(ACC_BASE)),
                    );
                    pc += 4;
                }
            }
            ConvPhase::BackwardFilter => {
                // Accumulate into the (hot) filter gradient: load + store.
                let addr = self.filt_base() + (self.iter * 16) % (4 * 1024).min(self.filt_bytes);
                self.queue.push_back(
                    MicroOp::new(pc, UopKind::Load { addr }).with_dst(ArchReg::new(LOAD_RING + 2)),
                );
                pc += 4;
                self.queue.push_back(
                    MicroOp::new(pc, UopKind::Store { addr }).with_src(ArchReg::new(ACC_BASE)),
                );
                pc += 4;
            }
            ConvPhase::BackwardData => {
                // Strided scatter into the input gradient: worse locality
                // than the forward stream, but still window-local.
                let scatter_step = 64 * (1 + stride_bytes);
                let addr = self.out_base() + (self.iter * scatter_step) % self.out_bytes;
                self.queue.push_back(
                    MicroOp::new(pc, UopKind::Store { addr }).with_src(ArchReg::new(ACC_BASE)),
                );
                pc += 4;
            }
        }

        // Loop branch over filter positions (predictable).
        let trips = (self.cfg.fw * self.cfg.fh * self.cfg.c / usize::from(self.lanes)).max(4);
        self.iter += 1;
        let stay = !self.iter.is_multiple_of(trips as u64);
        self.queue.push_back(MicroOp::new(
            pc,
            UopKind::Branch(BranchInfo {
                taken: stay,
                target: LOOP_PC,
                fallthrough: pc + 4,
                kind: BranchKind::Cond,
            }),
        ));
        if !stay {
            // Outer-loop bookkeeping: a couple of scalar ops and a jump.
            let mut opc = pc + 4;
            self.push_idx_math(&mut opc, 2);
            self.queue.push_back(MicroOp::new(
                opc,
                UopKind::Branch(BranchInfo {
                    taken: true,
                    target: LOOP_PC,
                    fallthrough: opc + 4,
                    kind: BranchKind::Uncond,
                }),
            ));
        }
    }
}

impl Iterator for ConvTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.queue.is_empty() {
            self.emit_iteration();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deepbench::conv_configs;

    fn cfg() -> ConvConfig {
        conv_configs()[2]
    }

    fn uops(phase: ConvPhase, n: usize) -> Vec<MicroOp> {
        ConvTrace::new(cfg(), phase, 16).take(n).collect()
    }

    #[test]
    fn all_phases_generate() {
        for phase in [
            ConvPhase::Forward,
            ConvPhase::BackwardFilter,
            ConvPhase::BackwardData,
        ] {
            let us = uops(phase, 5_000);
            assert_eq!(us.len(), 5_000);
            assert!(us.iter().any(|u| u.kind.is_vfp()), "{phase}");
            assert!(us.iter().any(|u| u.kind.is_branch()), "{phase}");
        }
    }

    #[test]
    fn conv_vfp_fraction_below_gemm() {
        use crate::deepbench::GemmConfig;
        use crate::gemm::{GemmStyle, GemmTrace};
        let conv_vfp = uops(ConvPhase::Forward, 20_000)
            .iter()
            .filter(|u| u.kind.is_vfp())
            .count();
        let gemm_vfp = GemmTrace::new(
            GemmConfig {
                m: 64,
                n: 64,
                k: 64,
                train: true,
            },
            GemmStyle::SkxBroadcast,
            16,
        )
        .take(20_000)
        .filter(|u| u.kind.is_vfp())
        .count();
        assert!(
            conv_vfp < gemm_vfp,
            "conv VFP fraction ({conv_vfp}) must be below gemm ({gemm_vfp})"
        );
    }

    #[test]
    fn bwd_filter_has_more_stores_than_fwd() {
        let count_stores = |p| {
            uops(p, 20_000)
                .iter()
                .filter(|u| matches!(u.kind, UopKind::Store { .. }))
                .count()
        };
        assert!(count_stores(ConvPhase::BackwardFilter) > count_stores(ConvPhase::Forward));
    }

    #[test]
    fn deterministic() {
        let a = uops(ConvPhase::BackwardData, 3_000);
        let b = uops(ConvPhase::BackwardData, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn phase_display() {
        assert_eq!(ConvPhase::Forward.to_string(), "fwd");
        assert_eq!(ConvPhase::BackwardFilter.to_string(), "bwd_f");
        assert_eq!(ConvPhase::BackwardData.to_string(), "bwd_d");
    }
}
