//! Workload generators for the `mstacks` simulator.
//!
//! The ISPASS 2018 paper evaluates on SPEC CPU 2017 and DeepBench — neither
//! of which is available as portable traces. This crate provides the
//! substitutes (documented in `DESIGN.md`):
//!
//! * **Synthetic SPEC-like profiles** ([`spec`]): seeded, program-shaped
//!   micro-op streams built from a basic-block graph with static per-block
//!   instruction mixes, loop/biased/random branch patterns, and dynamic
//!   address streams over configurable working sets. Each named profile
//!   (`mcf`, `cactus`, `bwaves`, `povray`, `imagick`, …) targets the
//!   bottleneck structure the paper reports for the matching benchmark.
//! * **DeepBench-like kernels** ([`gemm`], [`conv`]): instruction-accurate
//!   inner loops of blocked sgemm (in the two codegen styles the paper
//!   contrasts: KNL jit FMA-with-memory-operand vs. SKX
//!   load+broadcast+register-FMA) and convolution phases (fwd, bwd_filter,
//!   bwd_data), over the configuration lists in [`deepbench`].
//!
//! All generators are deterministic: the same [`Workload`] and length
//! always produce the identical micro-op stream.
//!
//! # Example
//!
//! ```
//! use mstacks_workloads::spec;
//!
//! let w = spec::mcf();
//! let uops: Vec<_> = w.trace(1_000).collect();
//! assert_eq!(uops.len(), 1_000);
//! // Deterministic:
//! let again: Vec<_> = w.trace(1_000).collect();
//! assert_eq!(uops, again);
//! ```

pub mod addr;
pub mod buffer;
pub mod conv;
pub mod deepbench;
pub mod gemm;
pub mod program;
pub mod registry;
pub mod rnn;
pub mod sample;
pub mod spec;
pub mod synth;

use mstacks_model::MicroOp;

pub use buffer::{BatchCursor, SharedTraceBuffer, TraceBuffer, TraceCursor};
pub use conv::{ConvPhase, ConvTrace};
pub use deepbench::{ConvConfig, GemmConfig, RnnConfig};
pub use gemm::{GemmStyle, GemmTrace};
pub use registry::{CaptureRegistry, RegistryStats};
pub use rnn::{RnnCell, RnnTrace};
pub use sample::{SampleSource, WindowFn};
pub use synth::SynthParams;

/// A named, deterministic micro-op stream generator.
///
/// `PartialEq` compares the full generator parameters — two equal
/// workloads produce byte-identical traces, which is what lets sweep
/// drivers share one captured [`TraceBuffer`] between equal points.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Workload values are few and long-lived
pub enum Workload {
    /// Synthetic program-shaped workload (SPEC-like profile).
    Synth(SynthParams),
    /// Blocked single-precision GEMM kernel.
    Gemm {
        /// Matrix dimensions.
        cfg: GemmConfig,
        /// Codegen style (KNL jit vs SKX broadcast).
        style: GemmStyle,
        /// Vector lanes (16 for AVX-512, 8 for AVX2).
        lanes: u8,
    },
    /// Convolution kernel phase.
    Conv {
        /// Layer shape.
        cfg: ConvConfig,
        /// Forward / backward-filter / backward-data.
        phase: ConvPhase,
        /// Vector lanes.
        lanes: u8,
    },
    /// Recurrent-cell kernel (vanilla RNN / LSTM / GRU time steps).
    Rnn {
        /// Layer shape.
        cfg: RnnConfig,
        /// Cell type.
        cell: RnnCell,
        /// Vector lanes.
        lanes: u8,
    },
    /// A multi-phase workload: phases run in order, each for its given
    /// micro-op budget, and the whole sequence repeats if the requested
    /// trace is longer (program phase behaviour for the interval-stack
    /// analysis).
    Sequence(Vec<(Workload, u64)>),
}

impl Workload {
    /// The workload's display name.
    pub fn name(&self) -> String {
        match self {
            Workload::Synth(p) => p.name.to_string(),
            Workload::Gemm { cfg, style, .. } => {
                format!("sgemm-{}x{}x{}-{}", cfg.m, cfg.n, cfg.k, style)
            }
            Workload::Conv { cfg, phase, .. } => {
                format!("conv-{}x{}x{}k{}-{}", cfg.w, cfg.h, cfg.c, cfg.k, phase)
            }
            Workload::Rnn { cfg, cell, .. } => {
                format!("{}-h{}b{}", cell, cfg.hidden, cfg.batch)
            }
            Workload::Sequence(phases) => {
                let names: Vec<String> = phases.iter().map(|(w, _)| w.name()).collect();
                format!("seq({})", names.join("→"))
            }
        }
    }

    /// A fresh, deterministic trace of exactly `len` micro-ops.
    pub fn trace(&self, len: u64) -> Box<dyn Iterator<Item = MicroOp>> {
        match self {
            Workload::Synth(p) => Box::new(synth::SynthTrace::new(p.clone()).take(len as usize)),
            Workload::Gemm { cfg, style, lanes } => {
                Box::new(GemmTrace::new(*cfg, *style, *lanes).take(len as usize))
            }
            Workload::Conv { cfg, phase, lanes } => {
                Box::new(ConvTrace::new(*cfg, *phase, *lanes).take(len as usize))
            }
            Workload::Rnn { cfg, cell, lanes } => {
                Box::new(RnnTrace::new(*cfg, *cell, *lanes).take(len as usize))
            }
            Workload::Sequence(phases) => {
                assert!(!phases.is_empty(), "sequence needs at least one phase");
                let per_round: u64 = phases.iter().map(|(_, n)| n).sum();
                assert!(per_round > 0, "sequence phases need non-zero budgets");
                Box::new(SeqTrace::new(phases.clone(), len))
            }
        }
    }
}

/// Lazy segmented generator behind [`Workload::trace`] for
/// [`Workload::Sequence`]: one phase segment is live at a time and the
/// next one is opened only when the current drains.
///
/// The previous implementation eagerly built a left-nested
/// `Box<dyn Iterator>` chain with one level per phase segment, so
/// construction was O(len / round) allocations and each `next()` walked
/// the remaining chain depth — O(segments²) total for long repeating
/// sequences. This generator is O(1) construction and O(1) amortized per
/// micro-op, and emits the byte-identical stream (each segment is still
/// exactly `w.trace(min(budget, remaining))`).
struct SeqTrace {
    phases: Vec<(Workload, u64)>,
    /// Index of the phase the *next* segment will come from.
    next_phase: usize,
    /// Micro-ops still owed after the current segment.
    remaining: u64,
    /// Micro-ops left in the live segment.
    left_in_segment: u64,
    cur: Box<dyn Iterator<Item = MicroOp>>,
}

impl SeqTrace {
    fn new(phases: Vec<(Workload, u64)>, len: u64) -> Self {
        SeqTrace {
            phases,
            next_phase: 0,
            remaining: len,
            left_in_segment: 0,
            cur: Box::new(std::iter::empty()),
        }
    }

    /// Opens the next non-empty phase segment. The caller guarantees
    /// `remaining > 0`; the constructor asserted a non-zero round budget,
    /// so this terminates.
    fn open_next_segment(&mut self) {
        loop {
            let (w, budget) = &self.phases[self.next_phase];
            self.next_phase = (self.next_phase + 1) % self.phases.len();
            let seg = (*budget).min(self.remaining);
            if seg > 0 {
                self.cur = w.trace(seg);
                self.left_in_segment = seg;
                self.remaining -= seg;
                return;
            }
        }
    }
}

impl Iterator for SeqTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.left_in_segment == 0 {
            if self.remaining == 0 {
                return None;
            }
            self.open_next_segment();
        }
        self.left_in_segment -= 1;
        self.cur.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_informative() {
        let w = Workload::Gemm {
            cfg: GemmConfig {
                m: 64,
                n: 64,
                k: 64,
                train: true,
            },
            style: GemmStyle::KnlJit,
            lanes: 16,
        };
        assert!(w.name().contains("sgemm"));
        assert!(w.name().contains("knl-jit"));
    }

    #[test]
    fn sequence_concatenates_and_repeats() {
        let seq = Workload::Sequence(vec![(spec::exchange2(), 2_000), (spec::mcf(), 2_000)]);
        assert_eq!(seq.trace(9_000).count(), 9_000); // 2¼ rounds
        assert!(seq.name().contains("exchange2"));
        assert!(seq.name().contains("mcf"));
        // Phase boundary: the branch mix changes at uop 2000 — mcf is
        // dominated by hard random branches, exchange2 by loops.
        let us: Vec<_> = seq.trace(4_000).collect();
        let mcf_alone: Vec<_> = spec::mcf().trace(2_000).collect();
        assert_eq!(
            &us[2_000..],
            &mcf_alone[..],
            "the second phase must be exactly the mcf stream"
        );
    }

    #[test]
    fn sequence_trace_is_lazy() {
        // The old box-chain built one allocation per phase segment *at
        // construction time*: a huge request with tiny budgets would
        // allocate ~10⁹ boxes before yielding a single µop. The segmented
        // generator must open segments on demand.
        let seq = Workload::Sequence(vec![(spec::exchange2(), 1), (spec::mcf(), 1)]);
        let head: Vec<_> = seq.trace(1_000_000_000_000).take(8).collect();
        assert_eq!(head.len(), 8);
    }

    #[test]
    fn sequence_per_uop_cost_is_constant() {
        // Regression microbench for the O(segments²) box chain: with fixed
        // phase budgets, the per-µop cost must not grow with the number of
        // rounds. The old chain walked one level per already-opened segment
        // on every `next()`, so 10× the rounds made each µop ~10× slower;
        // the segmented generator keeps it flat (generous 5× tolerance for
        // timer noise).
        let seq = Workload::Sequence(vec![(spec::exchange2(), 200), (spec::mcf(), 200)]);
        let per_uop = |len: u64| {
            let t = std::time::Instant::now();
            assert_eq!(seq.trace(len).count() as u64, len);
            t.elapsed().as_secs_f64() / len as f64
        };
        let _ = (per_uop(20_000), per_uop(200_000)); // warmup
        let short = per_uop(20_000);
        let long = per_uop(200_000);
        assert!(
            long < 5.0 * short.max(1e-9),
            "per-µop cost grows with round count: {long}s/µop at 200k vs {short}s/µop at 20k"
        );
    }

    #[test]
    fn all_variants_produce_requested_length() {
        let ws = [
            spec::mcf(),
            Workload::Gemm {
                cfg: GemmConfig {
                    m: 32,
                    n: 32,
                    k: 32,
                    train: false,
                },
                style: GemmStyle::SkxBroadcast,
                lanes: 16,
            },
            Workload::Conv {
                cfg: ConvConfig {
                    w: 16,
                    h: 16,
                    c: 8,
                    n: 1,
                    k: 8,
                    fw: 3,
                    fh: 3,
                    stride: 1,
                },
                phase: ConvPhase::Forward,
                lanes: 16,
            },
        ];
        for w in ws {
            assert_eq!(w.trace(5_000).count(), 5_000, "{}", w.name());
        }
    }
}
