//! Blocked single-precision GEMM kernel traces, in the two codegen styles
//! the paper contrasts (§V-B):
//!
//! * **KNL jit** (`GemmStyle::KnlJit`): the MKL jit engine emits FMA
//!   instructions *with a memory operand*. Each splits into a load micro-op
//!   plus an FMA micro-op that depends on it, so the FMA waits on the L1D
//!   — the FLOPS stack shows a large **memory** component even though
//!   almost nothing misses the cache.
//! * **SKX broadcast** (`GemmStyle::SkxBroadcast`): load B once, broadcast
//!   it across an AVX-512 register (a vector-integer micro-op), then run
//!   several register-only FMAs that depend on the broadcast — the FLOPS
//!   stack shows a larger **dependence** component instead.

use crate::deepbench::GemmConfig;
use mstacks_model::{
    AluClass, ArchReg, BranchInfo, BranchKind, ElemType, FpOpKind, MicroOp, UopKind, VecFpOp,
};
use std::collections::VecDeque;

/// Code-generation style of the GEMM inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmStyle {
    /// FMA-with-memory-operand (load + dependent FMA pairs), as MKL's jit
    /// engine produces on KNL.
    KnlJit,
    /// Load + broadcast + register FMAs, as MKL produces on SKX.
    SkxBroadcast,
}

impl std::fmt::Display for GemmStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GemmStyle::KnlJit => write!(f, "knl-jit"),
            GemmStyle::SkxBroadcast => write!(f, "skx-broadcast"),
        }
    }
}

// Register map.
const ACC_BASE: u16 = 64; // accumulators
const A_REG_BASE: u16 = 80; // A-tile vector registers (SKX style)
const B_REG: u16 = 96; // broadcast / B register
const LOAD_RING: u16 = 8;
const PTR_A: u16 = 1;
const PTR_B: u16 = 2;

// Code layout (small loop, resident in the L1I).
const LOOP_PC: u64 = 0x40_1000;
const WRITEBACK_PC: u64 = 0x40_2000;

/// Number of accumulator registers (rows unrolled in the inner loop).
const R: usize = 8;

/// A deterministic trace of a blocked sgemm kernel.
#[derive(Debug, Clone)]
pub struct GemmTrace {
    cfg: GemmConfig,
    style: GemmStyle,
    lanes: u8,
    queue: VecDeque<MicroOp>,
    /// Inner-loop iteration within the current k-loop.
    k_iter: usize,
    /// Which (m, n) tile we are on.
    tile: usize,
    /// A-matrix byte cursor.
    a_pos: u64,
    /// B-matrix byte cursor.
    b_pos: u64,
    a_bytes: u64,
    b_bytes: u64,
    c_bytes: u64,
}

const A_BASE: u64 = 0x1000_0000;

impl GemmTrace {
    /// Starts the kernel for `cfg` in `style` with `lanes` vector lanes.
    pub fn new(cfg: GemmConfig, style: GemmStyle, lanes: u8) -> Self {
        GemmTrace {
            cfg,
            style,
            lanes,
            queue: VecDeque::with_capacity(64),
            k_iter: 0,
            tile: 0,
            a_pos: 0,
            b_pos: 0,
            a_bytes: (cfg.m * cfg.k * 4) as u64,
            b_bytes: (cfg.k * cfg.n * 4) as u64,
            c_bytes: (cfg.m * cfg.n * 4) as u64,
        }
    }

    fn b_base(&self) -> u64 {
        A_BASE + ((self.a_bytes + 4095) & !4095)
    }

    fn c_base(&self) -> u64 {
        self.b_base() + ((self.b_bytes + 4095) & !4095)
    }

    fn fma(&self, pc: u64, acc: u16, extra_src: u16) -> MicroOp {
        MicroOp::new(
            pc,
            UopKind::VecFp(VecFpOp {
                op: FpOpKind::Fma,
                active_lanes: self.lanes,
                elem: ElemType::F32,
            }),
        )
        .with_src(ArchReg::new(acc))
        .with_src(ArchReg::new(extra_src))
        .with_dst(ArchReg::new(acc))
    }

    /// A-tile accesses: real kernels are cache-blocked, so the inner loop
    /// cycles inside a small resident window that slides across the matrix
    /// between tiles. This keeps loads L1-resident — the paper's point is
    /// that the FLOPS `memory` component comes from FMAs waiting on L1
    /// *hits*, not on cache misses (§V-B).
    fn next_a(&mut self, bytes: u64) -> u64 {
        const TILE: u64 = 8 * 1024;
        // The A tile is reused across the whole n-sweep: its window moves
        // only every 16 (m,n) tiles.
        let window = ((self.tile / 16) as u64 * TILE) % self.a_bytes.max(TILE);
        let a = A_BASE + window + (self.a_pos % TILE.min(self.a_bytes));
        self.a_pos = self.a_pos.wrapping_add(bytes);
        a
    }

    /// B accesses slide through a small window as well (B is reused across
    /// the m-tile).
    fn next_b(&mut self, bytes: u64) -> u64 {
        const TILE: u64 = 4 * 1024;
        let window = (self.tile as u64 * TILE) % self.b_bytes.max(TILE);
        let a = self.b_base() + window + (self.b_pos % TILE.min(self.b_bytes));
        self.b_pos = self.b_pos.wrapping_add(bytes);
        a
    }

    /// Emits one k-iteration of the inner loop into the queue.
    fn emit_iteration(&mut self) {
        let mut pc = LOOP_PC;
        match self.style {
            GemmStyle::KnlJit => {
                // B vector load (reused by all rows this iteration; the
                // cursor advances sub-line — consecutive iterations re-touch
                // the same cache line, as a packed B panel does).
                let b_addr = self.next_b(8);
                self.queue.push_back(
                    MicroOp::new(pc, UopKind::Load { addr: b_addr })
                        .with_src(ArchReg::new(PTR_B))
                        .with_dst(ArchReg::new(B_REG)),
                );
                pc += 4;
                // R × (load A element + FMA with that memory operand).
                for r in 0..R {
                    let a_addr = self.next_a(8);
                    let ld = LOAD_RING + (r as u16 % 8);
                    self.queue.push_back(
                        MicroOp::new(pc, UopKind::Load { addr: a_addr })
                            .with_src(ArchReg::new(PTR_A))
                            .with_dst(ArchReg::new(ld)),
                    );
                    pc += 4;
                    // The FMA consumes the load it was fused with.
                    let f = self.fma(pc, ACC_BASE + r as u16, ld);
                    self.queue.push_back(f.with_src(ArchReg::new(B_REG)));
                    pc += 4;
                }
            }
            GemmStyle::SkxBroadcast => {
                // Scalar B load + broadcast into a full register.
                let b_addr = self.next_b(4);
                self.queue.push_back(
                    MicroOp::new(pc, UopKind::Load { addr: b_addr })
                        .with_src(ArchReg::new(PTR_B))
                        .with_dst(ArchReg::new(LOAD_RING)),
                );
                pc += 4;
                self.queue.push_back(
                    MicroOp::new(pc, UopKind::VecInt)
                        .with_src(ArchReg::new(LOAD_RING))
                        .with_dst(ArchReg::new(B_REG)),
                );
                pc += 4;
                // Two A-tile vector loads per iteration keep A streaming.
                for i in 0..2u16 {
                    let a_addr = self.next_a(16);
                    self.queue.push_back(
                        MicroOp::new(pc, UopKind::Load { addr: a_addr })
                            .with_src(ArchReg::new(PTR_A))
                            .with_dst(ArchReg::new(A_REG_BASE + (i % 8))),
                    );
                    pc += 4;
                }
                // R register FMAs, all dependent on the broadcast.
                for r in 0..R {
                    let f = self.fma(pc, ACC_BASE + r as u16, B_REG);
                    self.queue
                        .push_back(f.with_src(ArchReg::new(A_REG_BASE + (r as u16 % 8))));
                    pc += 4;
                }
            }
        }
        // Pointer bumps + loop branch.
        self.queue.push_back(
            MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(PTR_A))
                .with_dst(ArchReg::new(PTR_A)),
        );
        pc += 4;
        self.queue.push_back(
            MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(PTR_B))
                .with_dst(ArchReg::new(PTR_B)),
        );
        pc += 4;

        let k_steps = self.cfg.k.max(16);
        self.k_iter += 1;
        let stay = !self.k_iter.is_multiple_of(k_steps);
        self.queue.push_back(MicroOp::new(
            pc,
            UopKind::Branch(BranchInfo {
                taken: stay,
                target: LOOP_PC,
                fallthrough: WRITEBACK_PC,
                kind: BranchKind::Cond,
            }),
        ));
        if !stay {
            self.emit_writeback();
        }
    }

    /// C-tile load/accumulate/store after a k-loop completes.
    fn emit_writeback(&mut self) {
        let mut pc = WRITEBACK_PC;
        let vec_bytes = u64::from(self.lanes) * 4;
        let c_base = self.c_base();
        let tile_off = (self.tile as u64 * R as u64 * vec_bytes) % self.c_bytes.max(vec_bytes);
        self.tile += 1;
        for r in 0..R {
            let addr = c_base + (tile_off + r as u64 * vec_bytes) % self.c_bytes.max(vec_bytes);
            self.queue.push_back(
                MicroOp::new(pc, UopKind::Load { addr })
                    .with_dst(ArchReg::new(LOAD_RING + (r as u16 % 8))),
            );
            pc += 4;
            self.queue.push_back(
                MicroOp::new(
                    pc,
                    UopKind::VecFp(VecFpOp {
                        op: FpOpKind::Add,
                        active_lanes: self.lanes,
                        elem: ElemType::F32,
                    }),
                )
                .with_src(ArchReg::new(ACC_BASE + r as u16))
                .with_src(ArchReg::new(LOAD_RING + (r as u16 % 8)))
                .with_dst(ArchReg::new(ACC_BASE + r as u16)),
            );
            pc += 4;
            self.queue.push_back(
                MicroOp::new(pc, UopKind::Store { addr })
                    .with_src(ArchReg::new(ACC_BASE + r as u16)),
            );
            pc += 4;
        }
        // Back to the top of the k-loop (next tile).
        self.queue.push_back(MicroOp::new(
            pc,
            UopKind::Branch(BranchInfo {
                taken: true,
                target: LOOP_PC,
                fallthrough: pc + 4,
                kind: BranchKind::Uncond,
            }),
        ));
    }
}

impl Iterator for GemmTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.queue.is_empty() {
            self.emit_iteration();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GemmConfig {
        GemmConfig {
            m: 64,
            n: 64,
            k: 64,
            train: true,
        }
    }

    fn kinds(style: GemmStyle, n: usize) -> Vec<MicroOp> {
        GemmTrace::new(cfg(), style, 16).take(n).collect()
    }

    #[test]
    fn knl_style_pairs_loads_with_fmas() {
        let uops = kinds(GemmStyle::KnlJit, 19);
        // Pattern: B load, then (A load, FMA) pairs.
        assert!(uops[0].kind.is_load());
        assert!(uops[1].kind.is_load());
        assert!(uops[2].kind.is_vfp());
        // The FMA reads the load's destination register.
        let ld_dst = uops[1].dst.unwrap();
        assert!(uops[2].srcs().any(|r| r == ld_dst));
    }

    #[test]
    fn skx_style_broadcast_feeds_fmas() {
        let uops = kinds(GemmStyle::SkxBroadcast, 13);
        assert!(uops[0].kind.is_load());
        assert_eq!(uops[1].kind, UopKind::VecInt); // broadcast
        let bcast_dst = uops[1].dst.unwrap();
        let fmas: Vec<_> = uops.iter().filter(|u| u.kind.is_vfp()).collect();
        assert_eq!(fmas.len(), R);
        assert!(fmas.iter().all(|f| f.srcs().any(|r| r == bcast_dst)));
    }

    #[test]
    fn vfp_fraction_higher_in_skx_style() {
        let count_vfp = |style| {
            kinds(style, 10_000)
                .iter()
                .filter(|u| u.kind.is_vfp())
                .count()
        };
        let knl = count_vfp(GemmStyle::KnlJit);
        let skx = count_vfp(GemmStyle::SkxBroadcast);
        assert!(
            skx > knl,
            "broadcast style has denser VFP: skx {skx} vs knl {knl}"
        );
    }

    #[test]
    fn loop_branch_is_predictable() {
        let uops = kinds(GemmStyle::KnlJit, 5_000);
        let branches: Vec<_> = uops
            .iter()
            .filter_map(|u| match u.kind {
                UopKind::Branch(b) => Some(b),
                _ => None,
            })
            .collect();
        assert!(branches.len() > 100);
        // Mostly taken (loop), falls through once per k-loop.
        let taken = branches.iter().filter(|b| b.taken).count();
        assert!(taken * 10 > branches.len() * 6);
    }

    #[test]
    fn writeback_stores_c() {
        let uops = kinds(GemmStyle::KnlJit, 20_000);
        let stores = uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Store { .. }))
            .count();
        assert!(stores > 0, "C tiles must be written back");
    }

    #[test]
    fn deterministic() {
        let a = kinds(GemmStyle::SkxBroadcast, 3_000);
        let b = kinds(GemmStyle::SkxBroadcast, 3_000);
        assert_eq!(a, b);
    }

    #[test]
    fn addresses_stay_in_matrices() {
        let t = GemmTrace::new(cfg(), GemmStyle::KnlJit, 16);
        let total = (64 * 64 * 4 + 4096) * 3 + A_BASE;
        for u in t.take(5_000) {
            if let Some(a) = u.mem_addr() {
                assert!(a >= A_BASE && a < total, "addr {a:#x} out of range");
            }
        }
    }
}
