//! Recurrent-cell kernel traces (vanilla RNN / LSTM / GRU time steps).
//!
//! DeepBench's third kernel family (beyond GEMM and convolution). A
//! recurrent time step is two GEMV/GEMM-like passes (input and recurrent
//! weights) followed by an *elementwise tail*: gate activations
//! (sigmoid/tanh — non-FMA vector FP) and elementwise multiplies/adds.
//! The tail is what distinguishes RNN FLOPS stacks from GEMM's: a sizable
//! **non-FMA** component and extra **dependences** (the gates chain into
//! the cell state), on top of the usual memory behaviour.

use crate::deepbench::RnnConfig;
use mstacks_model::{
    AluClass, ArchReg, BranchInfo, BranchKind, ElemType, FpOpKind, MicroOp, UopKind, VecFpOp,
};
use std::collections::VecDeque;

/// Which recurrent cell the kernel computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RnnCell {
    /// Vanilla RNN: one gate.
    Vanilla,
    /// LSTM: four gates + cell state.
    Lstm,
    /// GRU: three gates.
    Gru,
}

impl RnnCell {
    /// Gate count of the cell.
    pub fn gates(self) -> usize {
        match self {
            RnnCell::Vanilla => 1,
            RnnCell::Lstm => 4,
            RnnCell::Gru => 3,
        }
    }
}

impl std::fmt::Display for RnnCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RnnCell::Vanilla => write!(f, "rnn"),
            RnnCell::Lstm => write!(f, "lstm"),
            RnnCell::Gru => write!(f, "gru"),
        }
    }
}

const W_BASE: u64 = 0x3000_0000;
const LOOP_PC: u64 = 0x40_5000;
const TAIL_PC: u64 = 0x40_6000;

const ACC_BASE: u16 = 64;
const GATE_BASE: u16 = 72; // gate registers for the elementwise tail
const LOAD_RING: u16 = 8;
const PTR: u16 = 1;
const STATE: u16 = 80; // recurrent cell state register

/// A deterministic trace of a recurrent-cell kernel.
#[derive(Debug, Clone)]
pub struct RnnTrace {
    cfg: RnnConfig,
    cell: RnnCell,
    lanes: u8,
    queue: VecDeque<MicroOp>,
    iter: u64,
    w_pos: u64,
    w_bytes: u64,
}

impl RnnTrace {
    /// Starts the kernel for `cfg` with `lanes` vector lanes.
    pub fn new(cfg: RnnConfig, cell: RnnCell, lanes: u8) -> Self {
        let w_bytes = (cfg.hidden * cfg.hidden * cell.gates() * 4) as u64;
        RnnTrace {
            cfg,
            cell,
            lanes,
            queue: VecDeque::with_capacity(64),
            iter: 0,
            w_pos: 0,
            w_bytes: w_bytes.max(4096),
        }
    }

    fn vfp(&self, pc: u64, op: FpOpKind, dst: u16, src: u16) -> MicroOp {
        MicroOp::new(
            pc,
            UopKind::VecFp(VecFpOp {
                op,
                active_lanes: self.lanes,
                elem: ElemType::F32,
            }),
        )
        .with_src(ArchReg::new(src))
        .with_src(ArchReg::new(dst))
        .with_dst(ArchReg::new(dst))
    }

    /// One k-step of the gate GEMMs: weight load + broadcast-free FMA per
    /// gate accumulator (SKX-style register blocking).
    fn emit_gemm_step(&mut self) {
        let mut pc = LOOP_PC;
        const TILE: u64 = 8 * 1024;
        let window = ((self.iter / 2048) * TILE) % self.w_bytes.max(TILE);
        let addr = W_BASE + window + (self.w_pos % TILE.min(self.w_bytes));
        self.w_pos = self.w_pos.wrapping_add(16);
        self.queue.push_back(
            MicroOp::new(pc, UopKind::Load { addr })
                .with_src(ArchReg::new(PTR))
                .with_dst(ArchReg::new(LOAD_RING)),
        );
        pc += 4;
        self.queue.push_back(
            MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(PTR))
                .with_dst(ArchReg::new(PTR)),
        );
        pc += 4;
        for g in 0..self.cell.gates() {
            let acc = ACC_BASE + ((self.iter as u16).wrapping_add(g as u16)) % 8;
            let f = self.vfp(pc, FpOpKind::Fma, acc, LOAD_RING);
            self.queue.push_back(f);
            pc += 4;
        }
        // Loop branch over the hidden dimension.
        let trips = (self.cfg.hidden / usize::from(self.lanes)).max(8) as u64;
        self.iter += 1;
        let stay = !self.iter.is_multiple_of(trips);
        self.queue.push_back(MicroOp::new(
            pc,
            UopKind::Branch(BranchInfo {
                taken: stay,
                target: LOOP_PC,
                fallthrough: TAIL_PC,
                kind: BranchKind::Cond,
            }),
        ));
        if !stay {
            self.emit_elementwise_tail();
        }
    }

    /// The gate tail: activations (non-FMA VFP) and the state update
    /// chain — `c = f⊙c + i⊙g`, `h = o⊙tanh(c)` for LSTM and the
    /// analogous shorter chains for GRU / vanilla.
    fn emit_elementwise_tail(&mut self) {
        let mut pc = TAIL_PC;
        for g in 0..self.cell.gates() as u16 {
            // Activation: sigmoid/tanh ≈ a few non-FMA vector ops.
            let u = self.vfp(pc, FpOpKind::Other, GATE_BASE + g, ACC_BASE + g % 8);
            self.queue.push_back(u);
            pc += 4;
            let u = self.vfp(pc, FpOpKind::Mul, GATE_BASE + g, GATE_BASE + g);
            self.queue.push_back(u);
            pc += 4;
        }
        // State-update chain: serial dependences through STATE.
        let chain = match self.cell {
            RnnCell::Vanilla => 1,
            RnnCell::Lstm => 4,
            RnnCell::Gru => 3,
        };
        for step in 0..chain as u16 {
            let u = self
                .vfp(
                    pc,
                    FpOpKind::Mul,
                    STATE,
                    GATE_BASE + step % self.cell.gates() as u16,
                )
                .with_src(ArchReg::new(STATE));
            self.queue.push_back(u);
            pc += 4;
            let u = self.vfp(pc, FpOpKind::Add, STATE, STATE);
            self.queue.push_back(u);
            pc += 4;
        }
        // Back to the next time step.
        self.queue.push_back(MicroOp::new(
            pc,
            UopKind::Branch(BranchInfo {
                taken: true,
                target: LOOP_PC,
                fallthrough: pc + 4,
                kind: BranchKind::Uncond,
            }),
        ));
    }
}

impl Iterator for RnnTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.queue.is_empty() {
            self.emit_gemm_step();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deepbench::rnn_configs;

    fn trace(cell: RnnCell, n: usize) -> Vec<MicroOp> {
        RnnTrace::new(rnn_configs()[0], cell, 16).take(n).collect()
    }

    #[test]
    fn all_cells_generate() {
        for cell in [RnnCell::Vanilla, RnnCell::Lstm, RnnCell::Gru] {
            let us = trace(cell, 5_000);
            assert_eq!(us.len(), 5_000);
            assert!(us.iter().any(|u| u.kind.is_vfp()));
            assert!(us.iter().any(|u| u.kind.is_branch()));
        }
    }

    #[test]
    fn lstm_has_more_non_fma_than_vanilla() {
        let non_fma = |cell| {
            trace(cell, 20_000)
                .iter()
                .filter(|u| {
                    matches!(
                        u.kind,
                        UopKind::VecFp(VecFpOp {
                            op: FpOpKind::Mul | FpOpKind::Add | FpOpKind::Other,
                            ..
                        })
                    )
                })
                .count()
        };
        assert!(
            non_fma(RnnCell::Lstm) > non_fma(RnnCell::Vanilla),
            "LSTM's gate tail must add non-FMA work"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(trace(RnnCell::Gru, 3_000), trace(RnnCell::Gru, 3_000));
    }

    #[test]
    fn gate_counts() {
        assert_eq!(RnnCell::Vanilla.gates(), 1);
        assert_eq!(RnnCell::Lstm.gates(), 4);
        assert_eq!(RnnCell::Gru.gates(), 3);
        assert_eq!(RnnCell::Lstm.to_string(), "lstm");
    }
}
