//! Hardware prefetchers.
//!
//! Two engines mirror the common Intel configuration the paper's platforms
//! use:
//!
//! * a **per-PC stride prefetcher** watching L1D accesses: once a load PC
//!   shows a stable stride, it requests `degree` lines ahead;
//! * a **next-line prefetcher** at the L2.
//!
//! Prefetch requests go through the *regular* L2 MSHR allocation path in
//! [`crate::hierarchy`], so an aggressive stream of prefetches keeps the L2
//! MSHRs contended — the mechanism behind paper Fig. 3(c), where `bwaves`'
//! I-cache misses queue behind prefetch traffic and making the L1I perfect
//! buys almost nothing.

/// One tracked load PC.
#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u32,
}

/// Per-PC stride detector.
///
/// # Example
///
/// ```
/// use mstacks_mem::StridePrefetcher;
///
/// let mut p = StridePrefetcher::new(16, 2, 2);
/// assert!(p.observe(0x100, 0x8000).is_empty());
/// assert!(p.observe(0x100, 0x8040).is_empty()); // stride learned
/// let lines = p.observe(0x100, 0x8080);         // confident → prefetch
/// assert_eq!(lines, vec![(0x80c0 >> 6), (0x8100 >> 6)]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    capacity: usize,
    degree: u32,
    threshold: u32,
    issued: u64,
}

impl StridePrefetcher {
    const LINE_SHIFT: u32 = 6;

    /// Creates a stride prefetcher with a `capacity`-entry PC table,
    /// prefetching `degree` lines ahead once `threshold` consecutive
    /// same-stride accesses have been seen.
    pub fn new(capacity: usize, degree: u32, threshold: u32) -> Self {
        StridePrefetcher {
            table: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            degree,
            threshold,
            issued: 0,
        }
    }

    /// Observes a demand access by `pc` to byte address `addr`; returns the
    /// *line* addresses that should be prefetched (possibly empty).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        if self.degree == 0 {
            return Vec::new();
        }
        let pos = self.table.iter().position(|e| e.pc == pc);
        match pos {
            None => {
                if self.table.len() == self.capacity {
                    // FIFO eviction keeps the model deterministic and cheap.
                    self.table.remove(0);
                }
                self.table.push(StrideEntry {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                });
                Vec::new()
            }
            Some(i) => {
                let e = &mut self.table[i];
                let stride = addr as i64 - e.last_addr as i64;
                if stride == e.stride && stride != 0 {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = stride;
                    e.confidence = 1;
                }
                e.last_addr = addr;
                if e.confidence < self.threshold || e.stride == 0 {
                    return Vec::new();
                }
                let stride = e.stride;
                let mut lines = Vec::with_capacity(self.degree as usize);
                let mut last_line = u64::MAX;
                for k in 1..=i64::from(self.degree) {
                    let target = addr as i64 + stride * k;
                    if target < 0 {
                        break;
                    }
                    let line = (target as u64) >> Self::LINE_SHIFT;
                    if line != last_line && line != addr >> Self::LINE_SHIFT {
                        lines.push(line);
                        last_line = line;
                    }
                }
                self.issued += lines.len() as u64;
                lines
            }
        }
    }

    /// Total prefetch lines requested.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// Simple next-line prefetcher (used at the L2).
///
/// # Example
///
/// ```
/// use mstacks_mem::NextLinePrefetcher;
/// let mut p = NextLinePrefetcher::new(true);
/// assert_eq!(p.observe(100), Some(101));
/// assert_eq!(p.observe(100), None); // deduplicated
/// ```
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    enabled: bool,
    last_line: u64,
    issued: u64,
}

impl NextLinePrefetcher {
    /// Creates the prefetcher; `enabled = false` makes it inert.
    pub fn new(enabled: bool) -> Self {
        NextLinePrefetcher {
            enabled,
            last_line: u64::MAX,
            issued: 0,
        }
    }

    /// Observes a demand access to `line`; returns the line to prefetch.
    pub fn observe(&mut self, line: u64) -> Option<u64> {
        if !self.enabled || line == self.last_line {
            return None;
        }
        self.last_line = line;
        self.issued += 1;
        Some(line + 1)
    }

    /// Total prefetch lines requested.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_needs_confidence() {
        let mut p = StridePrefetcher::new(8, 2, 3);
        assert!(p.observe(1, 0).is_empty());
        assert!(p.observe(1, 64).is_empty()); // confidence 1
        assert!(p.observe(1, 128).is_empty()); // confidence 2
        assert!(!p.observe(1, 192).is_empty()); // confidence 3 = threshold
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(8, 2, 2);
        p.observe(1, 0);
        p.observe(1, 64);
        p.observe(1, 128);
        assert!(!p.observe(1, 192).is_empty());
        // Break the stride: 192 → 1000 (stride 808, confidence 1 < threshold 2).
        assert!(p.observe(1, 1000).is_empty());
        // Same stride again → confidence 2 → prefetches resume.
        assert!(!p.observe(1, 1808).is_empty());
    }

    #[test]
    fn sub_line_strides_deduplicate_lines() {
        let mut p = StridePrefetcher::new(8, 4, 1);
        p.observe(1, 0);
        p.observe(1, 8);
        let lines = p.observe(1, 16);
        // stride 8, degree 4 → next addresses 24,32,40,48 are all line 0 → suppressed.
        assert!(lines.is_empty());
    }

    #[test]
    fn distinct_pcs_tracked_separately() {
        let mut p = StridePrefetcher::new(8, 1, 1);
        p.observe(1, 0);
        p.observe(2, 1_000_000);
        p.observe(1, 4096);
        let l1 = p.observe(1, 8192);
        assert_eq!(l1, vec![(8192 + 4096) >> 6]);
        p.observe(2, 1_000_000 + 128);
        let l2 = p.observe(2, 1_000_000 + 256);
        assert_eq!(l2, vec![(1_000_000 + 384) >> 6]);
    }

    #[test]
    fn table_eviction_is_fifo() {
        let mut p = StridePrefetcher::new(2, 1, 1);
        p.observe(1, 0);
        p.observe(2, 0);
        p.observe(3, 0); // evicts PC 1
        p.observe(1, 64); // PC 1 re-enters from scratch: stride unknown
                          // First repeat establishes the stride; threshold 1 → prefetch resumes.
        assert_eq!(p.observe(1, 128), vec![192 >> 6]);
    }

    #[test]
    fn disabled_stride_is_inert() {
        let mut p = StridePrefetcher::new(8, 0, 1);
        p.observe(1, 0);
        p.observe(1, 64);
        assert!(p.observe(1, 128).is_empty());
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn next_line_dedups_consecutive() {
        let mut p = NextLinePrefetcher::new(true);
        assert_eq!(p.observe(5), Some(6));
        assert_eq!(p.observe(5), None);
        assert_eq!(p.observe(6), Some(7));
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn next_line_disabled() {
        let mut p = NextLinePrefetcher::new(false);
        assert_eq!(p.observe(5), None);
    }
}
