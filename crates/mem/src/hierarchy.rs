//! The full memory hierarchy: L1I + L1D → unified L2 → optional L3 → DRAM.
//!
//! ## Timing model
//!
//! The hierarchy is a latency oracle with contention. An access at cycle
//! `now` walks the levels once and returns an [`AccessResult`] carrying the
//! cycle the data is available and the deepest level touched. Contention
//! enters through three mechanisms:
//!
//! 1. **MSHR coalescing** — a second access to an in-flight line completes
//!    with the first.
//! 2. **MSHR back-pressure** — when a level's MSHR file is full, a new miss
//!    waits for a free entry before it can even start. Hardware prefetches
//!    allocate L2 MSHRs through the same path, so streaming workloads make
//!    I-cache misses queue (paper Fig. 3(c)).
//! 3. **DRAM bandwidth** — each line occupies the (per-core share of the)
//!    memory channel; concurrent misses serialize.
//!
//! ## Idealization
//!
//! [`Hierarchy::set_perfect_icache`] / [`Hierarchy::set_perfect_dcache`]
//! implement the paper's perfect-L1 experiments: the respective access type
//! always completes with the L1 latency *and produces no traffic to the
//! shared levels*, which is what creates the second-order coupling effects
//! of paper Fig. 3(b) — making the L1I perfect also lowers the data miss
//! rate, because instructions stop evicting data from the unified L2/L3.

use crate::cache::SetAssocCache;
use crate::dram::Dram;
use crate::mshr::{MshrFile, MshrOccupancy};
use crate::prefetch::{NextLinePrefetcher, StridePrefetcher};
use crate::shared::SharedUncore;
use crate::stats::MemStats;
use crate::tlb::Tlb;
use crate::HitLevel;
use mstacks_model::MemConfig;
use std::cell::RefCell;
use std::rc::Rc;

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available to the requester.
    pub ready: u64,
    /// Deepest level the access had to touch.
    pub level: HitLevel,
    /// Cycles of the access latency attributable to *other* cores'
    /// occupancy of the shared uncore (see [`crate::SharedUncore`]).
    /// Always zero for a private (non-co-run) hierarchy.
    pub interference: u64,
}

impl AccessResult {
    /// Whether the access missed the first-level cache (the Table II
    /// predicate "has Icache/Dcache miss").
    #[inline]
    pub fn missed_l1(&self) -> bool {
        self.level.beyond_l1()
    }
}

pub(crate) fn level_to_tag(level: HitLevel) -> u8 {
    match level {
        HitLevel::L1 => 0,
        HitLevel::L2 => 1,
        HitLevel::L3 => 2,
        HitLevel::Mem => 3,
    }
}

pub(crate) fn tag_to_level(tag: u8) -> HitLevel {
    match tag {
        0 => HitLevel::L1,
        1 => HitLevel::L2,
        2 => HitLevel::L3,
        _ => HitLevel::Mem,
    }
}

/// Link from one core's hierarchy to the co-run [`SharedUncore`]. The
/// `Rc` is shared between all participating hierarchies; cloning a
/// hierarchy in shared mode keeps pointing at the same uncore.
#[derive(Debug, Clone)]
struct SharedLink {
    uncore: Rc<RefCell<SharedUncore>>,
    core: u8,
}

/// The simulated memory hierarchy of one core (plus its slice of shared
/// resources).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    line_shift: u32,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    l3: Option<SetAssocCache>,
    l1i_mshr: MshrFile,
    l1d_mshr: MshrFile,
    l2_mshr: MshrFile,
    l3_mshr: MshrFile,
    dram: Dram,
    lat_l1i: u64,
    lat_l1d: u64,
    lat_l2: u64,
    lat_l3: u64,
    stride: StridePrefetcher,
    next_line: NextLinePrefetcher,
    itlb: Tlb,
    dtlb: Tlb,
    perfect_icache: bool,
    perfect_dcache: bool,
    stats: MemStats,
    /// Co-run mode: L2 misses go to the shared uncore instead of the
    /// private L3/DRAM (`None` for a classic single-core hierarchy).
    shared: Option<SharedLink>,
}

impl Hierarchy {
    /// Builds the hierarchy described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on invalid cache geometry; run
    /// [`mstacks_model::CoreConfig::validate`] first to get a proper error.
    pub fn new(cfg: &MemConfig) -> Self {
        let line_shift = cfg.l1d.line_bytes.trailing_zeros();
        Hierarchy {
            line_shift,
            l1i: SetAssocCache::new(&cfg.l1i),
            l1d: SetAssocCache::new(&cfg.l1d),
            l2: SetAssocCache::new(&cfg.l2),
            l3: cfg.l3.as_ref().map(SetAssocCache::new),
            l1i_mshr: MshrFile::new(cfg.l1i.mshrs),
            l1d_mshr: MshrFile::new(cfg.l1d.mshrs),
            l2_mshr: MshrFile::new(cfg.l2.mshrs),
            l3_mshr: MshrFile::new(cfg.l3.map(|c| c.mshrs).unwrap_or(1)),
            dram: Dram::new(
                cfg.dram_latency,
                cfg.dram_bytes_per_cycle,
                cfg.l2.line_bytes,
            ),
            lat_l1i: u64::from(cfg.l1i.latency),
            lat_l1d: u64::from(cfg.l1d.latency),
            lat_l2: u64::from(cfg.l2.latency),
            lat_l3: u64::from(cfg.l3.map(|c| c.latency).unwrap_or(0)),
            stride: StridePrefetcher::new(
                64,
                if cfg.prefetch.stride_enabled {
                    cfg.prefetch.stride_degree
                } else {
                    0
                },
                cfg.prefetch.stride_threshold,
            ),
            next_line: NextLinePrefetcher::new(cfg.prefetch.next_line_enabled),
            itlb: Tlb::new(&cfg.itlb),
            dtlb: Tlb::new(&cfg.dtlb),
            perfect_icache: false,
            perfect_dcache: false,
            stats: MemStats::default(),
            shared: None,
        }
    }

    /// Builds one core's hierarchy for a co-run: private L1/L2 from `cfg`,
    /// with L2 misses forwarded to the shared `uncore` as core `core`. The
    /// private L3 and its MSHR file stay unused (the uncore owns the
    /// shared slice), so they are dropped.
    pub fn new_shared(cfg: &MemConfig, uncore: Rc<RefCell<SharedUncore>>, core: u8) -> Self {
        let mut h = Hierarchy::new(cfg);
        h.l3 = None;
        h.shared = Some(SharedLink { uncore, core });
        h
    }

    /// Makes every instruction fetch an L1I hit (paper's "perfect Icache").
    pub fn set_perfect_icache(&mut self, on: bool) {
        self.perfect_icache = on;
    }

    /// Makes every data access an L1D hit (paper's "perfect Dcache").
    pub fn set_perfect_dcache(&mut self, on: bool) {
        self.perfect_dcache = on;
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    #[inline]
    fn line(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Instruction fetch of the line containing `pc`, at cycle `now`.
    pub fn fetch(&mut self, pc: u64, now: u64) -> AccessResult {
        self.stats.l1i.accesses += 1;
        if self.perfect_icache {
            return AccessResult {
                ready: now + self.lat_l1i,
                level: HitLevel::L1,
                interference: 0,
            };
        }
        // Instruction TLB first: a walk delays the fetch and counts as part
        // of the Icache component ("cache (and TLB)", paper §III).
        let walk = self.itlb.access(pc);
        let now = now + walk;
        let line = self.line(pc);
        if let Some((ready, tag)) = self.l1i_mshr.pending(line, now) {
            return AccessResult {
                ready,
                level: tag_to_level(tag),
                interference: 0,
            };
        }
        if self.l1i.probe_and_touch(line) {
            return AccessResult {
                ready: now + self.lat_l1i,
                // An I-TLB walk on an otherwise-hitting fetch still stalls
                // the frontend like a miss.
                level: if walk > 0 { HitLevel::L2 } else { HitLevel::L1 },
                interference: 0,
            };
        }
        self.stats.l1i.misses += 1;
        let start = self.l1i_mshr.alloc_time(now);
        let (ready, level, interference) = self.access_l2(line, start + self.lat_l1i, true);
        self.l1i.insert(line);
        self.l1i_mshr
            .insert(line, start, ready, level_to_tag(level));
        // I-side interference is reported but not blamed as a separate
        // component: frontend stalls fold into `icache` (documented lower
        // bound of the interference component).
        AccessResult {
            ready,
            level,
            interference,
        }
    }

    /// Data load of `addr` by the instruction at `pc`, at cycle `now`.
    pub fn load(&mut self, addr: u64, pc: u64, now: u64) -> AccessResult {
        self.data_access(addr, pc, now, false)
    }

    /// Data store to `addr` by the instruction at `pc`, at cycle `now`
    /// (write-allocate; the returned latency models the fill, which the
    /// pipeline's store buffer hides from commit).
    pub fn store(&mut self, addr: u64, pc: u64, now: u64) -> AccessResult {
        self.data_access(addr, pc, now, true)
    }

    fn data_access(&mut self, addr: u64, pc: u64, now: u64, _is_store: bool) -> AccessResult {
        self.stats.l1d.accesses += 1;
        if self.perfect_dcache {
            return AccessResult {
                ready: now + self.lat_l1d,
                level: HitLevel::L1,
                interference: 0,
            };
        }
        // Data TLB first ("Dcache miss component (and TLB)", paper §III).
        let walk = self.dtlb.access(addr);
        let now = now + walk;
        let line = self.line(addr);
        if let Some((ready, tag)) = self.l1d_mshr.pending(line, now) {
            return AccessResult {
                ready,
                level: tag_to_level(tag),
                interference: 0,
            };
        }
        if self.l1d.probe_and_touch(line) {
            return AccessResult {
                ready: now + self.lat_l1d,
                // A walk on an L1 hit still blames the memory system.
                level: if walk > 0 { HitLevel::L2 } else { HitLevel::L1 },
                interference: 0,
            };
        }
        self.stats.l1d.misses += 1;
        // The L2 stride streamer observes L1D demand misses.
        let pf_lines = self.stride.observe(pc, addr);
        let start = self.l1d_mshr.alloc_time(now);
        let (ready, level, interference) = self.access_l2(line, start + self.lat_l1d, false);
        self.l1d.insert(line);
        self.l1d_mshr
            .insert(line, start, ready, level_to_tag(level));
        // Prefetches launch after the demand miss and contend for the same
        // L2 MSHRs and DRAM bandwidth.
        for pf in pf_lines {
            self.prefetch_into_l2(pf, start + self.lat_l1d);
        }
        AccessResult {
            ready,
            level,
            interference,
        }
    }

    /// Looks `line` up in the unified L2 at cycle `at`; on a miss, continues
    /// to L3/DRAM. Returns (ready cycle, deepest level, interference).
    fn access_l2(&mut self, line: u64, at: u64, _is_instr: bool) -> (u64, HitLevel, u64) {
        self.stats.l2.accesses += 1;
        if let Some(pf) = self.next_line.observe(line) {
            self.stats.prefetches_issued += 1;
            self.prefetch_into_l2(pf, at);
        }
        if let Some((ready, tag)) = self.l2_mshr.pending(line, at) {
            return (ready.max(at + self.lat_l2), tag_to_level(tag), 0);
        }
        if self.l2.probe_and_touch(line) {
            return (at + self.lat_l2, HitLevel::L2, 0);
        }
        self.stats.l2.misses += 1;
        let start = self.l2_mshr.alloc_time(at);
        self.stats.l2_mshr_wait_cycles += start - at;
        let (ready, level, interference) = self.access_l3(line, start + self.lat_l2);
        self.l2.insert(line);
        self.l2_mshr.insert(line, start, ready, level_to_tag(level));
        (ready, level, interference)
    }

    /// Looks `line` up in the L3 (if present) at cycle `at`, else DRAM. In
    /// co-run mode the shared uncore serves this level instead of the
    /// private L3/DRAM, and reports the cycles lost to other cores.
    fn access_l3(&mut self, line: u64, at: u64) -> (u64, HitLevel, u64) {
        if self.shared.is_some() {
            // Clone the link out so the uncore call can borrow our stats
            // book mutably (Rc clone, not an uncore copy).
            let link = self.shared.clone().expect("checked above");
            return link
                .uncore
                .borrow_mut()
                .access(link.core, line, at, &mut self.stats);
        }
        let Some(l3) = self.l3.as_mut() else {
            self.stats.dram_accesses += 1;
            return (self.dram.access(at), HitLevel::Mem, 0);
        };
        self.stats.l3.accesses += 1;
        if let Some((ready, tag)) = self.l3_mshr.pending(line, at) {
            return (ready.max(at + self.lat_l3), tag_to_level(tag), 0);
        }
        if l3.probe_and_touch(line) {
            return (at + self.lat_l3, HitLevel::L3, 0);
        }
        self.stats.l3.misses += 1;
        let start = self.l3_mshr.alloc_time(at);
        let ready = self.dram.access(start + self.lat_l3);
        self.stats.dram_accesses += 1;
        self.l3
            .as_mut()
            .expect("L3 presence checked above")
            .insert(line);
        self.l3_mshr
            .insert(line, start, ready, level_to_tag(HitLevel::Mem));
        (ready, HitLevel::Mem, 0)
    }

    /// Brings `line` into the L2 as a prefetch: allocates an L2 MSHR (the
    /// contention mechanism of paper Fig. 3(c)) and fetches from L3/DRAM.
    fn prefetch_into_l2(&mut self, line: u64, at: u64) {
        if self.l2.contains(line) || self.l2_mshr.pending(line, at).is_some() {
            return;
        }
        self.stats.prefetches_issued += 1;
        let start = self.l2_mshr.alloc_time(at);
        // Prefetch interference is dropped on the floor (nothing stalls on
        // a prefetch), but the shared call still advances the shadow
        // channel so later demand counterfactuals stay exact.
        let (ready, level, _interference) = self.access_l3(line, start + self.lat_l2);
        self.l2.insert(line);
        self.l2_mshr.insert(line, start, ready, level_to_tag(level));
    }

    // ----- functional warming (interval sampling) -----------------------
    //
    // The warm_* methods update cache, TLB, LRU and prefetcher *contents*
    // exactly as a demand access would, but produce no statistics, no MSHR
    // traffic and no DRAM contention: they model the state left behind by
    // the instructions a sampled run fast-forwards over, so a detailed
    // window that follows starts from warm structures instead of cold ones
    // (the dominant cold-start bias in sampled simulation). Prefetchers
    // are trained and their fills land in the L2 — in steady state a large
    // part of the L2's useful footprint is prefetched-ahead lines, and
    // omitting them leaves every window head re-fetching its streams from
    // DRAM (measured as a persistent multi-percent CPI overestimate).

    /// Warms the instruction side for a fetch of `pc`: I-TLB entry plus the
    /// line in L1I (and L2/L3 on the way, as a demand fill would leave it).
    pub fn warm_fetch(&mut self, pc: u64) {
        if self.perfect_icache {
            return;
        }
        self.itlb.warm(pc);
        let line = self.line(pc);
        if !self.l1i.probe_and_touch(line) {
            self.warm_shared(line);
            self.l1i.insert(line);
        }
    }

    /// Warms the data side for a load of `addr` by the instruction at
    /// `pc` (D-TLB + L1D/L2/L3 + stride-prefetcher training and fills).
    pub fn warm_load(&mut self, addr: u64, pc: u64) {
        self.warm_data(addr, pc);
    }

    /// Warms the data side for a store to `addr` (write-allocate: same
    /// fill path as a load).
    pub fn warm_store(&mut self, addr: u64, pc: u64) {
        self.warm_data(addr, pc);
    }

    fn warm_data(&mut self, addr: u64, pc: u64) {
        if self.perfect_dcache {
            return;
        }
        self.dtlb.warm(addr);
        let line = self.line(addr);
        if self.l1d.probe_and_touch(line) {
            return;
        }
        // The L2 stride streamer observes L1D demand misses — train it and
        // land its fills, mirroring `data_access`.
        let pf_lines = self.stride.observe(pc, addr);
        self.warm_shared(line);
        self.l1d.insert(line);
        for pf in pf_lines {
            self.warm_prefetch(pf);
        }
    }

    /// Warms the shared levels for a line that missed a first-level cache,
    /// mirroring `access_l2` (including next-line prefetcher training, in
    /// the same order so LRU state evolves identically).
    fn warm_shared(&mut self, line: u64) {
        if let Some(pf) = self.next_line.observe(line) {
            self.warm_prefetch(pf);
        }
        if self.l2.probe_and_touch(line) {
            return;
        }
        if let Some(l3) = self.l3.as_mut() {
            if !l3.probe_and_touch(line) {
                l3.insert(line);
            }
        }
        self.l2.insert(line);
    }

    /// Lands a prefetch in the L2 (and L3 on the way), contents-only —
    /// the warming twin of `prefetch_into_l2`.
    fn warm_prefetch(&mut self, line: u64) {
        if self.l2.contains(line) {
            return;
        }
        if let Some(l3) = self.l3.as_mut() {
            if !l3.probe_and_touch(line) {
                l3.insert(line);
            }
        }
        self.l2.insert(line);
    }

    /// Occupancy of the four MSHR files (L1I, L1D, L2, L3) at cycle `now` —
    /// the probe the audit subsystem checks against each file's capacity.
    /// In co-run mode the L3 slot reports the shared pool, so every core's
    /// auditor checks the shared book.
    pub fn mshr_occupancy(&mut self, now: u64) -> [MshrOccupancy; 4] {
        let l3 = match &self.shared {
            Some(link) => link.uncore.borrow_mut().occupancy(now),
            None => self.l3_mshr.occupancy(now),
        };
        [
            self.l1i_mshr.occupancy(now),
            self.l1d_mshr.occupancy(now),
            self.l2_mshr.occupancy(now),
            l3,
        ]
    }

    /// Copies the DRAM queueing statistic into [`MemStats`] and returns the
    /// full statistics snapshot. In co-run mode the queueing cycles are
    /// this core's share of the shared channel's queue.
    pub fn stats_snapshot(&self) -> MemStats {
        let mut s = self.stats;
        s.dram_queue_cycles = match &self.shared {
            Some(link) => link.uncore.borrow().core_queue_cycles(link.core),
            None => self.dram.queue_cycles(),
        };
        s.itlb_misses = self.itlb.misses();
        s.dtlb_misses = self.dtlb.misses();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{CacheConfig, CoreConfig, MemConfig, PrefetchConfig, TlbConfig};

    fn small_mem() -> MemConfig {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
                mshrs: 2,
            },
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                latency: 4,
                mshrs: 4,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 12,
                mshrs: 2,
            },
            l3: None,
            dram_latency: 100,
            dram_bytes_per_cycle: 4.0,
            itlb: TlbConfig::free(),
            dtlb: TlbConfig::free(),
            prefetch: PrefetchConfig::disabled(),
        }
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits() {
        let mut m = Hierarchy::new(&small_mem());
        let r = m.load(0x10000, 1, 0);
        assert_eq!(r.level, HitLevel::Mem);
        assert!(r.ready >= 100);
        let r2 = m.load(0x10000, 1, r.ready + 1);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.ready, r.ready + 1 + 4);
    }

    #[test]
    fn coalescing_on_in_flight_line() {
        let mut m = Hierarchy::new(&small_mem());
        let r = m.load(0x10000, 1, 0);
        // Second access to the same line while the miss is in flight.
        let r2 = m.load(0x10040 - 0x40, 2, 5);
        assert_eq!(r2.ready, r.ready);
        assert!(r2.missed_l1());
    }

    #[test]
    fn access_in_the_fill_cycle_coalesces() {
        let mut m = Hierarchy::new(&small_mem());
        let r = m.load(0x10000, 1, 0);
        let misses = m.stats().l1d.misses;
        // Re-access the line in the exact cycle the miss completes: it must
        // coalesce onto the fill, not re-miss.
        let r2 = m.load(0x10000, 2, r.ready);
        assert_eq!(r2.ready, r.ready);
        assert!(r2.missed_l1());
        assert_eq!(m.stats().l1d.misses, misses);
    }

    #[test]
    fn mshr_occupancy_tracks_in_flight_misses() {
        let mut m = Hierarchy::new(&small_mem());
        let r = m.load(0x10000, 1, 0);
        let occ = m.mshr_occupancy(1);
        assert_eq!(occ[1].occupied, 1, "one L1D miss in flight");
        assert!(occ.iter().all(MshrOccupancy::within_capacity));
        let occ = m.mshr_occupancy(r.ready + 1);
        assert_eq!(occ[1].occupied, 0, "miss drained");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = Hierarchy::new(&small_mem());
        // L1D: 1024 B / 64 / 2 = 8 sets. Lines 0, 8, 16 conflict in set 0.
        let t0 = m.load(0, 1, 0).ready;
        let t1 = m.load(8 * 64, 1, t0 + 1).ready;
        let t2 = m.load(16 * 64, 1, t1 + 1).ready;
        // Line 0 evicted from L1 but resident in the bigger L2.
        let r = m.load(0, 1, t2 + 400);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn perfect_dcache_always_l1() {
        let mut m = Hierarchy::new(&small_mem());
        m.set_perfect_dcache(true);
        for i in 0..32 {
            let r = m.load(i * 4096, 1, i);
            assert_eq!(r.level, HitLevel::L1);
            assert_eq!(r.ready, i + 4);
        }
        assert_eq!(m.stats().l1d.misses, 0);
    }

    #[test]
    fn perfect_icache_produces_no_l2_traffic() {
        let mut m = Hierarchy::new(&small_mem());
        m.set_perfect_icache(true);
        for i in 0..32 {
            let r = m.fetch(i * 4096, i);
            assert_eq!(r.level, HitLevel::L1);
        }
        assert_eq!(m.stats().l2.accesses, 0);
    }

    #[test]
    fn instructions_and_data_share_the_l2() {
        let mut m = Hierarchy::new(&small_mem());
        // Bring a line in via the instruction side...
        let r = m.fetch(0x2000, 0);
        assert_eq!(r.level, HitLevel::Mem);
        // ...then the data side finds it in the unified L2.
        let r2 = m.load(0x2000, 9, r.ready + 1);
        assert_eq!(r2.level, HitLevel::L2);
    }

    #[test]
    fn l2_mshr_pressure_delays_icache_miss() {
        let mut m = Hierarchy::new(&small_mem()); // L2 has only 2 MSHRs
                                                  // Two outstanding data misses fill the L2 MSHRs.
        let a = m.load(0x100000, 1, 0);
        let b = m.load(0x200000, 1, 0);
        assert!(a.missed_l1() && b.missed_l1());
        // An instruction miss now queues for an L2 MSHR.
        let i = m.fetch(0x300000, 1);
        assert!(i.ready > a.ready.min(b.ready));
        assert!(m.stats().l2_mshr_wait_cycles > 0);
    }

    #[test]
    fn dram_bandwidth_serializes_misses() {
        let mut cfg = small_mem();
        cfg.dram_bytes_per_cycle = 0.5; // 128 cycles per line
        cfg.l2.mshrs = 8;
        let mut m = Hierarchy::new(&cfg);
        let a = m.load(0x100000, 1, 0);
        let b = m.load(0x200000, 2, 0);
        assert!(b.ready >= a.ready + 100); // second line queued behind first
    }

    #[test]
    fn stride_prefetch_hides_later_misses() {
        let mut cfg = small_mem();
        cfg.prefetch = PrefetchConfig {
            stride_enabled: true,
            stride_degree: 4,
            stride_threshold: 2,
            next_line_enabled: false,
        };
        cfg.l2.mshrs = 8;
        let mut m = Hierarchy::new(&cfg);
        // Stream with 64-byte stride; give each access plenty of time.
        let mut now = 0;
        let mut levels = Vec::new();
        for i in 0..16u64 {
            let r = m.load(0x40000 + i * 64, 7, now);
            levels.push(r.level);
            now = r.ready + 200;
        }
        // After the stride is learned, lines should be prefetched into L2.
        assert!(
            levels[4..].contains(&HitLevel::L2),
            "prefetching should convert later stream misses into L2 hits: {levels:?}"
        );
        assert!(m.stats_snapshot().prefetches_issued > 0);
    }

    #[test]
    fn preset_configs_build() {
        for cfg in [
            CoreConfig::broadwell(),
            CoreConfig::knights_landing(),
            CoreConfig::skylake_server(),
        ] {
            let mut m = Hierarchy::new(&cfg.mem);
            let r = m.load(0x1234, 0x400000, 0);
            assert!(r.ready > 0);
        }
    }
}
