//! Memory-hierarchy statistics.

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups (demand only; prefetch fills are not counted here).
    pub accesses: u64,
    /// Lookups that missed this level.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Aggregate statistics of a [`crate::Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2 (instruction + data + prefetch demand lookups).
    pub l2: CacheStats,
    /// Shared L3 slice (zeroed when the configuration has no L3).
    pub l3: CacheStats,
    /// Lines fetched from DRAM.
    pub dram_accesses: u64,
    /// Cycles requests spent queued for DRAM bandwidth.
    pub dram_queue_cycles: u64,
    /// Prefetch lines requested (stride + next-line engines).
    pub prefetches_issued: u64,
    /// Total cycles demand misses waited for a free L2 MSHR — the paper's
    /// Fig. 3(c) contention, made directly observable.
    pub l2_mshr_wait_cycles: u64,
    /// Instruction-TLB misses (page walks folded into the Icache component).
    pub itlb_misses: u64,
    /// Data-TLB misses (page walks folded into the Dcache component).
    pub dtlb_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let s = CacheStats {
            accesses: 4,
            misses: 1,
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }
}
