//! Shared uncore for multi-core co-run simulation: one L3 slice, one DRAM
//! channel and one MSHR pool serving N cores' private hierarchies.
//!
//! ## Interference attribution
//!
//! Every shared-level miss is timed twice:
//!
//! 1. **Actual**: against the real shared state — the pooled MSHRs (all
//!    cores' in-flight misses) and the shared DRAM channel.
//! 2. **Counterfactual**: against a private view in which only *this*
//!    core's requests exist — its own in-flight entries for MSHR
//!    back-pressure, and a per-core shadow channel that has served exactly
//!    this core's request stream (demand *and* prefetch, each at the
//!    request time it would have had alone in the pool).
//!
//! The difference `ready_actual − ready_own` is the cycles this request
//! lost to other cores' occupancy: the **interference** the pipeline pins
//! on the load and the accountants turn into the per-core `interference`
//! CPI component. Two invariants make this attribution sound:
//!
//! * `ready_own ≤ ready_actual`, so interference is never negative. The
//!   own-entry pool view is a subset of the pooled entries (the k-th
//!   smallest ready of a subset with a smaller k is never later), and the
//!   shadow channel's `next_free` trails the shared channel's by induction
//!   (every shared transfer starts no earlier than its shadow twin).
//! * With a single active core both views receive identical request
//!   streams, so every access times out bit-identically to the private
//!   [`crate::Hierarchy`] path and interference is exactly zero — the
//!   idle-co-runner metamorphic guarantee.
//!
//! L3 *capacity* contention (a co-runner evicting this core's lines) is
//! deliberately not attributed: the extra misses it causes surface as
//! ordinary `dcache` cycles, so the interference component is a lower
//! bound. Instruction-side interference likewise folds into `icache`
//! (the shadow channel still tracks I-side traffic so the counterfactual
//! stays exact).
//!
//! The pool also keeps arbitration state: when a request waits for a
//! pooled MSHR or the channel, the owner of the entry (or transfer) it
//! waited behind is recorded, so the summary can say *which* core's
//! occupancy delayed whom.

use crate::cache::SetAssocCache;
use crate::mshr::MshrOccupancy;
use crate::stats::MemStats;
use crate::HitLevel;
use mstacks_model::MemConfig;

/// One in-flight miss in the shared pool (an owner-tagged twin of the
/// private `MshrFile` entry).
#[derive(Debug, Clone, Copy)]
struct PoolEntry {
    line: u64,
    /// Allocation cycle (later than the request cycle when the allocation
    /// queued behind a full pool).
    start: u64,
    ready: u64,
    tag: u8,
    owner: u8,
}

/// A bounded pool of in-flight shared-level misses, replicating the
/// private [`crate::MshrFile`] semantics (lookup-before-gc coalescing,
/// k-th-smallest-ready back-pressure, capacity assert on insert) plus an
/// owner per entry and an own-entries-only counterfactual allocation view.
#[derive(Debug, Clone)]
struct SharedMshrPool {
    entries: Vec<PoolEntry>,
    capacity: usize,
}

impl SharedMshrPool {
    fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "shared MSHR pool needs at least one entry");
        SharedMshrPool {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
        }
    }

    /// Drops entries whose miss completed strictly before `now` could
    /// still observe them (`ready <= now`); coalescing lookups run first.
    fn gc(&mut self, now: u64) {
        self.entries.retain(|e| e.ready > now);
    }

    /// Coalescing lookup, identical to `MshrFile::pending`: a miss
    /// completing exactly at `now` still satisfies this access.
    fn pending(&mut self, line: u64, now: u64) -> Option<(u64, u8)> {
        let hit = self
            .entries
            .iter()
            .find(|e| e.line == line && e.ready >= now)
            .map(|e| (e.ready, e.tag));
        self.gc(now);
        hit
    }

    /// Earliest allocation cycles at `now` for `core`, under the real pool
    /// and under the own-entries-only counterfactual, plus the owner of
    /// the entry the real allocation drained behind (None when no wait, or
    /// when the blocking entry is the requester's own).
    fn alloc_times(&mut self, core: u8, now: u64) -> (u64, u64, Option<u8>) {
        self.gc(now);
        let (start, blocker) = if self.entries.len() < self.capacity {
            (now, None)
        } else {
            let need = self.entries.len() - self.capacity + 1;
            let mut by_ready: Vec<(u64, u8)> =
                self.entries.iter().map(|e| (e.ready, e.owner)).collect();
            by_ready.sort_unstable();
            let (ready, owner) = by_ready[need - 1];
            (ready, (owner != core).then_some(owner))
        };
        let own: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| e.owner == core)
            .map(|e| e.ready)
            .collect();
        let start_own = if own.len() < self.capacity {
            now
        } else {
            let need = own.len() - self.capacity + 1;
            let mut readies = own;
            readies.sort_unstable();
            readies[need - 1]
        };
        debug_assert!(start_own <= start, "own view later than shared view");
        (start, start_own, blocker)
    }

    /// Records an in-flight miss, enforcing capacity like
    /// `MshrFile::insert`.
    fn insert(&mut self, line: u64, start: u64, ready: u64, tag: u8, owner: u8) {
        debug_assert!(ready >= start, "miss completes before it starts");
        self.gc(start);
        let live = self.entries.iter().filter(|e| e.start <= start).count();
        assert!(
            live < self.capacity,
            "shared MSHR pool capacity exceeded: {live}/{} entries live at cycle {start}",
            self.capacity
        );
        self.entries.push(PoolEntry {
            line,
            start,
            ready,
            tag,
            owner,
        });
    }

    fn occupancy(&mut self, now: u64) -> MshrOccupancy {
        self.gc(now);
        MshrOccupancy {
            occupied: self
                .entries
                .iter()
                .filter(|e| e.start <= now && e.ready > now)
                .count(),
            capacity: self.capacity,
        }
    }
}

/// Per-core slice of the shared-uncore books.
#[derive(Debug, Clone, Copy, Default)]
struct CoreShare {
    /// Shadow DRAM channel that has served exactly this core's requests.
    own_next_free: f64,
    /// Cycles this core's requests spent queued for the shared channel
    /// (feeds the core's `MemStats::dram_queue_cycles`, so a solo run
    /// snapshots bit-identically to the private hierarchy).
    queue_cycles: u64,
    interference_cycles: u64,
    l3_accesses: u64,
    l3_misses: u64,
    dram_accesses: u64,
    /// Times one of this core's pool entries or channel transfers was what
    /// another core's request waited behind (the arbitration blame book).
    delays_caused: u64,
}

/// Shared-resource occupancy summary of a finished co-run, per core and
/// in total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedSummary {
    /// Demand lookups in the shared L3 slice (all cores).
    pub l3_accesses: u64,
    /// Shared-L3 misses that went to DRAM (all cores).
    pub l3_misses: u64,
    /// Lines the shared channel transferred.
    pub dram_accesses: u64,
    /// Total cycles requests queued for the shared channel.
    pub dram_queue_cycles: u64,
    /// Entries in the shared MSHR pool.
    pub mshr_capacity: usize,
    /// Per-core slices, indexed by core id.
    pub cores: Vec<SharedCoreSummary>,
}

/// One core's slice of the [`SharedSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedCoreSummary {
    /// Shared-L3 lookups issued by this core.
    pub l3_accesses: u64,
    /// Shared-L3 misses issued by this core.
    pub l3_misses: u64,
    /// Lines this core pulled over the shared channel.
    pub dram_accesses: u64,
    /// Cycles this core's requests queued for the shared channel.
    pub dram_queue_cycles: u64,
    /// Total attributed interference (Σ `ready_actual − ready_own`).
    pub interference_cycles: u64,
    /// Times this core's occupancy delayed another core's request.
    pub delays_caused: u64,
}

/// The shared uncore: L3 slice + MSHR pool + DRAM channel, stepped by N
/// private [`crate::Hierarchy`] instances in shared mode.
#[derive(Debug)]
pub struct SharedUncore {
    l3: Option<SetAssocCache>,
    lat_l3: u64,
    pool: SharedMshrPool,
    dram_latency: u64,
    cycles_per_line: f64,
    /// Cycle at which the shared channel next becomes free.
    next_free: f64,
    /// Owner of the most recent shared-channel transfer (arbitration
    /// blame for queued requests).
    channel_owner: u8,
    dram_queue_cycles: u64,
    cores: Vec<CoreShare>,
    /// Test hook: report the pool as over capacity so the conservation
    /// auditor's occupancy check must trip at the memory stage.
    corrupt_book: bool,
}

impl SharedUncore {
    /// Builds the shared uncore described by `cfg` for `n_cores` cores.
    /// Geometry mirrors the private hierarchy exactly (same L3 config,
    /// same pool capacity, same channel parameters) so a solo co-run is
    /// bit-identical to a private-hierarchy run.
    pub fn new(cfg: &MemConfig, n_cores: usize) -> Self {
        assert!(n_cores >= 1, "co-run needs at least one core");
        SharedUncore {
            l3: cfg.l3.as_ref().map(SetAssocCache::new),
            lat_l3: u64::from(cfg.l3.map(|c| c.latency).unwrap_or(0)),
            pool: SharedMshrPool::new(cfg.l3.map(|c| c.mshrs).unwrap_or(1)),
            dram_latency: u64::from(cfg.dram_latency),
            cycles_per_line: f64::from(cfg.l2.line_bytes) / cfg.dram_bytes_per_cycle,
            next_free: 0.0,
            channel_owner: u8::MAX,
            dram_queue_cycles: 0,
            cores: vec![CoreShare::default(); n_cores],
            corrupt_book: false,
        }
    }

    /// Number of cores sharing this uncore.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Arms the corrupted-book test hook (see [`Self::occupancy`]).
    pub fn corrupt_book(&mut self) {
        self.corrupt_book = true;
    }

    /// One shared-level access by `core` for `line` at cycle `at`,
    /// mirroring the private `Hierarchy::access_l3` step for step.
    /// `stats` is the calling core's private book — the same increments
    /// the private path would make land there, so per-core snapshots stay
    /// comparable (and bit-identical for a solo run).
    ///
    /// Returns `(ready, deepest level, interference cycles)`.
    pub fn access(
        &mut self,
        core: u8,
        line: u64,
        at: u64,
        stats: &mut MemStats,
    ) -> (u64, HitLevel, u64) {
        let Some(l3) = self.l3.as_mut() else {
            // No L3 in this configuration: straight to the shared channel,
            // no pool (the private path allocates no MSHR here either).
            stats.dram_accesses += 1;
            let (ready, interference) = self.channel_access(core, at, at);
            return (ready, HitLevel::Mem, interference);
        };
        stats.l3.accesses += 1;
        self.cores[core as usize].l3_accesses += 1;
        if let Some((ready, tag)) = self.pool.pending(line, at) {
            // Coalesced onto another in-flight miss (possibly another
            // core's — cross-core sharing can only help, never charged).
            return (
                ready.max(at + self.lat_l3),
                crate::hierarchy::tag_to_level(tag),
                0,
            );
        }
        if l3.probe_and_touch(line) {
            return (at + self.lat_l3, HitLevel::L3, 0);
        }
        stats.l3.misses += 1;
        self.cores[core as usize].l3_misses += 1;
        let (start, start_own, blocker) = self.pool.alloc_times(core, at);
        if let Some(owner) = blocker {
            self.cores[owner as usize].delays_caused += 1;
        }
        stats.dram_accesses += 1;
        let (ready, interference) =
            self.channel_access(core, start + self.lat_l3, start_own + self.lat_l3);
        self.l3
            .as_mut()
            .expect("L3 presence checked above")
            .insert(line);
        self.pool
            .insert(line, start, ready, 3 /* HitLevel::Mem */, core);
        (ready, HitLevel::Mem, interference)
    }

    /// Times one line transfer on the shared channel (request cycle `at`)
    /// and on the core's shadow channel (counterfactual request cycle
    /// `at_own ≤ at`). Returns the actual ready cycle and the attributed
    /// interference `ready − ready_own`.
    fn channel_access(&mut self, core: u8, at: u64, at_own: u64) -> (u64, u64) {
        debug_assert!(at_own <= at);
        let share = &mut self.cores[core as usize];
        share.dram_accesses += 1;
        // Shadow channel first: it must see this request even when the
        // interference ends up zero, or a later counterfactual drifts.
        let own_start = share.own_next_free.max(at_own as f64);
        share.own_next_free = own_start + self.cycles_per_line;
        let own_ready = own_start as u64 + self.dram_latency;
        // Shared channel, the same arithmetic as the private `Dram`.
        let start = self.next_free.max(at as f64);
        let queued = (start - at as f64) as u64;
        share.queue_cycles += queued;
        self.dram_queue_cycles += queued;
        if queued > 0 && self.channel_owner != core && self.channel_owner != u8::MAX {
            self.cores[self.channel_owner as usize].delays_caused += 1;
        }
        self.next_free = start + self.cycles_per_line;
        self.channel_owner = core;
        let ready = start as u64 + self.dram_latency;
        debug_assert!(own_ready <= ready, "counterfactual ran behind reality");
        let interference = ready.saturating_sub(own_ready);
        self.cores[core as usize].interference_cycles += interference;
        (ready, interference)
    }

    /// Pool occupancy at `now`, for the audit subsystem's per-cycle
    /// structure check. With the corrupted-book hook armed the reported
    /// occupancy exceeds capacity, so the auditor must flag the shared-L3
    /// book at the memory stage.
    pub fn occupancy(&mut self, now: u64) -> MshrOccupancy {
        let mut occ = self.pool.occupancy(now);
        if self.corrupt_book {
            occ.occupied += occ.capacity + 1;
        }
        occ
    }

    /// Cycles `core`'s requests spent queued for the shared channel (the
    /// per-core `MemStats::dram_queue_cycles` source in shared mode).
    pub fn core_queue_cycles(&self, core: u8) -> u64 {
        self.cores[core as usize].queue_cycles
    }

    /// Total attributed interference cycles for `core`.
    pub fn core_interference_cycles(&self, core: u8) -> u64 {
        self.cores[core as usize].interference_cycles
    }

    /// Occupancy summary of the finished co-run.
    pub fn summary(&self) -> SharedSummary {
        SharedSummary {
            l3_accesses: self.cores.iter().map(|c| c.l3_accesses).sum(),
            l3_misses: self.cores.iter().map(|c| c.l3_misses).sum(),
            dram_accesses: self.cores.iter().map(|c| c.dram_accesses).sum(),
            dram_queue_cycles: self.dram_queue_cycles,
            mshr_capacity: self.pool.capacity,
            cores: self
                .cores
                .iter()
                .map(|c| SharedCoreSummary {
                    l3_accesses: c.l3_accesses,
                    l3_misses: c.l3_misses,
                    dram_accesses: c.dram_accesses,
                    dram_queue_cycles: c.queue_cycles,
                    interference_cycles: c.interference_cycles,
                    delays_caused: c.delays_caused,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{CacheConfig, MemConfig, PrefetchConfig, TlbConfig};

    fn mem_with_l3() -> MemConfig {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
                mshrs: 2,
            },
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                latency: 4,
                mshrs: 4,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 12,
                mshrs: 4,
            },
            l3: Some(CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 30,
                mshrs: 2,
            }),
            dram_latency: 100,
            dram_bytes_per_cycle: 1.0, // 64 cycles per line: easy to queue
            itlb: TlbConfig::free(),
            dtlb: TlbConfig::free(),
            prefetch: PrefetchConfig::disabled(),
        }
    }

    #[test]
    fn solo_core_sees_zero_interference() {
        let cfg = mem_with_l3();
        let mut u = SharedUncore::new(&cfg, 1);
        let mut stats = MemStats::default();
        let mut now = 0;
        for i in 0..32u64 {
            let (ready, _, interference) = u.access(0, 1000 + i, now, &mut stats);
            assert_eq!(interference, 0, "solo access {i} charged interference");
            now = ready + 1;
        }
        assert_eq!(u.core_interference_cycles(0), 0);
    }

    #[test]
    fn contended_channel_attributes_interference_to_the_victim() {
        let cfg = mem_with_l3();
        let mut u = SharedUncore::new(&cfg, 2);
        let mut s0 = MemStats::default();
        let mut s1 = MemStats::default();
        // Core 0 grabs the channel...
        let (_, _, i0) = u.access(0, 10, 0, &mut s0);
        assert_eq!(i0, 0);
        // ...so core 1's same-cycle miss queues behind a transfer it did
        // not issue: pure interference.
        let (ready1, level1, i1) = u.access(1, 20, 0, &mut s1);
        assert_eq!(level1, HitLevel::Mem);
        assert!(i1 > 0, "queued-behind-foreign-transfer must be charged");
        assert_eq!(u.core_interference_cycles(1), i1);
        // The counterfactual: alone, core 1 would have been ready at
        // lat_l3 + dram_latency.
        assert_eq!(ready1 - i1, 30 + 100);
        // Arbitration blame points at core 0.
        let sum = u.summary();
        assert!(sum.cores[0].delays_caused > 0);
        assert_eq!(sum.cores[1].delays_caused, 0);
    }

    #[test]
    fn cross_core_coalescing_is_free() {
        let cfg = mem_with_l3();
        let mut u = SharedUncore::new(&cfg, 2);
        let mut s0 = MemStats::default();
        let mut s1 = MemStats::default();
        let (ready0, _, _) = u.access(0, 77, 0, &mut s0);
        let (ready1, level1, i1) = u.access(1, 77, 1, &mut s1);
        assert_eq!(ready1, ready0.max(1 + 30));
        assert_eq!(level1, HitLevel::Mem);
        assert_eq!(i1, 0, "coalescing onto a foreign miss is a win, not a cost");
        assert_eq!(s1.l3.misses, 0, "coalesced access is not a miss");
    }

    #[test]
    fn pool_pressure_from_a_co_runner_is_charged() {
        let cfg = mem_with_l3(); // pool capacity 2
        let mut u = SharedUncore::new(&cfg, 2);
        let mut s0 = MemStats::default();
        let mut s1 = MemStats::default();
        // Core 0 fills both pooled MSHRs.
        u.access(0, 1, 0, &mut s0);
        u.access(0, 2, 0, &mut s0);
        // Core 1's first miss waits for a foreign entry to drain AND
        // queues behind two foreign transfers.
        let (_, _, i1) = u.access(1, 3, 0, &mut s1);
        assert!(i1 > 0);
        assert!(u.summary().cores[0].delays_caused > 0);
    }

    #[test]
    fn no_l3_config_goes_straight_to_the_shared_channel() {
        let mut cfg = mem_with_l3();
        cfg.l3 = None;
        let mut u = SharedUncore::new(&cfg, 2);
        let mut s0 = MemStats::default();
        let (ready, level, i) = u.access(0, 5, 0, &mut s0);
        assert_eq!(level, HitLevel::Mem);
        assert_eq!(ready, 100);
        assert_eq!(i, 0);
        assert_eq!(s0.dram_accesses, 1);
        assert_eq!(s0.l3.accesses, 0);
    }

    #[test]
    fn corrupt_book_reports_over_capacity() {
        let cfg = mem_with_l3();
        let mut u = SharedUncore::new(&cfg, 2);
        assert!(u.occupancy(0).within_capacity());
        u.corrupt_book();
        assert!(!u.occupancy(0).within_capacity());
    }

    #[test]
    fn summary_books_are_consistent() {
        let cfg = mem_with_l3();
        let mut u = SharedUncore::new(&cfg, 2);
        let mut s0 = MemStats::default();
        let mut s1 = MemStats::default();
        for i in 0..8u64 {
            u.access(
                (i % 2) as u8,
                100 + i,
                i,
                if i % 2 == 0 { &mut s0 } else { &mut s1 },
            );
        }
        let sum = u.summary();
        assert_eq!(sum.cores.len(), 2);
        assert_eq!(
            sum.l3_accesses,
            sum.cores.iter().map(|c| c.l3_accesses).sum::<u64>()
        );
        assert_eq!(
            sum.dram_queue_cycles,
            sum.cores.iter().map(|c| c.dram_queue_cycles).sum::<u64>()
        );
        assert_eq!(sum.l3_accesses, s0.l3.accesses + s1.l3.accesses);
    }
}
