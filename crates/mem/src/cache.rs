//! Set-associative cache with true-LRU replacement.
//!
//! The cache stores line *presence* only (tags, no data — the trace is
//! functional-first). Timing lives in [`crate::hierarchy`].

use mstacks_model::CacheConfig;

/// One way of one set.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Full line address (`addr >> line_shift`); `u64::MAX` = invalid.
    line: u64,
    /// LRU timestamp: larger = more recently used.
    stamp: u64,
}

const INVALID: u64 = u64::MAX;

/// A set-associative, true-LRU, write-allocate cache directory.
///
/// # Example
///
/// ```
/// use mstacks_mem::SetAssocCache;
/// use mstacks_model::CacheConfig;
///
/// let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1, mshrs: 4 };
/// let mut c = SetAssocCache::new(&cfg);
/// let line = 0x4000 >> 6;
/// assert!(!c.probe_and_touch(line));
/// c.insert(line);
/// assert!(c.probe_and_touch(line));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a non-zero power of two (use
    /// [`CacheConfig`] validation to catch this earlier).
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count {sets} must be a non-zero power of two"
        );
        SetAssocCache {
            ways: vec![
                Way {
                    line: INVALID,
                    stamp: 0
                };
                (sets as usize) * cfg.assoc as usize
            ],
            assoc: cfg.assoc as usize,
            set_mask: sets - 1,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Looks up `line`; on a hit, marks it most-recently-used.
    pub fn probe_and_touch(&mut self, line: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.line == line {
                w.stamp = tick;
                return true;
            }
        }
        false
    }

    /// Looks up `line` without disturbing LRU state.
    pub fn contains(&self, line: u64) -> bool {
        let range = self.set_range(line);
        self.ways[range].iter().any(|w| w.line == line)
    }

    /// Inserts `line` as most-recently-used, returning the evicted line (if
    /// a valid line was displaced). Inserting a line that is already present
    /// just refreshes its LRU position.
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.ways[range];
        // Already present?
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            w.stamp = tick;
            return None;
        }
        // Free way?
        if let Some(w) = set.iter_mut().find(|w| w.line == INVALID) {
            *w = Way { line, stamp: tick };
            return None;
        }
        // Evict true-LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.stamp)
            .expect("associativity is non-zero");
        let evicted = victim.line;
        *victim = Way { line, stamp: tick };
        Some(evicted)
    }

    /// Removes `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.line == line {
                w.line = INVALID;
                w.stamp = 0;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident (O(capacity); for tests).
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.line != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u64, assoc: u32) -> SetAssocCache {
        SetAssocCache::new(&CacheConfig {
            size_bytes: size,
            assoc,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(1024, 2);
        assert!(!c.probe_and_touch(7));
        assert_eq!(c.insert(7), None);
        assert!(c.probe_and_touch(7));
        assert!(c.contains(7));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1024 B / 64 B / 2 ways = 8 sets. Lines k, k+8, k+16 map to set k.
        let mut c = cache(1024, 2);
        c.insert(0);
        c.insert(8);
        // Touch 0 so 8 becomes LRU.
        assert!(c.probe_and_touch(0));
        let evicted = c.insert(16);
        assert_eq!(evicted, Some(8));
        assert!(c.contains(0));
        assert!(c.contains(16));
        assert!(!c.contains(8));
    }

    #[test]
    fn insert_existing_refreshes_lru() {
        let mut c = cache(1024, 2);
        c.insert(0);
        c.insert(8);
        assert_eq!(c.insert(0), None); // refresh 0 → 8 is LRU
        assert_eq!(c.insert(16), Some(8));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache(1024, 2);
        c.insert(3);
        assert!(c.invalidate(3));
        assert!(!c.contains(3));
        assert!(!c.invalidate(3));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = cache(1024, 2);
        for line in 0..8 {
            c.insert(line);
        }
        assert_eq!(c.resident_lines(), 8);
        for line in 0..8 {
            assert!(c.contains(line));
        }
    }

    #[test]
    fn full_associativity_fills_before_evicting() {
        let mut c = cache(4096, 4); // 16 sets, 4 ways
        for i in 0..4 {
            assert_eq!(c.insert(i * 16), None);
        }
        assert_eq!(c.resident_lines(), 4);
        assert!(c.insert(4 * 16).is_some());
    }
}
