//! Main-memory model: fixed latency plus a bandwidth queue.
//!
//! Bandwidth is the per-core share of the socket (the paper scales all
//! uncore resources by the core count, §IV). Each line transfer occupies the
//! memory channel for `line_bytes / bytes_per_cycle` cycles; requests that
//! arrive while the channel is busy queue behind it, so bandwidth-bound
//! phases see growing effective latency.

/// Bandwidth-limited, fixed-latency DRAM.
///
/// # Example
///
/// ```
/// use mstacks_mem::Dram;
///
/// // 100-cycle latency, 2 bytes/cycle → a 64-byte line holds the channel 32 cycles.
/// let mut d = Dram::new(100, 2.0, 64);
/// assert_eq!(d.access(0), 100);
/// // Second access queues behind the first transfer (starts at 32).
/// assert_eq!(d.access(0), 132);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    cycles_per_line: f64,
    /// Cycle at which the channel next becomes free.
    next_free: f64,
    accesses: u64,
    /// Total cycles requests spent queued for bandwidth.
    queue_cycles: u64,
}

impl Dram {
    /// Creates a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(latency: u32, bytes_per_cycle: f64, line_bytes: u32) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Dram {
            latency: u64::from(latency),
            cycles_per_line: f64::from(line_bytes) / bytes_per_cycle,
            next_free: 0.0,
            accesses: 0,
            queue_cycles: 0,
        }
    }

    /// Requests one line at cycle `now`; returns the cycle the data arrives.
    pub fn access(&mut self, now: u64) -> u64 {
        self.accesses += 1;
        let start = self.next_free.max(now as f64);
        self.queue_cycles += (start - now as f64) as u64;
        self.next_free = start + self.cycles_per_line;
        start as u64 + self.latency
    }

    /// Total line requests served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles requests spent waiting for the channel.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_gives_pure_latency() {
        let mut d = Dram::new(170, 4.0, 64);
        assert_eq!(d.access(1000), 1170);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(100, 1.0, 64); // 64 cycles per line
        assert_eq!(d.access(0), 100);
        assert_eq!(d.access(0), 164);
        assert_eq!(d.access(0), 228);
        assert_eq!(d.accesses(), 3);
        assert!(d.queue_cycles() > 0);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = Dram::new(100, 1.0, 64);
        assert_eq!(d.access(0), 100);
        assert_eq!(d.access(1000), 1100);
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Dram::new(100, 0.0, 64);
    }
}
