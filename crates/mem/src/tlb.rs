//! Translation lookaside buffers.
//!
//! The paper's cache components are defined as "time spent in misses in
//! the instruction and data cache **(and TLB)**" (§III). The model keeps
//! TLBs simple: a set-associative array of page numbers; a miss adds a
//! fixed page-walk latency to the access and folds into the corresponding
//! Icache/Dcache component.

use crate::cache::SetAssocCache;
use mstacks_model::{CacheConfig, TlbConfig};

/// A TLB: page-granular lookup with a fixed page-walk penalty.
///
/// # Example
///
/// ```
/// use mstacks_mem::Tlb;
/// use mstacks_model::TlbConfig;
///
/// let mut tlb = Tlb::new(&TlbConfig { entries: 64, assoc: 4, walk_cycles: 30 });
/// assert_eq!(tlb.access(0x1234_5678), 30); // cold miss pays the walk
/// assert_eq!(tlb.access(0x1234_5000), 0);  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    pages: SetAssocCache,
    walk_cycles: u64,
    accesses: u64,
    misses: u64,
}

/// Page size (4 KiB).
const PAGE_SHIFT: u32 = 12;

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries / assoc` is not a non-zero power of two.
    pub fn new(cfg: &TlbConfig) -> Self {
        // Reuse the cache directory with page numbers as "lines": geometry
        // (sets × ways) is all that matters.
        let geometry = CacheConfig {
            size_bytes: u64::from(cfg.entries) * 64,
            assoc: cfg.assoc,
            line_bytes: 64,
            latency: 0,
            mshrs: 1,
        };
        Tlb {
            pages: SetAssocCache::new(&geometry),
            walk_cycles: u64::from(cfg.walk_cycles),
            accesses: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns the extra cycles the access pays
    /// (0 on a hit, the page-walk latency on a miss). The entry is filled
    /// on a miss.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.accesses += 1;
        let page = addr >> PAGE_SHIFT;
        if self.pages.probe_and_touch(page) {
            0
        } else {
            self.misses += 1;
            self.pages.insert(page);
            self.walk_cycles
        }
    }

    /// Fills the entry for `addr` (touching LRU on a hit) without counting
    /// an access or a miss — functional warming for sampled simulation,
    /// where fast-forwarded translations must shape the TLB contents but
    /// not the measured statistics.
    pub fn warm(&mut self, addr: u64) {
        let page = addr >> PAGE_SHIFT;
        if !self.pages.probe_and_touch(page) {
            self.pages.insert(page);
        }
    }

    /// Total translations.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Translations that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32) -> Tlb {
        Tlb::new(&TlbConfig {
            entries,
            assoc: 4,
            walk_cycles: 30,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut t = tlb(64);
        assert_eq!(t.access(0x40_0000), 30);
        assert_eq!(t.access(0x40_0FFF), 0); // same 4K page
        assert_eq!(t.access(0x40_1000), 30); // next page
        assert_eq!(t.misses(), 2);
        assert_eq!(t.accesses(), 3);
    }

    #[test]
    fn capacity_eviction() {
        let mut t = tlb(16); // 4 sets × 4 ways
                             // 32 distinct pages overflow a 16-entry TLB.
        for p in 0..32u64 {
            t.access(p << 12);
        }
        // Early pages were evicted.
        assert!(t.access(0) > 0, "page 0 must have been evicted");
    }

    #[test]
    fn sparse_pages_thrash() {
        let mut t = tlb(64);
        let mut walks = 0;
        for i in 0..1_000u64 {
            // 4 MiB stride → every access a new page set.
            if t.access(i * (4 << 20)) > 0 {
                walks += 1;
            }
        }
        assert!(walks > 900, "sparse accesses must thrash the TLB: {walks}");
    }

    #[test]
    fn zero_walk_is_free_miss() {
        let mut t = Tlb::new(&TlbConfig {
            entries: 16,
            assoc: 4,
            walk_cycles: 0,
        });
        assert_eq!(t.access(0xABC_0000), 0);
        assert_eq!(t.misses(), 1);
    }
}
