//! Miss-status-holding registers.
//!
//! An MSHR file bounds the number of outstanding misses at a cache level.
//! Two behaviours matter for the paper's experiments:
//!
//! * **Coalescing**: a second access to a line whose miss is already in
//!   flight does not allocate a new entry; it completes when the first miss
//!   completes. A miss completing *exactly* at the access cycle still
//!   satisfies the access (its fill is on the bus this cycle).
//! * **Back-pressure**: when every entry is busy, a new miss must wait until
//!   an entry frees. On the L2 this queueing — largely caused by hardware
//!   prefetches — is exactly the `bwaves` effect of paper Fig. 3(c): I-cache
//!   misses wait a long time for an L2 MSHR.

/// One in-flight miss.
#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    /// Cycle the entry is allocated (equals the caller's
    /// [`MshrFile::alloc_time`]; later than the request cycle when the
    /// allocation queued behind a full file).
    start: u64,
    ready: u64,
    tag: u8,
}

/// Occupancy of one MSHR file at a cycle boundary, as probed by the audit
/// subsystem ([`MshrFile::occupancy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MshrOccupancy {
    /// Entries live at the probed cycle (allocated and not yet completed).
    pub occupied: usize,
    /// Total entries in the file.
    pub capacity: usize,
}

impl MshrOccupancy {
    /// The invariant the auditor checks: a file never holds more live
    /// entries than it has.
    #[inline]
    pub fn within_capacity(&self) -> bool {
        self.occupied <= self.capacity
    }
}

/// A bounded file of in-flight misses at one cache level.
///
/// # Example
///
/// ```
/// use mstacks_mem::MshrFile;
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.alloc_time(100), 100); // free entry → allocate immediately
/// m.insert(1, 100, 150, 0);
/// m.insert(2, 100, 180, 0);
/// // File is full until cycle 150: a third miss at cycle 120 waits.
/// assert_eq!(m.alloc_time(120), 150);
/// // Accessing line 1 again coalesces onto the in-flight miss.
/// assert_eq!(m.pending(1, 120), Some((150, 0)));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
        }
    }

    /// Drops entries whose miss completed strictly before `now` could still
    /// observe them (i.e. `ready <= now`). Coalescing lookups run *before*
    /// this, so a same-cycle completion is still visible to [`Self::pending`].
    fn gc(&mut self, now: u64) {
        self.entries.retain(|e| e.ready > now);
    }

    /// If a miss for `line` is in flight at `now`, returns its completion
    /// cycle and the caller-supplied tag (coalescing). A miss completing
    /// exactly at `now` still coalesces — the line arrives this cycle.
    pub fn pending(&mut self, line: u64, now: u64) -> Option<(u64, u8)> {
        // Look up before garbage collection: `ready == now` entries satisfy
        // this access but would be dropped by `gc`.
        let hit = self
            .entries
            .iter()
            .find(|e| e.line == line && e.ready >= now)
            .map(|e| (e.ready, e.tag));
        self.gc(now);
        hit
    }

    /// Earliest cycle ≥ `now` at which a new entry can be allocated.
    ///
    /// If the file is full, this is the completion time of the
    /// soonest-finishing in-flight miss (the allocation queues behind it).
    pub fn alloc_time(&mut self, now: u64) -> u64 {
        self.gc(now);
        if self.entries.len() < self.capacity {
            return now;
        }
        // Need to wait for (len - capacity + 1) entries to drain.
        let need = self.entries.len() - self.capacity + 1;
        let mut readies: Vec<u64> = self.entries.iter().map(|e| e.ready).collect();
        readies.sort_unstable();
        readies[need - 1]
    }

    /// Records a new in-flight miss for `line`: allocated at `start` (the
    /// caller's [`MshrFile::alloc_time`] result), completing at `ready`.
    /// `tag` is an opaque caller payload returned by [`MshrFile::pending`]
    /// (the hierarchy stores the serviced [`crate::HitLevel`] there).
    ///
    /// # Panics
    ///
    /// Panics if the file already holds `capacity` live entries at `start` —
    /// the caller skipped the [`MshrFile::alloc_time`] back-pressure wait
    /// and would defeat the bounded-miss model (paper Fig. 3(c)).
    pub fn insert(&mut self, line: u64, start: u64, ready: u64, tag: u8) {
        debug_assert!(ready >= start, "miss completes before it starts");
        self.gc(start);
        // Entries queued to start later do not occupy the file at `start`.
        let live = self.entries.iter().filter(|e| e.start <= start).count();
        assert!(
            live < self.capacity,
            "MSHR capacity exceeded: {live}/{} entries live at cycle {start} \
             (caller must wait for alloc_time)",
            self.capacity
        );
        self.entries.push(Entry {
            line,
            start,
            ready,
            tag,
        });
    }

    /// Number of misses in flight at `now`.
    pub fn in_flight(&mut self, now: u64) -> usize {
        self.gc(now);
        self.entries.len()
    }

    /// Occupancy probe for the audit subsystem: entries live at `now`
    /// (allocated at or before `now`, completing after it) against the
    /// file's capacity.
    pub fn occupancy(&mut self, now: u64) -> MshrOccupancy {
        self.gc(now);
        MshrOccupancy {
            occupied: self
                .entries
                .iter()
                .filter(|e| e.start <= now && e.ready > now)
                .count(),
            capacity: self.capacity,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_allocates_immediately() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.alloc_time(42), 42);
        assert_eq!(m.in_flight(42), 0);
    }

    #[test]
    fn coalesces_same_line() {
        let mut m = MshrFile::new(4);
        m.insert(9, 50, 200, 3);
        assert_eq!(m.pending(9, 100), Some((200, 3)));
        assert_eq!(m.pending(8, 100), None);
        // A miss completing exactly now still satisfies this access...
        assert_eq!(m.pending(9, 200), Some((200, 3)));
        // ...and is gone one cycle later.
        assert_eq!(m.pending(9, 201), None);
    }

    #[test]
    fn same_cycle_completion_coalesces_then_frees() {
        let mut m = MshrFile::new(1);
        m.insert(7, 0, 100, 1);
        // The fill cycle itself coalesces instead of re-missing.
        assert_eq!(m.pending(7, 100), Some((100, 1)));
        // The entry was garbage-collected by that lookup: the file is free.
        assert_eq!(m.in_flight(100), 0);
        assert_eq!(m.alloc_time(100), 100);
    }

    #[test]
    fn full_file_queues_new_allocations() {
        let mut m = MshrFile::new(2);
        m.insert(1, 0, 300, 0);
        m.insert(2, 0, 250, 0);
        // Earliest-finishing entry frees at 250.
        assert_eq!(m.alloc_time(100), 250);
        // After 250, one slot is free.
        assert_eq!(m.alloc_time(251), 251);
    }

    #[test]
    fn overcommitted_file_queues_behind_kth_entry() {
        let mut m = MshrFile::new(2);
        m.insert(1, 0, 300, 0);
        m.insert(2, 0, 250, 0);
        // Queued allocation beyond capacity: starts when entry 2 drains.
        m.insert(3, 250, 400, 0);
        // 3 in flight, capacity 2 → need 2 to drain: 250 then 300.
        assert_eq!(m.alloc_time(100), 300);
    }

    #[test]
    fn gc_frees_completed_entries() {
        let mut m = MshrFile::new(1);
        m.insert(1, 0, 100, 0);
        assert_eq!(m.in_flight(99), 1);
        assert_eq!(m.in_flight(100), 0);
        assert_eq!(m.alloc_time(100), 100);
    }

    #[test]
    fn insert_enforces_capacity() {
        let mut m = MshrFile::new(2);
        m.insert(1, 0, 300, 0);
        m.insert(2, 0, 250, 0);
        // A third allocation at a cycle where both entries are live must go
        // through alloc_time; inserting directly is a caller bug.
        let start = m.alloc_time(100);
        assert_eq!(start, 250);
        m.insert(3, start, 400, 0); // legal: entry 2 drained at 250
        assert_eq!(m.occupancy(260).occupied, 2);
    }

    #[test]
    #[should_panic(expected = "MSHR capacity exceeded")]
    fn insert_past_capacity_panics() {
        let mut m = MshrFile::new(2);
        m.insert(1, 0, 300, 0);
        m.insert(2, 0, 250, 0);
        // Both entries are live at cycle 100; skipping alloc_time panics.
        m.insert(3, 100, 400, 0);
    }

    #[test]
    fn occupancy_counts_only_live_entries() {
        let mut m = MshrFile::new(4);
        m.insert(1, 0, 100, 0);
        m.insert(2, 0, 200, 0);
        let o = m.occupancy(50);
        assert_eq!((o.occupied, o.capacity), (2, 4));
        assert!(o.within_capacity());
        m.insert(3, 150, 300, 0); // queued: starts at 150
                                  // At 150 entry 1 completed and entry 3 started.
        assert_eq!(m.occupancy(150).occupied, 2);
        assert_eq!(m.occupancy(250).occupied, 1);
        assert_eq!(m.occupancy(300).occupied, 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
