//! Miss-status-holding registers.
//!
//! An MSHR file bounds the number of outstanding misses at a cache level.
//! Two behaviours matter for the paper's experiments:
//!
//! * **Coalescing**: a second access to a line whose miss is already in
//!   flight does not allocate a new entry; it completes when the first miss
//!   completes.
//! * **Back-pressure**: when every entry is busy, a new miss must wait until
//!   an entry frees. On the L2 this queueing — largely caused by hardware
//!   prefetches — is exactly the `bwaves` effect of paper Fig. 3(c): I-cache
//!   misses wait a long time for an L2 MSHR.

/// One in-flight miss.
#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    ready: u64,
    tag: u8,
}

/// A bounded file of in-flight misses at one cache level.
///
/// # Example
///
/// ```
/// use mstacks_mem::MshrFile;
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.alloc_time(100), 100); // free entry → allocate immediately
/// m.insert(1, 150, 0);
/// m.insert(2, 180, 0);
/// // File is full until cycle 150: a third miss at cycle 120 waits.
/// assert_eq!(m.alloc_time(120), 150);
/// // Accessing line 1 again coalesces onto the in-flight miss.
/// assert_eq!(m.pending(1, 120), Some((150, 0)));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
        }
    }

    /// Drops entries whose miss completed at or before `now`.
    fn gc(&mut self, now: u64) {
        self.entries.retain(|e| e.ready > now);
    }

    /// If a miss for `line` is in flight at `now`, returns its completion
    /// cycle and the caller-supplied tag (coalescing).
    pub fn pending(&mut self, line: u64, now: u64) -> Option<(u64, u8)> {
        self.gc(now);
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| (e.ready, e.tag))
    }

    /// Earliest cycle ≥ `now` at which a new entry can be allocated.
    ///
    /// If the file is full, this is the completion time of the
    /// soonest-finishing in-flight miss (the allocation queues behind it).
    pub fn alloc_time(&mut self, now: u64) -> u64 {
        self.gc(now);
        if self.entries.len() < self.capacity {
            return now;
        }
        // Need to wait for (len - capacity + 1) entries to drain.
        let need = self.entries.len() - self.capacity + 1;
        let mut readies: Vec<u64> = self.entries.iter().map(|e| e.ready).collect();
        readies.sort_unstable();
        readies[need - 1]
    }

    /// Records a new in-flight miss for `line`, completing at `ready`.
    /// `tag` is an opaque caller payload returned by [`MshrFile::pending`]
    /// (the hierarchy stores the serviced [`crate::HitLevel`] there).
    ///
    /// The caller must have consulted [`MshrFile::alloc_time`] first; this
    /// method does not enforce the capacity wait (entries beyond capacity
    /// represent allocations already queued with correct timestamps).
    pub fn insert(&mut self, line: u64, ready: u64, tag: u8) {
        self.entries.push(Entry { line, ready, tag });
    }

    /// Number of misses in flight at `now`.
    pub fn in_flight(&mut self, now: u64) -> usize {
        self.gc(now);
        self.entries.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_allocates_immediately() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.alloc_time(42), 42);
        assert_eq!(m.in_flight(42), 0);
    }

    #[test]
    fn coalesces_same_line() {
        let mut m = MshrFile::new(4);
        m.insert(9, 200, 3);
        assert_eq!(m.pending(9, 100), Some((200, 3)));
        assert_eq!(m.pending(8, 100), None);
        // After completion the entry is gone.
        assert_eq!(m.pending(9, 200), None);
    }

    #[test]
    fn full_file_queues_new_allocations() {
        let mut m = MshrFile::new(2);
        m.insert(1, 300, 0);
        m.insert(2, 250, 0);
        // Earliest-finishing entry frees at 250.
        assert_eq!(m.alloc_time(100), 250);
        // After 250, one slot is free.
        assert_eq!(m.alloc_time(251), 251);
    }

    #[test]
    fn overcommitted_file_queues_behind_kth_entry() {
        let mut m = MshrFile::new(2);
        m.insert(1, 300, 0);
        m.insert(2, 250, 0);
        m.insert(3, 400, 0); // queued allocation beyond capacity
                             // 3 in flight, capacity 2 → need 2 to drain: 250 then 300.
        assert_eq!(m.alloc_time(100), 300);
    }

    #[test]
    fn gc_frees_completed_entries() {
        let mut m = MshrFile::new(1);
        m.insert(1, 100, 0);
        assert_eq!(m.in_flight(99), 1);
        assert_eq!(m.in_flight(100), 0);
        assert_eq!(m.alloc_time(100), 100);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
