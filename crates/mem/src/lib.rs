//! Memory hierarchy for the `mstacks` simulator.
//!
//! Implements the uncore substrate the ISPASS 2018 paper's evaluation relies
//! on: set-associative L1I/L1D caches, a *unified* L2 (instructions and data
//! share capacity and MSHRs — the source of the paper's Fig. 3(b)
//! second-order coupling), an optional shared L3 slice, limited
//! miss-status-holding registers (whose contention produces the Fig. 3(c)
//! `bwaves` effect), hardware prefetchers, and a bandwidth-limited DRAM
//! model.
//!
//! The hierarchy is a *latency oracle with contention*: an access walks the
//! levels once and returns the cycle at which its data is ready, shaped by
//! MSHR occupancy and DRAM bandwidth. In-flight misses are tracked in MSHR
//! files so that later accesses to the same line coalesce.
//!
//! # Example
//!
//! ```
//! use mstacks_mem::{Hierarchy, HitLevel};
//! use mstacks_model::CoreConfig;
//!
//! let cfg = CoreConfig::broadwell();
//! let mut mem = Hierarchy::new(&cfg.mem);
//! let first = mem.load(0x4000, 0x100, 0);
//! assert_eq!(first.level, HitLevel::Mem); // cold miss goes to DRAM
//! let again = mem.load(0x4000, 0x100, first.ready + 1);
//! assert_eq!(again.level, HitLevel::L1); // now resident
//! ```

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod shared;
pub mod stats;
pub mod tlb;

pub use cache::SetAssocCache;
pub use dram::Dram;
pub use hierarchy::{AccessResult, Hierarchy};
pub use mshr::{MshrFile, MshrOccupancy};
pub use prefetch::{NextLinePrefetcher, StridePrefetcher};
pub use shared::{SharedCoreSummary, SharedSummary, SharedUncore};
pub use stats::{CacheStats, MemStats};
pub use tlb::Tlb;

/// The deepest level an access had to go to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Serviced by the first-level cache (or store-forwarded).
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed L2, hit the shared L3 slice.
    L3,
    /// Went all the way to main memory.
    Mem,
}

impl HitLevel {
    /// `true` if the access missed the first-level cache. This is the
    /// predicate the Table II accounting algorithms call "has Dcache miss"
    /// (resp. "Icache miss" on the instruction side).
    #[inline]
    pub fn beyond_l1(self) -> bool {
        self != HitLevel::L1
    }
}

impl std::fmt::Display for HitLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HitLevel::L1 => write!(f, "L1"),
            HitLevel::L2 => write!(f, "L2"),
            HitLevel::L3 => write!(f, "L3"),
            HitLevel::Mem => write!(f, "mem"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_level_ordering_and_predicate() {
        assert!(HitLevel::L1 < HitLevel::L2);
        assert!(HitLevel::L2 < HitLevel::L3);
        assert!(HitLevel::L3 < HitLevel::Mem);
        assert!(!HitLevel::L1.beyond_l1());
        assert!(HitLevel::L2.beyond_l1());
        assert!(HitLevel::Mem.beyond_l1());
    }

    #[test]
    fn hit_level_display() {
        assert_eq!(HitLevel::Mem.to_string(), "mem");
    }
}
