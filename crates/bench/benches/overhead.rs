//! Criterion version of the paper's §IV overhead experiment.
//!
//! Three variants of the identical simulation:
//! * `bare` — unit observer (no accounting at all);
//! * `dispatch_only` — dispatch-stack accounting (the "original Sniper"
//!   baseline: Sniper already measured dispatch CPI stacks);
//! * `full` — dispatch + issue + commit CPI stacks + FLOPS stack (this
//!   paper's addition).
//!
//! The paper's claim maps to `full` vs `dispatch_only`: < 1% on Sniper;
//! expect small single digits here on a far leaner simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use mstacks_core::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FlopsAccountant, IssueAccountant,
};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_pipeline::Core;
use mstacks_workloads::spec;

const UOPS: u64 = 60_000;

fn bench_overhead(c: &mut Criterion) {
    let w = spec::exchange2();
    let cfg = CoreConfig::broadwell();
    let wdt = cfg.accounting_width();

    let mut g = c.benchmark_group("accounting_overhead");
    g.sample_size(20);

    g.bench_function("bare", |b| {
        b.iter(|| {
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
            std::hint::black_box(core.run(&mut ()).expect("runs").cycles)
        })
    });

    g.bench_function("dispatch_only", |b| {
        b.iter(|| {
            let mut obs = DispatchAccountant::new(wdt, BadSpecMode::GroundTruth);
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
            let cycles = core.run(&mut obs).expect("runs").cycles;
            std::hint::black_box((obs, cycles))
        })
    });

    g.bench_function("full_multistage_and_flops", |b| {
        b.iter(|| {
            let mut obs = (
                DispatchAccountant::new(wdt, BadSpecMode::GroundTruth),
                IssueAccountant::new(wdt, BadSpecMode::GroundTruth),
                CommitAccountant::new(wdt),
                FlopsAccountant::new(cfg.vpu_count().max(1), cfg.vector_lanes_f32()),
            );
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
            let cycles = core.run(&mut obs).expect("runs").cycles;
            std::hint::black_box((obs, cycles))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
