//! The paper's §IV overhead experiment.
//!
//! Three variants of the identical simulation:
//! * `bare` — unit observer (no accounting at all);
//! * `dispatch_only` — dispatch-stack accounting (the "original Sniper"
//!   baseline: Sniper already measured dispatch CPI stacks);
//! * `full` — dispatch + issue + commit CPI stacks + FLOPS stack (this
//!   paper's addition).
//!
//! The paper's claim maps to `full` vs `dispatch_only`: < 1% on Sniper;
//! expect small single digits here on a far leaner simulator.

use mstacks_bench::microbench::Group;
use mstacks_core::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FlopsAccountant, IssueAccountant,
};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_pipeline::Core;
use mstacks_workloads::spec;

const UOPS: u64 = 60_000;

fn main() {
    let w = spec::exchange2();
    let cfg = CoreConfig::broadwell();
    let wdt = cfg.accounting_width();

    let g = Group::new("accounting_overhead", 20);

    g.bench("bare", || {
        let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
        core.run(&mut ()).expect("runs").cycles
    });

    g.bench("dispatch_only", || {
        let mut obs = DispatchAccountant::new(wdt, BadSpecMode::GroundTruth);
        let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
        core.run(&mut obs).expect("runs").cycles
    });

    g.bench("full_multistage_and_flops", || {
        let mut obs = (
            DispatchAccountant::new(wdt, BadSpecMode::GroundTruth),
            IssueAccountant::new(wdt, BadSpecMode::GroundTruth),
            CommitAccountant::new(wdt),
            FlopsAccountant::new(cfg.vpu_count().max(1), cfg.vector_lanes_f32()),
        );
        let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
        core.run(&mut obs).expect("runs").cycles
    });
}
