//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **bad-speculation mode** — ground truth vs the simple retire-slot
//!   scheme vs speculative counters (paper §III-B): cost of each.
//! * **accounting width** — min-width normalization with carry-over is the
//!   paper's §III-A proposal; we benchmark its cost relative to plain
//!   per-stage-width accounting (it is just arithmetic, so the point of
//!   the bench is to show it is free).
//! * **prefetcher on/off** — the stride prefetcher is what produces the
//!   Fig. 3(c) effect; this measures its simulation-speed cost.

use mstacks_bench::microbench::Group;
use mstacks_core::{BadSpecMode, DispatchAccountant, IssueAccountant};
use mstacks_model::{CoreConfig, IdealFlags, PrefetchConfig};
use mstacks_pipeline::Core;
use mstacks_workloads::spec;

const UOPS: u64 = 40_000;

fn bench_badspec_modes() {
    let w = spec::mcf(); // branchy: exercises squash/commit bookkeeping
    let cfg = CoreConfig::broadwell();
    let wdt = cfg.accounting_width();
    let g = Group::new("badspec_mode", 10);
    for mode in [
        BadSpecMode::GroundTruth,
        BadSpecMode::SimpleRetireSlots,
        BadSpecMode::SpeculativeCounters,
    ] {
        g.bench(&mode.to_string(), || {
            let mut obs = (
                DispatchAccountant::new(wdt, mode),
                IssueAccountant::new(wdt, mode),
            );
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
            core.run(&mut obs).expect("runs").cycles
        });
    }
}

fn bench_prefetcher() {
    let w = spec::bwaves(); // streaming: maximum prefetch activity
    let g = Group::new("prefetcher", 10);
    for (name, enabled) in [("on", true), ("off", false)] {
        let mut cfg = CoreConfig::broadwell();
        if !enabled {
            cfg.mem.prefetch = PrefetchConfig::disabled();
        }
        g.bench(name, || {
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
            core.run(&mut ()).expect("runs").cycles
        });
    }
}

fn bench_wide_issue_carry() {
    // The min-width normalizer runs once per stage per cycle; this measures
    // the accountant with a wide-issue core (carry-over active every cycle)
    // against a narrow one.
    let w = spec::x264();
    let g = Group::new("width_normalization", 10);
    for cfg in [CoreConfig::broadwell(), CoreConfig::knights_landing()] {
        let wdt = cfg.accounting_width();
        g.bench(&format!("{}_W{}", cfg.name, wdt), || {
            let mut obs = IssueAccountant::new(wdt, BadSpecMode::GroundTruth);
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
            let cycles = core.run(&mut obs).expect("runs").cycles;
            (obs.finish(cycles, None).total_cycles(), cycles)
        });
    }
}

fn main() {
    bench_badspec_modes();
    bench_prefetcher();
    bench_wide_issue_carry();
}
