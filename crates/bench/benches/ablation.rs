//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **bad-speculation mode** — ground truth vs the simple retire-slot
//!   scheme vs speculative counters (paper §III-B): cost of each.
//! * **accounting width** — min-width normalization with carry-over is the
//!   paper's §III-A proposal; we benchmark its cost relative to plain
//!   per-stage-width accounting (it is just arithmetic, so the point of
//!   the bench is to show it is free).
//! * **prefetcher on/off** — the stride prefetcher is what produces the
//!   Fig. 3(c) effect; this measures its simulation-speed cost.

use criterion::{criterion_group, criterion_main, Criterion};
use mstacks_core::{BadSpecMode, DispatchAccountant, IssueAccountant};
use mstacks_model::{CoreConfig, IdealFlags, PrefetchConfig};
use mstacks_pipeline::Core;
use mstacks_workloads::spec;

const UOPS: u64 = 40_000;

fn bench_badspec_modes(c: &mut Criterion) {
    let w = spec::mcf(); // branchy: exercises squash/commit bookkeeping
    let cfg = CoreConfig::broadwell();
    let wdt = cfg.accounting_width();
    let mut g = c.benchmark_group("badspec_mode");
    g.sample_size(10);
    for mode in [
        BadSpecMode::GroundTruth,
        BadSpecMode::SimpleRetireSlots,
        BadSpecMode::SpeculativeCounters,
    ] {
        g.bench_function(mode.to_string(), |b| {
            b.iter(|| {
                let mut obs = (
                    DispatchAccountant::new(wdt, mode),
                    IssueAccountant::new(wdt, mode),
                );
                let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
                let cycles = core.run(&mut obs).expect("runs").cycles;
                std::hint::black_box((obs, cycles))
            })
        });
    }
    g.finish();
}

fn bench_prefetcher(c: &mut Criterion) {
    let w = spec::bwaves(); // streaming: maximum prefetch activity
    let mut g = c.benchmark_group("prefetcher");
    g.sample_size(10);
    for (name, enabled) in [("on", true), ("off", false)] {
        let mut cfg = CoreConfig::broadwell();
        if !enabled {
            cfg.mem.prefetch = PrefetchConfig::disabled();
        }
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
                std::hint::black_box(core.run(&mut ()).expect("runs").cycles)
            })
        });
    }
    g.finish();
}

fn bench_wide_issue_carry(c: &mut Criterion) {
    // The min-width normalizer runs once per stage per cycle; this measures
    // the accountant with a wide-issue core (carry-over active every cycle)
    // against a narrow one.
    let w = spec::x264();
    let mut g = c.benchmark_group("width_normalization");
    g.sample_size(10);
    for cfg in [CoreConfig::broadwell(), CoreConfig::knights_landing()] {
        let wdt = cfg.accounting_width();
        g.bench_function(format!("{}_W{}", cfg.name, wdt), |b| {
            b.iter(|| {
                let mut obs = IssueAccountant::new(wdt, BadSpecMode::GroundTruth);
                let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(UOPS));
                let cycles = core.run(&mut obs).expect("runs").cycles;
                std::hint::black_box((obs, cycles))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_badspec_modes,
    bench_prefetcher,
    bench_wide_issue_carry
);
criterion_main!(benches);
