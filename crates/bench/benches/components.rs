//! Microbenchmarks of the simulator's building blocks: cache hierarchy,
//! branch predictor, wrong-path synthesis, workload generation, and the
//! end-to-end pipeline on characteristic workloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mstacks_frontend::BranchPredictor;
use mstacks_mem::Hierarchy;
use mstacks_model::{BranchInfo, BranchKind, CoreConfig, IdealFlags};
use mstacks_pipeline::Core;
use mstacks_workloads::spec;

fn bench_hierarchy(c: &mut Criterion) {
    let cfg = CoreConfig::broadwell();
    let mut g = c.benchmark_group("memory_hierarchy");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l1_hits", |b| {
        let mut mem = Hierarchy::new(&cfg.mem);
        // Warm a small set.
        for i in 0..64u64 {
            mem.load(i * 64, 1, i);
        }
        let mut now = 1_000u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                now += 1;
                std::hint::black_box(mem.load((i % 64) * 64, 1, now));
            }
        })
    });
    g.bench_function("streaming_misses", |b| {
        let mut mem = Hierarchy::new(&cfg.mem);
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            for _ in 0..10_000u64 {
                now += 20;
                addr += 64;
                std::hint::black_box(mem.load(addr, 7, now));
            }
        })
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let cfg = CoreConfig::broadwell();
    let mut g = c.benchmark_group("branch_predictor");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("predict_update", |b| {
        let mut bp = BranchPredictor::new(&cfg.bpred, false);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                i += 1;
                let br = BranchInfo {
                    taken: i.is_multiple_of(3),
                    target: 0x9000 + (i % 64) * 8,
                    fallthrough: 0x1000 + (i % 64) * 8 + 4,
                    kind: BranchKind::Cond,
                };
                std::hint::black_box(bp.predict_and_update(0x1000 + (i % 64) * 8, &br));
            }
        })
    });
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    g.throughput(Throughput::Elements(50_000));
    for w in [spec::mcf(), spec::bwaves()] {
        g.bench_function(w.name(), |b| {
            b.iter(|| {
                std::hint::black_box(w.trace(50_000).count());
            })
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Elements(40_000));
    for (w, cfg) in [
        (spec::exchange2(), CoreConfig::broadwell()),
        (spec::mcf(), CoreConfig::broadwell()),
        (spec::imagick(), CoreConfig::knights_landing()),
    ] {
        g.bench_function(format!("{}_{}", w.name(), cfg.name), |b| {
            b.iter(|| {
                let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(40_000));
                std::hint::black_box(core.run(&mut ()).expect("runs").cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hierarchy,
    bench_predictor,
    bench_workload_gen,
    bench_pipeline
);
criterion_main!(benches);
