//! Microbenchmarks of the simulator's building blocks: cache hierarchy,
//! branch predictor, workload generation, and the end-to-end pipeline on
//! characteristic workloads.

use mstacks_bench::microbench::Group;
use mstacks_frontend::BranchPredictor;
use mstacks_mem::Hierarchy;
use mstacks_model::{BranchInfo, BranchKind, CoreConfig, IdealFlags};
use mstacks_pipeline::Core;
use mstacks_workloads::spec;

fn bench_hierarchy() {
    let cfg = CoreConfig::broadwell();
    let g = Group::new("memory_hierarchy", 20);
    {
        let mut mem = Hierarchy::new(&cfg.mem);
        // Warm a small set.
        for i in 0..64u64 {
            mem.load(i * 64, 1, i);
        }
        let mut now = 1_000u64;
        g.bench("l1_hits", || {
            let mut sum = 0u64;
            for i in 0..10_000u64 {
                now += 1;
                sum = sum.wrapping_add(mem.load((i % 64) * 64, 1, now).ready);
            }
            sum
        });
    }
    {
        let mut mem = Hierarchy::new(&cfg.mem);
        let mut addr = 0u64;
        let mut now = 0u64;
        g.bench("streaming_misses", || {
            let mut sum = 0u64;
            for _ in 0..10_000u64 {
                now += 20;
                addr += 64;
                sum = sum.wrapping_add(mem.load(addr, 7, now).ready);
            }
            sum
        });
    }
}

fn bench_predictor() {
    let cfg = CoreConfig::broadwell();
    let g = Group::new("branch_predictor", 20);
    let mut bp = BranchPredictor::new(&cfg.bpred, false);
    let mut i = 0u64;
    g.bench("predict_update", || {
        let mut hits = 0u32;
        for _ in 0..10_000 {
            i += 1;
            let br = BranchInfo {
                taken: i.is_multiple_of(3),
                target: 0x9000 + (i % 64) * 8,
                fallthrough: 0x1000 + (i % 64) * 8 + 4,
                kind: BranchKind::Cond,
            };
            if !bp
                .predict_and_update(0x1000 + (i % 64) * 8, &br)
                .mispredicted
            {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_workload_gen() {
    let g = Group::new("workload_generation", 10);
    for w in [spec::mcf(), spec::bwaves()] {
        g.bench(&w.name(), || w.trace(50_000).count());
    }
}

fn bench_pipeline() {
    let g = Group::new("pipeline_end_to_end", 10);
    for (w, cfg) in [
        (spec::exchange2(), CoreConfig::broadwell()),
        (spec::mcf(), CoreConfig::broadwell()),
        (spec::imagick(), CoreConfig::knights_landing()),
    ] {
        g.bench(&format!("{}_{}", w.name(), cfg.name), || {
            let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(40_000));
            core.run(&mut ()).expect("runs").cycles
        });
    }
}

fn main() {
    bench_hierarchy();
    bench_predictor();
    bench_workload_gen();
    bench_pipeline();
}
