//! **§IV overhead claim + simulator throughput baseline.**
//!
//! Part 1 — the paper's overhead claim: "the simulation time increases by
//! less than 1% compared to the original version of Sniper (which already
//! includes measuring dispatch CPI stacks)". The faithful comparison is a
//! simulator that already accounts the dispatch-stage CPI stack versus one
//! that additionally accounts the issue and commit stacks plus the FLOPS
//! stack.
//!
//! Part 2 — the tracked throughput baseline (PR 4): committed uops/sec and
//! simulated cycles/sec per profile x core, one warmup run then the median
//! of `MSTACKS_BENCH_REPS` (default 5) timed runs, for both the bare
//! engine (unit observers) and the full accountant set (`Session`). The
//! `fig1` row is the acceptance metric of the scheduler overhaul: `mcf` on
//! Broadwell with all accountants attached, exactly what `--bin fig1`
//! simulates. The `fig1-sampled` row is the acceptance metric of interval
//! sampling (PR 7): the same configuration under [`bench_plan`] over
//! [`sampled_total`] micro-ops, reported as effective coverage per second.
//! Set `MSTACKS_BENCH_OUT=path.json` to also emit the numbers as JSON
//! (the committed `BENCH_PR4.json` / `BENCH_PR7.json` are pairs of such
//! runs, one from the pre-change engine and one from the current one).

use mstacks_bench::sim_uops;
use mstacks_core::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FlopsAccountant, IssueAccountant,
    SamplePlan, Session, COMPONENTS,
};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_pipeline::{Core, StageObserver};
use mstacks_stats::TextTable;
use mstacks_workloads::{spec, SharedTraceBuffer, TraceBuffer, Workload};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn time_with<O: StageObserver>(
    cfg: &CoreConfig,
    w: &Workload,
    uops: u64,
    mut obs: O,
    reps: u32,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(uops));
        let r = core.run(&mut obs).expect("runs");
        std::hint::black_box((&obs, r.cycles));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// One throughput measurement: simulated work per wall-clock second.
#[derive(Clone, Copy)]
struct Throughput {
    uops_per_sec: f64,
    cycles_per_sec: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Times `run` (which returns `(committed uops, cycles)`) `reps` times
/// after one warmup and reports the median rates.
fn throughput(reps: u32, mut run: impl FnMut() -> (u64, u64)) -> Throughput {
    let _ = run(); // warmup
    let mut uops_rates = Vec::with_capacity(reps as usize);
    let mut cycle_rates = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t = Instant::now();
        let (uops, cycles) = run();
        let dt = t.elapsed().as_secs_f64();
        uops_rates.push(uops as f64 / dt);
        cycle_rates.push(cycles as f64 / dt);
    }
    Throughput {
        uops_per_sec: median(uops_rates),
        cycles_per_sec: median(cycle_rates),
    }
}

/// Full-accountant run over the pre-decoded buffer, the realistic
/// configuration (what fig1..fig5 pay). The capture is hoisted by the
/// caller, so the timed region is pure engine + accounting — the batched
/// mode the SoA frontend exists for.
fn full_run(cfg: &CoreConfig, buf: &Arc<TraceBuffer>) -> (u64, u64) {
    let r = Session::new(cfg.clone())
        .run(buf.cursor())
        .expect("runs")
        .result;
    std::hint::black_box((r.committed_uops, r.cycles))
}

/// The sampling plan the benchmark (and `BENCH_PR7.json`) tracks: 4 000
/// warmup + 2 500 measured per window, 118 500 fast-forwarded (period
/// 125 000, ~6% of the trace executed in detail including cooldown).
fn bench_plan() -> SamplePlan {
    SamplePlan::new(4_000, 2_500, 118_500)
}

/// Trace length for the sampled rows: interval sampling amortizes its
/// fixed per-window cost over long traces (its actual use case), so the
/// sampled speedup and accuracy are measured over 8× the full-row length
/// — enough for ~100 windows under [`bench_plan`]. Effective rates stay
/// directly comparable to the full rows (both are micro-ops per second).
fn sampled_total(uops: u64) -> u64 {
    uops * 8
}

/// Interval-sampled run over the pre-decoded buffer. The first tuple
/// element is the *covered* trace length, so the computed rate is
/// effective micro-ops per second — directly comparable to (and the
/// speedup over) the `full` rows.
fn sampled_run(cfg: &CoreConfig, buf: &Arc<TraceBuffer>, total: u64) -> (u64, u64) {
    let s = Session::new(cfg.clone())
        .run_sampled(total, bench_plan(), buf)
        .expect("runs");
    std::hint::black_box((s.total_uops, s.report.result.cycles))
}

/// Sampled-vs-full accuracy on the fig1 configuration: (CPI relative
/// error, worst commit-stage component error as a fraction of full CPI).
fn sampled_accuracy(cfg: &CoreConfig, buf: &Arc<TraceBuffer>, total: u64) -> (f64, f64) {
    let full = Session::new(cfg.clone()).run(buf.cursor()).expect("runs");
    let sampled = Session::new(cfg.clone())
        .run_sampled(total, bench_plan(), buf)
        .expect("runs");
    let cpi_err = (sampled.cpi_mean - full.cpi()).abs() / full.cpi();
    let comp_err = COMPONENTS
        .iter()
        .map(|&c| {
            (sampled.report.multi.commit.cpi_of(c) - full.multi.commit.cpi_of(c)).abs() / full.cpi()
        })
        .fold(0.0f64, f64::max);
    (cpi_err, comp_err)
}

/// Bare-engine run (unit observer): the pipeline floor.
fn bare_run(cfg: &CoreConfig, buf: &Arc<TraceBuffer>) -> (u64, u64) {
    let mut core = Core::new(cfg.clone(), IdealFlags::none(), buf.cursor());
    let r = core.run(&mut ()).expect("runs");
    std::hint::black_box((r.committed_uops, r.cycles))
}

struct Row {
    profile: String,
    core: String,
    mode: &'static str,
    tp: Throughput,
}

fn bench_reps() -> u32 {
    std::env::var("MSTACKS_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

fn throughput_baseline(uops: u64, reps: u32, sampled_buf: &Arc<TraceBuffer>) -> Vec<Row> {
    let cores = [
        CoreConfig::broadwell(),
        CoreConfig::knights_landing(),
        CoreConfig::skylake_server(),
    ];
    let profiles = [spec::mcf(), spec::imagick(), spec::exchange2()];
    // Pre-decode each profile once; every timed run replays the shared
    // buffer (batched mode — capture cost amortizes across runs exactly
    // as it does across sampling windows and sweep reps).
    let bufs: Vec<Arc<TraceBuffer>> = profiles
        .iter()
        .map(|w| TraceBuffer::capture(w, uops).shared())
        .collect();
    let mut rows = Vec::new();
    // The acceptance row first: the fig1 configuration (mcf on BDW, all
    // accountants), named so the committed baseline can be diffed by key.
    rows.push(Row {
        profile: "mcf".into(),
        core: "bdw".into(),
        mode: "fig1",
        tp: throughput(reps, || full_run(&CoreConfig::broadwell(), &bufs[0])),
    });
    // The sampled acceptance row: same configuration under the tracked
    // interval-sampling plan over the longer trace (see [`sampled_total`]);
    // `uops_per_sec` is effective trace coverage per second.
    rows.push(Row {
        profile: "mcf".into(),
        core: "bdw".into(),
        mode: "fig1-sampled",
        tp: throughput(reps, || {
            sampled_run(&CoreConfig::broadwell(), sampled_buf, sampled_total(uops))
        }),
    });
    for cfg in &cores {
        for (w, buf) in profiles.iter().zip(&bufs) {
            rows.push(Row {
                profile: w.name(),
                core: cfg.name.clone(),
                mode: "full",
                tp: throughput(reps, || full_run(cfg, buf)),
            });
            rows.push(Row {
                profile: w.name(),
                core: cfg.name.clone(),
                mode: "bare",
                tp: throughput(reps, || bare_run(cfg, buf)),
            });
        }
    }
    rows
}

fn rows_to_json(uops: u64, reps: u32, rows: &[Row], accuracy: (f64, f64)) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"overhead-throughput\",");
    let _ = writeln!(s, "  \"uops\": {uops},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"sample_plan\": \"{}\",", bench_plan());
    let _ = writeln!(s, "  \"sampled_uops\": {},", sampled_total(uops));
    let _ = writeln!(
        s,
        "  \"sampled_cpi_rel_err\": {:.6}, \"sampled_worst_component_err\": {:.6},",
        accuracy.0, accuracy.1
    );
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"profile\": \"{}\", \"core\": \"{}\", \"mode\": \"{}\", \
             \"uops_per_sec\": {:.0}, \"cycles_per_sec\": {:.0}}}",
            r.profile, r.core, r.mode, r.tp.uops_per_sec, r.tp.cycles_per_sec
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn overhead_study(uops: u64) {
    let reps = 5;
    println!(
        "Accounting overhead ({uops} uops, best of {reps}):\n\
         baseline = pipeline with dispatch-stack accounting (original-Sniper equivalent)\n\
         full     = + issue stack + commit stack + FLOPS stack (this paper)\n"
    );
    let mut table = TextTable::new(vec![
        "workload".into(),
        "core".into(),
        "bare Mu/s".into(),
        "dispatch-only Mu/s".into(),
        "full Mu/s".into(),
        "paper overhead".into(),
    ]);
    let mut worst: f64 = 0.0;
    for (w, cfg) in [
        (spec::mcf(), CoreConfig::broadwell()),
        (spec::imagick(), CoreConfig::knights_landing()),
        (spec::exchange2(), CoreConfig::broadwell()),
    ] {
        let wdt = cfg.accounting_width();
        let _ = time_with(&cfg, &w, uops / 4, (), 1); // warm-up
        let bare = time_with(&cfg, &w, uops, (), reps);
        let dispatch_only = time_with(
            &cfg,
            &w,
            uops,
            DispatchAccountant::new(wdt, BadSpecMode::GroundTruth),
            reps,
        );
        let full = time_with(
            &cfg,
            &w,
            uops,
            (
                DispatchAccountant::new(wdt, BadSpecMode::GroundTruth),
                IssueAccountant::new(wdt, BadSpecMode::GroundTruth),
                CommitAccountant::new(wdt),
                FlopsAccountant::new(cfg.vpu_count().max(1), cfg.vector_lanes_f32()),
            ),
            reps,
        );
        let overhead = full / dispatch_only - 1.0;
        worst = worst.max(overhead);
        table.row(vec![
            w.name(),
            cfg.name.clone(),
            format!("{:.2}", uops as f64 / bare / 1e6),
            format!("{:.2}", uops as f64 / dispatch_only / 1e6),
            format!("{:.2}", uops as f64 / full / 1e6),
            format!("{:+.1}%", overhead * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "worst-case overhead of adding multi-stage + FLOPS accounting: {:+.1}%\n\
         (paper: <1% on Sniper; small single-digit percentages are expected here\n\
         because this pipeline model is orders of magnitude leaner than Sniper)\n",
        worst * 100.0
    );
}

fn main() {
    let uops = sim_uops();
    overhead_study(uops);

    let reps = bench_reps();
    // One long capture shared by the fig1-sampled row and the accuracy
    // check (sampling's use case is long traces; see `sampled_total`).
    let sampled_buf = TraceBuffer::capture(&spec::mcf(), sampled_total(uops)).shared();
    println!(
        "Simulator throughput (median of {reps} after 1 warmup, {uops} uops per run, \
         sampled row covers {} uops):",
        sampled_total(uops)
    );
    let rows = throughput_baseline(uops, reps, &sampled_buf);
    let mut table = TextTable::new(vec![
        "profile".into(),
        "core".into(),
        "mode".into(),
        "committed Mu/s".into(),
        "sim Mcycles/s".into(),
    ]);
    for r in &rows {
        table.row(vec![
            r.profile.clone(),
            r.core.clone(),
            r.mode.into(),
            format!("{:.2}", r.tp.uops_per_sec / 1e6),
            format!("{:.2}", r.tp.cycles_per_sec / 1e6),
        ]);
    }
    println!("{table}");

    // Sampling accuracy on the fig1 configuration (the ≤2% budget the
    // sampled speedup is contingent on), over the same long trace the
    // fig1-sampled row times.
    let (cpi_err, comp_err) =
        sampled_accuracy(&CoreConfig::broadwell(), &sampled_buf, sampled_total(uops));
    println!(
        "sampled accuracy (mcf/bdw, plan {}, {} uops): CPI error {:.2}%, \
         worst commit component error {:.2}% of CPI",
        bench_plan(),
        sampled_total(uops),
        cpi_err * 100.0,
        comp_err * 100.0
    );

    if let Ok(path) = std::env::var("MSTACKS_BENCH_OUT") {
        let json = rows_to_json(uops, reps, &rows, (cpi_err, comp_err));
        std::fs::write(&path, json).expect("write benchmark JSON");
        println!("wrote {path}");
    }

    // Engine self-profile (MSTACKS_STAGE_PROF=1): where the simulated
    // cycles' wall time went, over every engine this process ran.
    if let Some((cycles, ns)) = mstacks_pipeline::stage_prof_snapshot() {
        let total: u64 = ns.iter().sum();
        let mut s = String::from("{\n  \"bench\": \"stage-profile\",\n");
        let _ = writeln!(s, "  \"cycles\": {cycles},");
        let _ = writeln!(s, "  \"total_ns\": {total},");
        s.push_str("  \"stages\": {\n");
        for (i, (name, t)) in mstacks_pipeline::STAGE_PROF_NAMES
            .iter()
            .zip(ns)
            .enumerate()
        {
            let pct = if total > 0 {
                t as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            let _ = write!(s, "    \"{name}\": {{\"ns\": {t}, \"pct\": {pct:.1}}}");
            s.push_str(if i + 1 < ns.len() { ",\n" } else { "\n" });
        }
        s.push_str("  }\n}");
        println!("stage profile:\n{s}");
    }
}
