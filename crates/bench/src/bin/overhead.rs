//! **§IV overhead claim** — "the simulation time increases by less than 1%
//! compared to the original version of Sniper (which already includes
//! measuring dispatch CPI stacks)".
//!
//! The faithful comparison therefore is: a simulator that already accounts
//! the dispatch-stage CPI stack (the "original Sniper" baseline) versus
//! one that additionally accounts the issue and commit stacks plus the
//! FLOPS stack. We also report the bare pipeline (no observers at all) for
//! context — that comparison overstates the cost, because the compiler
//! dead-code-eliminates the per-cycle state probes the views feed on.
//!
//! `cargo bench -p mstacks-bench` runs the statistically rigorous
//! Criterion version; this binary gives a quick summary.

use mstacks_bench::sim_uops;
use mstacks_core::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FlopsAccountant, IssueAccountant,
};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_pipeline::{Core, StageObserver};
use mstacks_stats::TextTable;
use mstacks_workloads::{spec, Workload};
use std::time::Instant;

fn time_with<O: StageObserver>(
    cfg: &CoreConfig,
    w: &Workload,
    uops: u64,
    mut obs: O,
    reps: u32,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut core = Core::new(cfg.clone(), IdealFlags::none(), w.trace(uops));
        let r = core.run(&mut obs).expect("runs");
        std::hint::black_box((&obs, r.cycles));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let uops = sim_uops();
    let reps = 5;
    println!(
        "Accounting overhead ({uops} uops, best of {reps}):\n\
         baseline = pipeline with dispatch-stack accounting (original-Sniper equivalent)\n\
         full     = + issue stack + commit stack + FLOPS stack (this paper)\n"
    );
    let mut table = TextTable::new(vec![
        "workload".into(),
        "core".into(),
        "bare Mu/s".into(),
        "dispatch-only Mu/s".into(),
        "full Mu/s".into(),
        "paper overhead".into(),
    ]);
    let mut worst: f64 = 0.0;
    for (w, cfg) in [
        (spec::mcf(), CoreConfig::broadwell()),
        (spec::imagick(), CoreConfig::knights_landing()),
        (spec::exchange2(), CoreConfig::broadwell()),
    ] {
        let wdt = cfg.accounting_width();
        let _ = time_with(&cfg, &w, uops / 4, (), 1); // warm-up
        let bare = time_with(&cfg, &w, uops, (), reps);
        let dispatch_only = time_with(
            &cfg,
            &w,
            uops,
            DispatchAccountant::new(wdt, BadSpecMode::GroundTruth),
            reps,
        );
        let full = time_with(
            &cfg,
            &w,
            uops,
            (
                DispatchAccountant::new(wdt, BadSpecMode::GroundTruth),
                IssueAccountant::new(wdt, BadSpecMode::GroundTruth),
                CommitAccountant::new(wdt),
                FlopsAccountant::new(cfg.vpu_count().max(1), cfg.vector_lanes_f32()),
            ),
            reps,
        );
        let overhead = full / dispatch_only - 1.0;
        worst = worst.max(overhead);
        table.row(vec![
            w.name(),
            cfg.name.clone(),
            format!("{:.2}", uops as f64 / bare / 1e6),
            format!("{:.2}", uops as f64 / dispatch_only / 1e6),
            format!("{:.2}", uops as f64 / full / 1e6),
            format!("{:+.1}%", overhead * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "worst-case overhead of adding multi-stage + FLOPS accounting: {:+.1}%\n\
         (paper: <1% on Sniper; small single-digit percentages are expected here\n\
         because this pipeline model is orders of magnitude leaner than Sniper)",
        worst * 100.0
    );
}
