//! **Figure 2** — error on the components for the individual CPI stacks
//! and the combined multi-stage representation, on BDW and KNL.
//!
//! Methodology (paper §V-A): for every benchmark where a component is at
//! least 10 % of total CPI in any stack, re-simulate with that structure
//! idealized and compare each stack's predicted component against the
//! measured CPI reduction. The multi-stage error is zero when the actual
//! reduction falls within the [min, max] bounds of the three stacks.
//!
//! Output: one boxplot row (min |q1 median q3| max) per component per
//! accounting scheme, plus the mean absolute errors — the paper's claim is
//! that the multi-stage representation has the smallest error.

use mstacks_bench::{run, sim_uops, single_idealizations};
use mstacks_core::{Component, SimReport};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::{ComponentErrorStudy, TextTable};
use mstacks_workloads::{spec, Workload};
use std::collections::HashMap;
use std::sync::Mutex;

/// Baseline + relevant idealized runs for one (workload, core) pair.
struct BenchResult {
    name: String,
    base: SimReport,
    deltas: Vec<(Component, f64)>,
}

fn run_benchmark(w: &Workload, cfg: &CoreConfig, uops: u64) -> BenchResult {
    let base = run(w, cfg, IdealFlags::none(), uops);
    let mut deltas = Vec::new();
    for (comp, ideal) in single_idealizations() {
        if !ComponentErrorStudy::is_relevant(&base.multi, comp, 0.10) {
            continue;
        }
        let idealized = run(w, cfg, ideal, uops);
        deltas.push((comp, base.cpi() - idealized.cpi()));
    }
    BenchResult {
        name: w.name(),
        base,
        deltas,
    }
}

fn main() {
    let uops = sim_uops();
    let workloads = spec::all();
    println!(
        "Figure 2: component error boxplots, {} benchmarks x 2 cores ({} uops each)\n",
        workloads.len(),
        uops
    );

    for cfg in [CoreConfig::broadwell(), CoreConfig::knights_landing()] {
        // Fan the independent simulations out over threads.
        let results: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
        let next: Mutex<usize> = Mutex::new(0);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(workloads.len());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = {
                        let mut n = next.lock().expect("lock");
                        let i = *n;
                        *n += 1;
                        i
                    };
                    if i >= workloads.len() {
                        break;
                    }
                    let r = run_benchmark(&workloads[i], &cfg, uops);
                    results.lock().expect("lock").push(r);
                });
            }
        });
        let mut results = results.into_inner().expect("lock");
        results.sort_by(|a, b| a.name.cmp(&b.name));

        // Collect per-component error studies.
        let mut studies: HashMap<Component, ComponentErrorStudy> = HashMap::new();
        for r in &results {
            for &(comp, actual) in &r.deltas {
                studies
                    .entry(comp)
                    .or_default()
                    .add(&r.name, &r.base.multi, comp, actual);
            }
        }

        println!("=== {} ===", cfg.name.to_uppercase());
        let mut table = TextTable::new(vec![
            "component".into(),
            "scheme".into(),
            "boxplot (min |q1 med q3| max)".into(),
            "MAE".into(),
        ]);
        for comp in [
            Component::Icache,
            Component::Dcache,
            Component::Bpred,
            Component::AluLat,
        ] {
            let Some(study) = studies.get(&comp) else {
                continue;
            };
            // The paper omits component/core pairs with ≤1 benchmark.
            if study.len() < 2 {
                println!(
                    "({}: only {} benchmark(s) ≥10% — omitted, as the paper does for ALU on BDW)",
                    comp.label(),
                    study.len()
                );
                continue;
            }
            let boxes = study.boxplots().expect("non-empty study");
            let mae = study.mean_abs_errors().expect("non-empty study");
            for (i, scheme) in ["dispatch", "issue", "commit", "multi"].iter().enumerate() {
                table.row(vec![
                    if i == 0 {
                        format!("{} (n={})", comp.label(), study.len())
                    } else {
                        String::new()
                    },
                    scheme.to_string(),
                    boxes[i].to_string(),
                    format!("{:.4}", mae[i]),
                ]);
            }
        }
        println!("{table}");

        // Headline check: multi-stage has the lowest mean absolute error.
        let mut wins = 0;
        let mut total = 0;
        for study in studies.values() {
            if study.len() < 2 {
                continue;
            }
            if let Some(mae) = study.mean_abs_errors() {
                total += 1;
                if mae[3] <= mae[0] && mae[3] <= mae[1] && mae[3] <= mae[2] {
                    wins += 1;
                }
            }
        }
        println!(
            "multi-stage representation has the lowest MAE for {wins}/{total} components\n"
        );
    }
}
