//! **Figure 2** — error on the components for the individual CPI stacks
//! and the combined multi-stage representation, on BDW and KNL.
//!
//! Methodology (paper §V-A): for every benchmark where a component is at
//! least 10 % of total CPI in any stack, re-simulate with that structure
//! idealized and compare each stack's predicted component against the
//! measured CPI reduction. The multi-stage error is zero when the actual
//! reduction falls within the [min, max] bounds of the three stacks.
//!
//! Output: one boxplot row (min |q1 median q3| max) per component per
//! accounting scheme, plus the mean absolute errors — the paper's claim is
//! that the multi-stage representation has the smallest error.
//!
//! The runs fan out over the shared [`Sweep`] executor in two stages:
//! first every baseline, then — once the baselines say which components
//! clear the 10 % relevance bar — one idealized run per relevant
//! (benchmark, component) pair.

use mstacks_bench::{sim_uops, single_idealizations, Sweep};
use mstacks_core::Component;
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::{ComponentErrorStudy, TextTable};
use mstacks_workloads::spec;
use std::collections::HashMap;

fn main() {
    let uops = sim_uops();
    let workloads = spec::all();
    println!(
        "Figure 2: component error boxplots, {} benchmarks x 2 cores ({} uops each)\n",
        workloads.len(),
        uops
    );

    for cfg in [CoreConfig::broadwell(), CoreConfig::knights_landing()] {
        // Stage 1: all baselines, in parallel.
        let bases = Sweep::product(
            &workloads,
            std::slice::from_ref(&cfg),
            &[IdealFlags::none()],
            uops,
        )
        .run();

        // Stage 2: one idealized run per (benchmark, relevant component).
        let mut idealized = Sweep::new();
        let mut keys: Vec<(usize, Component)> = Vec::new();
        for (i, b) in bases.iter().enumerate() {
            for (comp, ideal) in single_idealizations() {
                if ComponentErrorStudy::is_relevant(&b.report.multi, comp, 0.10) {
                    idealized = idealized.point(workloads[i].clone(), cfg.clone(), ideal, uops);
                    keys.push((i, comp));
                }
            }
        }
        let ideal_results = idealized.run();

        // Collect per-component error studies.
        let mut studies: HashMap<Component, ComponentErrorStudy> = HashMap::new();
        for (&(i, comp), r) in keys.iter().zip(&ideal_results) {
            let base = &bases[i];
            studies.entry(comp).or_default().add(
                &base.point.workload.name(),
                &base.report.multi,
                comp,
                base.report.cpi() - r.report.cpi(),
            );
        }

        println!("=== {} ===", cfg.name.to_uppercase());
        let mut table = TextTable::new(vec![
            "component".into(),
            "scheme".into(),
            "boxplot (min |q1 med q3| max)".into(),
            "MAE".into(),
        ]);
        for comp in [
            Component::Icache,
            Component::Dcache,
            Component::Bpred,
            Component::AluLat,
        ] {
            let Some(study) = studies.get(&comp) else {
                continue;
            };
            // The paper omits component/core pairs with ≤1 benchmark.
            if study.len() < 2 {
                println!(
                    "({}: only {} benchmark(s) ≥10% — omitted, as the paper does for ALU on BDW)",
                    comp.label(),
                    study.len()
                );
                continue;
            }
            let boxes = study.boxplots().expect("non-empty study");
            let mae = study.mean_abs_errors().expect("non-empty study");
            for (i, scheme) in ["dispatch", "issue", "commit", "multi"].iter().enumerate() {
                table.row(vec![
                    if i == 0 {
                        format!("{} (n={})", comp.label(), study.len())
                    } else {
                        String::new()
                    },
                    scheme.to_string(),
                    boxes[i].to_string(),
                    format!("{:.4}", mae[i]),
                ]);
            }
        }
        println!("{table}");

        // Headline check: multi-stage has the lowest mean absolute error.
        let mut wins = 0;
        let mut total = 0;
        for study in studies.values() {
            if study.len() < 2 {
                continue;
            }
            if let Some(mae) = study.mean_abs_errors() {
                total += 1;
                if mae[3] <= mae[0] && mae[3] <= mae[1] && mae[3] <= mae[2] {
                    wins += 1;
                }
            }
        }
        println!("multi-stage representation has the lowest MAE for {wins}/{total} components\n");
    }
}
