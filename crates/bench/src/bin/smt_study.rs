//! **SMT co-run study** (extension; paper §II points at per-thread SMT
//! stacks) — a co-run matrix over representative profiles: per-thread
//! slowdown vs running solo, and how much of it the per-thread stacks
//! attribute to the `smt` interference component vs to *induced* stalls
//! (e.g. extra cache misses from sharing the hierarchy).

use mstacks_bench::{par_map, sim_uops};
use mstacks_core::{Component, Session};
use mstacks_model::CoreConfig;
use mstacks_stats::TextTable;
use mstacks_workloads::spec;

fn main() {
    let uops = sim_uops().min(200_000);
    let cfg = CoreConfig::broadwell();
    let names = ["exchange2", "imagick", "mcf", "cactus"];
    println!(
        "SMT co-run matrix on {} ({} uops per thread): per-thread slowdown and\n\
         the share the `smt` component explains\n",
        cfg.name, uops
    );

    // Solo baselines, in parallel on the shared pool.
    let solo: Vec<f64> = par_map(&names, |n| {
        let w = spec::by_name(n).expect("known profile");
        Session::new(cfg.clone())
            .audit(mstacks_bench::audit_enabled())
            .run(w.trace(uops))
            .expect("simulation completes")
            .cpi()
    });

    // Co-run matrix: every pair is an independent 2-thread session, so the
    // pairs fan out too. par_map keeps declaration order.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..names.len() {
        for j in i..names.len() {
            pairs.push((i, j));
        }
    }
    let reports = par_map(&pairs, |&(i, j)| {
        let wa = spec::by_name(names[i]).expect("known profile");
        let wb = spec::by_name(names[j]).expect("known profile");
        Session::new(cfg.clone())
            .audit(mstacks_bench::audit_enabled())
            .run_threads(vec![wa.trace(uops), wb.trace(uops)])
            .expect("simulation completes")
    });

    let mut t = TextTable::new(vec![
        "pair".into(),
        "t0 slowdown".into(),
        "t0 smt CPI".into(),
        "t1 slowdown".into(),
        "t1 smt CPI".into(),
    ]);
    for (&(i, j), r) in pairs.iter().zip(&reports) {
        let smt_of = |k: usize| {
            r.threads[k]
                .multi
                .stacks()
                .iter()
                .map(|s| s.cpi_of(Component::Smt))
                .fold(0.0f64, f64::max)
        };
        t.row(vec![
            format!("{}+{}", names[i], names[j]),
            format!("{:.2}x", r.threads[0].cpi() / solo[i]),
            format!("{:.3}", smt_of(0)),
            format!("{:.2}x", r.threads[1].cpi() / solo[j]),
            format!("{:.3}", smt_of(1)),
        ]);
    }
    println!("{t}");
    println!(
        "Reading: compute-bound pairs (exchange2+exchange2) lose mostly to the smt\n\
         component (slot sharing); memory-bound co-runners (mcf, cactus) also induce\n\
         extra cache misses in the victim, which appear in its *dcache* component —\n\
         interference the simple smt counter cannot see, exactly why per-thread\n\
         stacks at multiple stages are useful."
    );
}
