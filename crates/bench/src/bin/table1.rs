//! **Table I** — CPI components by idealizing structures.
//!
//! Reproduces the paper's motivating experiment: `mcf` on KNL shows that
//! ALU stalls are *hidden* behind D-cache misses (the combined
//! idealization gains more than the sum of the parts), and `mcf` on BDW
//! shows that branch-predictor and D-cache penalties *overlap* (the
//! combination gains less than the sum). Either way, a single additive
//! CPI stack cannot represent both.

use mstacks_bench::{run, sim_uops};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::TextTable;
use mstacks_workloads::spec;

fn main() {
    let uops = sim_uops();
    let w = spec::mcf();

    println!("Table I: CPI components by idealizing structures ({uops} uops)\n");
    let mut table = TextTable::new(vec![
        "App & core".into(),
        "Config".into(),
        "CPI".into(),
        "Diff. CPI".into(),
    ]);

    // --- mcf on KNL: hidden ALU stalls --------------------------------
    let knl = CoreConfig::knights_landing();
    let base = run(&w, &knl, IdealFlags::none(), uops);
    let alu = run(&w, &knl, IdealFlags::none().with_single_cycle_alu(), uops);
    let dc = run(&w, &knl, IdealFlags::none().with_perfect_dcache(), uops);
    let both = run(
        &w,
        &knl,
        IdealFlags::none().with_perfect_dcache().with_single_cycle_alu(),
        uops,
    );
    table.row(vec![
        "mcf on KNL".into(),
        "All real".into(),
        format!("{:.2}", base.cpi()),
        String::new(),
    ]);
    for (name, r) in [("1-cycle ALU", &alu), ("perfect Dcache", &dc), ("perf. Dcache & 1-cyc. ALU", &both)] {
        table.row(vec![
            String::new(),
            name.into(),
            format!("{:.2}", r.cpi()),
            format!("{:.2}", base.cpi() - r.cpi()),
        ]);
    }
    let d_alu = base.cpi() - alu.cpi();
    let d_dc = base.cpi() - dc.cpi();
    let d_both = base.cpi() - both.cpi();
    let knl_hidden = d_both > d_alu + d_dc;

    // --- mcf on BDW: overlapping bpred + Dcache ------------------------
    let bdw = CoreConfig::broadwell();
    let base_b = run(&w, &bdw, IdealFlags::none(), uops);
    let bp = run(&w, &bdw, IdealFlags::none().with_perfect_bpred(), uops);
    let dc_b = run(&w, &bdw, IdealFlags::none().with_perfect_dcache(), uops);
    let both_b = run(
        &w,
        &bdw,
        IdealFlags::none().with_perfect_bpred().with_perfect_dcache(),
        uops,
    );
    table.row(vec![
        "mcf on BDW".into(),
        "All real".into(),
        format!("{:.2}", base_b.cpi()),
        String::new(),
    ]);
    for (name, r) in [
        ("perfect bpred", &bp),
        ("perfect Dcache", &dc_b),
        ("perfect bpred & Dcache", &both_b),
    ] {
        table.row(vec![
            String::new(),
            name.into(),
            format!("{:.2}", r.cpi()),
            format!("{:.2}", base_b.cpi() - r.cpi()),
        ]);
    }
    println!("{table}");

    let db_bp = base_b.cpi() - bp.cpi();
    let db_dc = base_b.cpi() - dc_b.cpi();
    let db_both = base_b.cpi() - both_b.cpi();
    let bdw_overlap = db_both < db_bp + db_dc;

    println!("KNL: d(ALU)={d_alu:.3} d(D$)={d_dc:.3} d(both)={d_both:.3} sum={:.3} → {}",
        d_alu + d_dc,
        if knl_hidden { "HIDDEN stalls (combined > sum), as in the paper" } else { "no hidden-stall effect" });
    println!("BDW: d(bpred)={db_bp:.3} d(D$)={db_dc:.3} d(both)={db_both:.3} sum={:.3} → {}",
        db_bp + db_dc,
        if bdw_overlap { "OVERLAPPING stalls (combined < sum), as in the paper" } else { "no overlap effect" });
}
