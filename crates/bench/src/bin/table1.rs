//! **Table I** — CPI components by idealizing structures.
//!
//! Reproduces the paper's motivating experiment: `mcf` on KNL shows that
//! ALU stalls are *hidden* behind D-cache misses (the combined
//! idealization gains more than the sum of the parts), and `mcf` on BDW
//! shows that branch-predictor and D-cache penalties *overlap* (the
//! combination gains less than the sum). Either way, a single additive
//! CPI stack cannot represent both.

use mstacks_bench::{sim_uops, Sweep};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::TextTable;
use mstacks_workloads::spec;

fn main() {
    let uops = sim_uops();
    let w = spec::mcf();
    let knl = CoreConfig::knights_landing();
    let bdw = CoreConfig::broadwell();

    println!("Table I: CPI components by idealizing structures ({uops} uops)\n");

    // All eight simulations in one parallel sweep: mcf/KNL with the ALU
    // and D-cache idealizations, mcf/BDW with the bpred and D-cache ones.
    let none = IdealFlags::none();
    let r = Sweep::new()
        .point(w.clone(), knl.clone(), none, uops)
        .point(w.clone(), knl.clone(), none.with_single_cycle_alu(), uops)
        .point(w.clone(), knl.clone(), none.with_perfect_dcache(), uops)
        .point(
            w.clone(),
            knl.clone(),
            none.with_perfect_dcache().with_single_cycle_alu(),
            uops,
        )
        .point(w.clone(), bdw.clone(), none, uops)
        .point(w.clone(), bdw.clone(), none.with_perfect_bpred(), uops)
        .point(w.clone(), bdw.clone(), none.with_perfect_dcache(), uops)
        .point(
            w.clone(),
            bdw.clone(),
            none.with_perfect_bpred().with_perfect_dcache(),
            uops,
        )
        .run();
    let cpi = |i: usize| r[i].report.cpi();

    let mut table = TextTable::new(vec![
        "App & core".into(),
        "Config".into(),
        "CPI".into(),
        "Diff. CPI".into(),
    ]);

    // --- mcf on KNL: hidden ALU stalls --------------------------------
    table.row(vec![
        "mcf on KNL".into(),
        "All real".into(),
        format!("{:.2}", cpi(0)),
        String::new(),
    ]);
    for (name, i) in [
        ("1-cycle ALU", 1),
        ("perfect Dcache", 2),
        ("perf. Dcache & 1-cyc. ALU", 3),
    ] {
        table.row(vec![
            String::new(),
            name.into(),
            format!("{:.2}", cpi(i)),
            format!("{:.2}", cpi(0) - cpi(i)),
        ]);
    }
    let d_alu = cpi(0) - cpi(1);
    let d_dc = cpi(0) - cpi(2);
    let d_both = cpi(0) - cpi(3);
    let knl_hidden = d_both > d_alu + d_dc;

    // --- mcf on BDW: overlapping bpred + Dcache ------------------------
    table.row(vec![
        "mcf on BDW".into(),
        "All real".into(),
        format!("{:.2}", cpi(4)),
        String::new(),
    ]);
    for (name, i) in [
        ("perfect bpred", 5),
        ("perfect Dcache", 6),
        ("perfect bpred & Dcache", 7),
    ] {
        table.row(vec![
            String::new(),
            name.into(),
            format!("{:.2}", cpi(i)),
            format!("{:.2}", cpi(4) - cpi(i)),
        ]);
    }
    println!("{table}");

    let db_bp = cpi(4) - cpi(5);
    let db_dc = cpi(4) - cpi(6);
    let db_both = cpi(4) - cpi(7);
    let bdw_overlap = db_both < db_bp + db_dc;

    println!(
        "KNL: d(ALU)={d_alu:.3} d(D$)={d_dc:.3} d(both)={d_both:.3} sum={:.3} → {}",
        d_alu + d_dc,
        if knl_hidden {
            "HIDDEN stalls (combined > sum), as in the paper"
        } else {
            "no hidden-stall effect"
        }
    );
    println!(
        "BDW: d(bpred)={db_bp:.3} d(D$)={db_dc:.3} d(both)={db_both:.3} sum={:.3} → {}",
        db_bp + db_dc,
        if bdw_overlap {
            "OVERLAPPING stalls (combined < sum), as in the paper"
        } else {
            "no overlap effect"
        }
    );
}
