//! **Figure 4** — relative difference per component between the issue-stage
//! CPI stack and the FLOPS stack for the DeepBench suites on KNL and SKX.
//!
//! Methodology (paper §V-B): normalize both stacks, subtract matching
//! components (FLOPS − CPI), average over each suite. The differences sum
//! to zero per suite. The paper's headline observations:
//!
//! * the FLOPS base component is always *smaller* than the CPI base
//!   (not every slot is an FMA), much more so on KNL (2-wide: *all*
//!   micro-ops would have to be FMAs to close the gap) than on SKX;
//! * sgemm on KNL shows a large positive **memory** difference (jit FMAs
//!   carry memory operands), sgemm on SKX a **dependence** difference
//!   (broadcast feeding register FMAs);
//! * convolution shows large **frontend** differences on both (low VFP
//!   fraction due to indexing overhead).

use mstacks_bench::{par_map, sim_uops};
use mstacks_core::{FlopsComponent, Session};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::TextTable;
use mstacks_workloads::{deepbench, ConvPhase, GemmStyle, RnnCell, Workload};

/// Normalized (FLOPS − issue-CPI) per matched component, for one workload.
/// Components are matched as in the paper: base↔base, frontend↔(icache +
/// bpred + microcode + the non-VFP share), memory↔dcache, depend↔depend;
/// the remainder (mask, non_fma vs alu_lat/other) goes to "other".
#[derive(Debug, Clone, Copy, Default)]
struct Diff {
    base: f64,
    frontend: f64,
    memory: f64,
    depend: f64,
    other: f64,
}

fn diff_of(w: &Workload, cfg: &CoreConfig, uops: u64) -> Diff {
    let r = Session::new(cfg.clone())
        .with_ideal(IdealFlags::none())
        .audit(mstacks_bench::audit_enabled())
        .run(w.trace(uops))
        .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
    let cpi = r.multi.issue.normalized();
    let fl = r.flops.normalized();
    use mstacks_core::Component as C;
    let cpi_base = cpi[C::Base.index()];
    let cpi_fe = cpi[C::Icache.index()] + cpi[C::Bpred.index()] + cpi[C::Microcode.index()];
    let cpi_mem = cpi[C::Dcache.index()] + cpi[C::MemConflict.index()];
    let cpi_dep = cpi[C::Depend.index()];
    let cpi_other = cpi[C::AluLat.index()] + cpi[C::Other.index()];
    let f = |c: FlopsComponent| fl[c.index()];
    Diff {
        base: f(FlopsComponent::Base) - cpi_base,
        frontend: f(FlopsComponent::Frontend) + f(FlopsComponent::NonVfp) - cpi_fe,
        memory: f(FlopsComponent::Memory) - cpi_mem,
        depend: f(FlopsComponent::Depend) - cpi_dep,
        other: f(FlopsComponent::NonFma) + f(FlopsComponent::Mask) - cpi_other,
    }
}

fn average(diffs: &[Diff]) -> Diff {
    let n = diffs.len() as f64;
    let mut a = Diff::default();
    for d in diffs {
        a.base += d.base / n;
        a.frontend += d.frontend / n;
        a.memory += d.memory / n;
        a.depend += d.depend / n;
        a.other += d.other / n;
    }
    a
}

fn main() {
    let uops = sim_uops().min(400_000);
    // Suites: sgemm train, sgemm inference, conv fwd / bwd_f / bwd_d.
    let mut suites: Vec<(String, Vec<Workload>)> = Vec::new();
    for (core_tag, style) in [("knl", GemmStyle::KnlJit), ("skx", GemmStyle::SkxBroadcast)] {
        let lanes = 16;
        let train: Vec<Workload> = deepbench::sgemm_train_configs()
            .into_iter()
            .map(|cfg| Workload::Gemm { cfg, style, lanes })
            .collect();
        let inf: Vec<Workload> = deepbench::sgemm_inference_configs()
            .into_iter()
            .map(|cfg| Workload::Gemm { cfg, style, lanes })
            .collect();
        suites.push((format!("sgemm train ({core_tag})"), train));
        suites.push((format!("sgemm inference ({core_tag})"), inf));
        for phase in [
            ConvPhase::Forward,
            ConvPhase::BackwardFilter,
            ConvPhase::BackwardData,
        ] {
            let ws: Vec<Workload> = deepbench::conv_configs()
                .into_iter()
                .map(|cfg| Workload::Conv { cfg, phase, lanes })
                .collect();
            suites.push((format!("conv {phase} ({core_tag})"), ws));
        }
        // Extension beyond the paper: DeepBench's recurrent kernels.
        for cell in [RnnCell::Lstm, RnnCell::Gru] {
            let ws: Vec<Workload> = deepbench::rnn_configs()
                .into_iter()
                .map(|cfg| Workload::Rnn { cfg, cell, lanes })
                .collect();
            suites.push((format!("{cell}* ({core_tag})"), ws));
        }
    }

    let total_cfgs: usize = suites.iter().map(|(_, ws)| ws.len()).sum();
    println!(
        "Figure 4: normalized (FLOPS − issue CPI) component differences per suite\n\
         ({} configurations, {} uops each; paper ran 235 GEMM + 282 conv — scaled subset)\n",
        total_cfgs, uops
    );

    let mut table = TextTable::new(vec![
        "suite".into(),
        "base".into(),
        "frontend".into(),
        "memory".into(),
        "depend".into(),
        "other".into(),
        "sum".into(),
    ]);

    for (name, ws) in &suites {
        let cfg = if name.contains("knl") {
            CoreConfig::knights_landing()
        } else {
            CoreConfig::skylake_server()
        };
        // Fan out over the shared pool; par_map keeps configuration order,
        // so the float summation in average() is deterministic too.
        let diffs = par_map(ws, |w| diff_of(w, &cfg, uops));
        let avg = average(&diffs);
        let sum = avg.base + avg.frontend + avg.memory + avg.depend + avg.other;
        table.row(vec![
            name.clone(),
            format!("{:+.1}%", avg.base * 100.0),
            format!("{:+.1}%", avg.frontend * 100.0),
            format!("{:+.1}%", avg.memory * 100.0),
            format!("{:+.1}%", avg.depend * 100.0),
            format!("{:+.1}%", avg.other * 100.0),
            format!("{:+.1}%", sum * 100.0),
        ]);
    }
    println!("{table}");
    println!("(* = recurrent-kernel suites: our extension beyond the paper's evaluation)\n");
    println!(
        "Checks vs the paper: FLOPS base < CPI base everywhere, KNL gap > SKX gap for\n\
         sgemm; sgemm-KNL skews to memory, sgemm-SKX to depend; conv suites show large\n\
         frontend differences. Differences per suite sum to ≈0 by construction."
    );
}
