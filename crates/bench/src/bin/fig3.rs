//! **Figure 3** — selected multi-stage CPI stacks before and after making
//! components perfect.
//!
//! Five case studies, each demonstrating one phenomenon:
//!
//! * (a) `mcf`/BDW — bpred and Dcache deltas each fall between their
//!   dispatch and commit components.
//! * (b) `cactus`/BDW — I$↔D$ second-order coupling through the unified
//!   L2: idealizing one cache also shrinks the *other* cache's component;
//!   the dependence component melts when the D-cache is made perfect.
//! * (c) `bwaves`/BDW — the Icache component is *not* realized when the
//!   L1I is idealized, because I-misses were queueing behind prefetch
//!   traffic on the L2 MSHRs.
//! * (d) `povray`/KNL — the Microcode component; ALU and bpred deltas
//!   bracketed by the stacks.
//! * (e) `imagick`/KNL — the issue stack's unique dependence knowledge:
//!   it blames multi-cycle ALU latency where dispatch/commit see generic
//!   dependences.
//!
//! Each case study is one [`Sweep`]: the baseline plus its idealized
//! variants run in parallel, results in declaration order.

use mstacks_bench::{sim_uops, Sweep, SweepResult};
use mstacks_core::{Component, SimReport, COMPONENTS};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::TextTable;
use mstacks_workloads::{spec, Workload};

fn stack_table(title: &str, reports: &[(&str, &SimReport)]) {
    println!("--- {title} ---");
    let mut headers = vec!["component".to_string()];
    for (name, _) in reports {
        for stage in ["disp", "issue", "commit"] {
            headers.push(format!("{name}:{stage}"));
        }
    }
    let mut t = TextTable::new(headers);
    for c in COMPONENTS {
        let mut cells = vec![c.label().to_string()];
        let mut any = false;
        for (_, r) in reports {
            for s in r.multi.stacks() {
                let v = s.cpi_of(c);
                if v >= 5e-4 {
                    any = true;
                }
                cells.push(format!("{v:.3}"));
            }
        }
        if any {
            t.row(cells);
        }
    }
    let mut cells = vec!["TOTAL".to_string()];
    for (_, r) in reports {
        for s in r.multi.stacks() {
            cells.push(format!("{:.3}", s.total_cpi()));
        }
    }
    t.row(cells);
    println!("{t}");
}

fn bracket_line(base: &SimReport, comp: Component, delta: f64, label: &str) {
    let (lo, hi) = base.multi.bounds(comp);
    println!(
        "  d(CPI) from {label}: {delta:+.3}; {} bounds [{lo:.3}, {hi:.3}] → {}",
        comp.label(),
        if base.multi.contains(comp, delta) {
            "WITHIN bounds"
        } else if delta > hi {
            "above (second-order effect)"
        } else {
            "below (second-order effect)"
        }
    );
}

/// Runs the baseline plus every idealized variant as one parallel sweep
/// and returns the results in declaration order (baseline first).
fn run_case(w: &Workload, cfg: &CoreConfig, ideals: &[IdealFlags], uops: u64) -> Vec<SweepResult> {
    let mut sweep = Sweep::new().point(w.clone(), cfg.clone(), IdealFlags::none(), uops);
    for &ideal in ideals {
        sweep = sweep.point(w.clone(), cfg.clone(), ideal, uops);
    }
    sweep.run()
}

fn case(
    title: &str,
    w: &Workload,
    cfg: &CoreConfig,
    ideals: &[(&str, IdealFlags, Option<Component>)],
    uops: u64,
) {
    let flags: Vec<IdealFlags> = ideals.iter().map(|(_, i, _)| *i).collect();
    let results = run_case(w, cfg, &flags, uops);
    let base = &results[0].report;
    let mut refs: Vec<(&str, &SimReport)> = vec![("base", base)];
    for ((name, _, _), r) in ideals.iter().zip(&results[1..]) {
        refs.push((name, &r.report));
    }
    stack_table(title, &refs);
    for (i, (name, _, comp)) in ideals.iter().enumerate() {
        if let Some(c) = comp {
            bracket_line(base, *c, base.cpi() - results[i + 1].report.cpi(), name);
        }
    }
    println!();
}

fn main() {
    let uops = sim_uops();
    println!("Figure 3: multi-stage CPI stacks before/after idealization ({uops} uops)\n");
    let bdw = CoreConfig::broadwell();
    let knl = CoreConfig::knights_landing();

    // (a) mcf on BDW.
    case(
        "(a) mcf on BDW",
        &spec::mcf(),
        &bdw,
        &[
            (
                "perf-bpred",
                IdealFlags::none().with_perfect_bpred(),
                Some(Component::Bpred),
            ),
            (
                "perf-D$",
                IdealFlags::none().with_perfect_dcache(),
                Some(Component::Dcache),
            ),
        ],
        uops,
    );

    // (b) cactus on BDW: I↔D coupling through the unified L2.
    let cache_ideals = [
        IdealFlags::none().with_perfect_icache(),
        IdealFlags::none().with_perfect_dcache(),
    ];
    let r = run_case(&spec::cactus(), &bdw, &cache_ideals, uops);
    let (base, pi, pd) = (&r[0].report, &r[1].report, &r[2].report);
    stack_table(
        "(b) cactus on BDW",
        &[("base", base), ("perf-I$", pi), ("perf-D$", pd)],
    );
    bracket_line(base, Component::Icache, base.cpi() - pi.cpi(), "perf-I$");
    bracket_line(base, Component::Dcache, base.cpi() - pd.cpi(), "perf-D$");
    println!(
        "  coupling: perfect I$ changes the *Dcache* commit component {:.3} → {:.3};\n\
         \x20           perfect D$ changes the *Icache* dispatch component {:.3} → {:.3}",
        base.multi.commit.cpi_of(Component::Dcache),
        pi.multi.commit.cpi_of(Component::Dcache),
        base.multi.dispatch.cpi_of(Component::Icache),
        pd.multi.dispatch.cpi_of(Component::Icache),
    );
    println!(
        "  depend component under perfect D$: {:.3} → {:.3} (chains drain with the misses)\n",
        base.multi.issue.cpi_of(Component::Depend),
        pd.multi.issue.cpi_of(Component::Depend),
    );

    // (c) bwaves on BDW: unrealized Icache component.
    let r = run_case(&spec::bwaves(), &bdw, &cache_ideals, uops);
    let (base, pi, pd) = (&r[0].report, &r[1].report, &r[2].report);
    stack_table(
        "(c) bwaves on BDW",
        &[("base", base), ("perf-I$", pi), ("perf-D$", pd)],
    );
    bracket_line(base, Component::Icache, base.cpi() - pi.cpi(), "perf-I$");
    println!(
        "  L2-MSHR wait cycles: base {}, perfect-I$ {} — I-misses queue behind prefetches;",
        base.result.mem.l2_mshr_wait_cycles, pi.result.mem.l2_mshr_wait_cycles
    );
    println!(
        "  perfect D$ removes the prefetch triggers: CPI {:.3} → {:.3} (ideal {:.2})\n",
        base.cpi(),
        pd.cpi(),
        1.0 / f64::from(bdw.accounting_width())
    );

    // (d) povray on KNL: microcode component + ALU/bpred brackets.
    case(
        "(d) povray on KNL",
        &spec::povray(),
        &knl,
        &[
            (
                "ALU-1",
                IdealFlags::none().with_single_cycle_alu(),
                Some(Component::AluLat),
            ),
            (
                "perf-bpred",
                IdealFlags::none().with_perfect_bpred(),
                Some(Component::Bpred),
            ),
        ],
        uops,
    );

    // (e) imagick on KNL: issue-stage dependence knowledge.
    let r = run_case(
        &spec::imagick(),
        &knl,
        &[IdealFlags::none().with_single_cycle_alu()],
        uops,
    );
    let (base, alu1) = (&r[0].report, &r[1].report);
    stack_table("(e) imagick on KNL", &[("base", base), ("ALU-1", alu1)]);
    bracket_line(base, Component::AluLat, base.cpi() - alu1.cpi(), "ALU-1");
    println!(
        "  issue blames alu_lat {:.3} (vs depend {:.3}); dispatch/commit depend: {:.3}/{:.3}",
        base.multi.issue.cpi_of(Component::AluLat),
        base.multi.issue.cpi_of(Component::Depend),
        base.multi.dispatch.cpi_of(Component::Depend),
        base.multi.commit.cpi_of(Component::Depend),
    );
}
