//! **Figure 5** — IPC stack and FLOPS stack for one convolution training
//! forward configuration on SKX, without and with a perfect D-cache.
//!
//! The paper's point: the IPC can be near-ideal while the achieved FLOPS
//! sits far below peak — and the FLOPS stack names the reasons (too few
//! VFP instructions, VFP waiting on memory, dependences). Making the
//! D-cache perfect raises both stacks a little; in the new FLOPS stack the
//! memory component's place is taken by frontend and dependence components.

use mstacks_bench::{sim_uops, Sweep};
use mstacks_core::{Component, FlopsComponent, SimReport, COMPONENTS, FLOPS_COMPONENTS};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::render::flops_stack_lines;
use mstacks_workloads::{deepbench, ConvPhase, Workload};

fn show(r: &SimReport, cfg: &CoreConfig, label: &str) {
    let max_ipc = f64::from(cfg.accounting_width());
    println!(
        "--- {label}: IPC {:.2} / {max_ipc:.0}, {:.1} / {:.1} GFLOPS ---",
        r.result.ipc(),
        r.gflops(cfg.freq_ghz),
        cfg.peak_gflops()
    );
    let ipc = r.multi.issue.ipc_components(max_ipc);
    println!("IPC stack (issue-stage counters, scaled to instructions/cycle):");
    for c in COMPONENTS {
        let v = ipc[c.index()];
        if v > 0.004 {
            println!("  {:<12} {:>6.2}", c.label(), v);
        }
    }
    print!("{}", flops_stack_lines(&r.flops, cfg.freq_ghz, 36));
    println!();
}

fn main() {
    let uops = sim_uops();
    let cfg = CoreConfig::skylake_server();
    // One representative conv-train layer, forward phase, as in the paper.
    let layer = deepbench::conv_configs()[2];
    let w = Workload::Conv {
        cfg: layer,
        phase: ConvPhase::Forward,
        lanes: 16,
    };
    println!(
        "Figure 5: IPC and FLOPS stacks for {} on SKX ({} uops), base vs perfect D$\n",
        w.name(),
        uops
    );
    let mut r = Sweep::product(
        std::slice::from_ref(&w),
        std::slice::from_ref(&cfg),
        &[IdealFlags::none(), IdealFlags::none().with_perfect_dcache()],
        uops,
    )
    .run();
    let pd = r.pop().expect("two sweep results").report;
    let base = r.pop().expect("two sweep results").report;
    show(&base, &cfg, "all real");
    show(&pd, &cfg, "perfect Dcache");

    // Headline relations the paper reads off this figure.
    let ipc_frac = base.result.ipc() / f64::from(cfg.accounting_width());
    let flops_frac = base.gflops(cfg.freq_ghz) / cfg.peak_gflops();
    println!("checks:");
    println!(
        "  IPC at {:.0}% of peak while FLOPS at {:.0}% of peak → the gap only the\n\
         \x20 FLOPS stack explains",
        ipc_frac * 100.0,
        flops_frac * 100.0
    );
    let mem_f = base.flops.normalized()[FlopsComponent::Memory.index()];
    let mem_c = base.multi.issue.normalized()[Component::Dcache.index()];
    println!(
        "  FLOPS memory share {:.1}% vs CPI memory share {:.1}% → {}",
        mem_f * 100.0,
        mem_c * 100.0,
        if mem_f > mem_c {
            "FLOPS gains more from ideal memory (as in the paper)"
        } else {
            "(paper expects the FLOPS share to be larger)"
        }
    );
    let fe_grow = pd.flops.normalized()[FlopsComponent::Frontend.index()]
        - base.flops.normalized()[FlopsComponent::Frontend.index()];
    let dep_grow = pd.flops.normalized()[FlopsComponent::Depend.index()]
        - base.flops.normalized()[FlopsComponent::Depend.index()];
    println!(
        "  under perfect D$: frontend {:+.1}%, depend {:+.1}% → {}",
        fe_grow * 100.0,
        dep_grow * 100.0,
        if fe_grow > 0.0 || dep_grow > 0.0 {
            "stalls migrate to frontend/depend (as in the paper)"
        } else {
            "(paper expects these components to grow)"
        }
    );
    let d_ipc = pd.result.ipc() - base.result.ipc();
    let d_fl = (pd.gflops(cfg.freq_ghz) - base.gflops(cfg.freq_ghz)) / cfg.peak_gflops()
        * f64::from(cfg.accounting_width());
    println!(
        "  d(IPC) {:+.2} vs d(FLOPS)/peak×width {:+.2} — both improve together",
        d_ipc, d_fl
    );
    let _ = FLOPS_COMPONENTS;
}
