//! Development probe: prints the multi-stage CPI stacks and idealization
//! deltas for one profile on one core. Not part of the paper's tables —
//! useful for sanity-checking the model.
//!
//! Usage: `probe [workload] [core] [uops]`

use mstacks_bench::{run, sim_uops};
use mstacks_core::COMPONENTS;
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::render::cpi_stack_lines;
use mstacks_workloads::spec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wname = args.get(1).map(String::as_str).unwrap_or("mcf");
    let cname = args.get(2).map(String::as_str).unwrap_or("bdw");
    let uops = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(sim_uops);

    let w = spec::by_name(wname).unwrap_or_else(|| panic!("unknown workload {wname}"));
    let cfg = match cname {
        "bdw" => CoreConfig::broadwell(),
        "knl" => CoreConfig::knights_landing(),
        "skx" => CoreConfig::skylake_server(),
        other => panic!("unknown core {other}"),
    };

    let base = run(&w, &cfg, IdealFlags::none(), uops);
    println!(
        "== {} on {} ({} uops, {} cycles, CPI {:.3}) ==",
        wname,
        cname,
        base.result.committed_uops,
        base.result.cycles,
        base.cpi()
    );
    println!(
        "mem: L1I mr {:.3} L1D mr {:.3} L2 mr {:.3} | bpred mpki {:.2} | l2 mshr wait {}",
        base.result.mem.l1i.miss_ratio(),
        base.result.mem.l1d.miss_ratio(),
        base.result.mem.l2.miss_ratio(),
        base.result.frontend.mispredicts as f64 / (base.result.committed_uops as f64 / 1000.0),
        base.result.mem.l2_mshr_wait_cycles,
    );
    for s in base.multi.stacks() {
        print!("{}", cpi_stack_lines(s, 40));
    }

    println!("\n-- idealization deltas vs stack bounds --");
    for (comp, ideal) in mstacks_bench::single_idealizations() {
        let r = run(&w, &cfg, ideal, uops);
        let delta = base.cpi() - r.cpi();
        let (lo, hi) = base.multi.bounds(comp);
        let inside = base.multi.contains(comp, delta);
        println!(
            "{:<22} dCPI {:+.3}  bounds [{:.3}, {:.3}]  {}",
            ideal.to_string(),
            delta,
            lo,
            hi,
            if inside { "WITHIN" } else { "outside" }
        );
    }
    for c in COMPONENTS {
        let (lo, hi) = base.multi.bounds(c);
        if hi > 0.005 {
            println!("  comp {:<12} [{:.3}, {:.3}]", c.label(), lo, hi);
        }
    }
}
