//! **§III-B study** — how close do the hardware-implementable wrong-path
//! discrimination schemes come to the functional-first ground truth?
//!
//! The paper claims the simple retire-slot correction "will account for
//! the largest part of the branch miss component", and positions the
//! speculative-counter scheme as the more accurate (simulator-only)
//! option. This binary quantifies both: per benchmark, the dispatch-stage
//! branch component under each scheme, with the ground truth as reference.

use mstacks_bench::sim_uops;
use mstacks_core::{BadSpecMode, Component, Session};
use mstacks_model::CoreConfig;
use mstacks_stats::TextTable;
use mstacks_workloads::spec;

fn main() {
    let uops = sim_uops().min(400_000);
    let cfg = CoreConfig::broadwell();
    println!(
        "Bad-speculation schemes (paper §III-B): dispatch-stage bpred component\n\
         per scheme, ground truth as reference ({} uops, BDW)\n",
        uops
    );
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "ground truth".into(),
        "simple".into(),
        "err%".into(),
        "speculative".into(),
        "err%".into(),
    ]);
    let mut simple_errs = Vec::new();
    let mut spec_errs = Vec::new();
    for w in spec::all() {
        let run = |mode: BadSpecMode| {
            Session::new(cfg.clone())
                .with_badspec(mode)
                .audit(mstacks_bench::audit_enabled())
                .run(w.trace(uops))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()))
        };
        let gt = run(BadSpecMode::GroundTruth);
        let g = gt.multi.dispatch.cpi_of(Component::Bpred);
        if g < 0.02 {
            continue; // negligible branch component — comparison is noise
        }
        let simple = run(BadSpecMode::SimpleRetireSlots)
            .multi
            .dispatch
            .cpi_of(Component::Bpred);
        let specc = run(BadSpecMode::SpeculativeCounters)
            .multi
            .dispatch
            .cpi_of(Component::Bpred);
        let es = (simple - g) / g * 100.0;
        let ec = (specc - g) / g * 100.0;
        simple_errs.push(es.abs());
        spec_errs.push(ec.abs());
        t.row(vec![
            w.name(),
            format!("{g:.3}"),
            format!("{simple:.3}"),
            format!("{es:+.0}%"),
            format!("{specc:.3}"),
            format!("{ec:+.0}%"),
        ]);
    }
    println!("{t}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean |error| vs ground truth: simple {:.0}%, speculative {:.0}% — the simple\n\
         scheme captures \"the largest part of the branch miss component\" (paper\n\
         §III-B); the speculative counters track it more closely.",
        mean(&simple_errs),
        mean(&spec_errs)
    );
}
