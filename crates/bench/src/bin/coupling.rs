//! **Coupling matrix** — Table I generalized: for every *pair* of stall
//! sources, compare the combined idealization against the sum of the
//! individual ones. Super-additive pairs mean one penalty *hides* behind
//! the other (paper's mcf/KNL ALU-behind-Dcache); sub-additive pairs
//! *overlap* (mcf/BDW bpred-with-Dcache); additive pairs are independent.
//!
//! This is exactly the paper's argument for multi-stage stacks made
//! systematic: a single additive stack cannot represent either regime.

use mstacks_bench::{run, sim_uops};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::TextTable;
use mstacks_workloads::spec;

fn ideal_of(tag: char) -> IdealFlags {
    match tag {
        'i' => IdealFlags::none().with_perfect_icache(),
        'd' => IdealFlags::none().with_perfect_dcache(),
        'b' => IdealFlags::none().with_perfect_bpred(),
        'a' => IdealFlags::none().with_single_cycle_alu(),
        _ => unreachable!("known tags only"),
    }
}

fn combine(x: IdealFlags, y: IdealFlags) -> IdealFlags {
    IdealFlags {
        perfect_icache: x.perfect_icache || y.perfect_icache,
        perfect_dcache: x.perfect_dcache || y.perfect_dcache,
        perfect_bpred: x.perfect_bpred || y.perfect_bpred,
        single_cycle_alu: x.single_cycle_alu || y.single_cycle_alu,
    }
}

fn name_of(tag: char) -> &'static str {
    match tag {
        'i' => "icache",
        'd' => "dcache",
        'b' => "bpred",
        'a' => "alu",
        _ => unreachable!("known tags only"),
    }
}

fn main() {
    let uops = sim_uops().min(300_000);
    println!("Coupling matrix (Table I generalized): d(A+B) vs d(A)+d(B) per pair ({uops} uops)\n");
    for (wname, core) in [
        ("mcf", CoreConfig::broadwell()),
        ("mcf", CoreConfig::knights_landing()),
        ("cactus", CoreConfig::broadwell()),
        ("povray", CoreConfig::knights_landing()),
    ] {
        let w = spec::by_name(wname).expect("known profile");
        let base = run(&w, &core, IdealFlags::none(), uops);
        let tags = ['i', 'd', 'b', 'a'];
        let singles: Vec<f64> = tags
            .iter()
            .map(|&t| base.cpi() - run(&w, &core, ideal_of(t), uops).cpi())
            .collect();

        let mut t = TextTable::new(vec![
            "pair".into(),
            "d(A)".into(),
            "d(B)".into(),
            "d(A)+d(B)".into(),
            "d(A+B)".into(),
            "regime".into(),
        ]);
        for i in 0..tags.len() {
            for j in (i + 1)..tags.len() {
                // Skip pairs where neither side matters.
                if singles[i].abs() < 0.02 && singles[j].abs() < 0.02 {
                    continue;
                }
                let both = base.cpi()
                    - run(
                        &w,
                        &core,
                        combine(ideal_of(tags[i]), ideal_of(tags[j])),
                        uops,
                    )
                    .cpi();
                let sum = singles[i] + singles[j];
                let regime = if both > sum * 1.05 + 0.01 {
                    "HIDDEN (super-additive)"
                } else if both < sum * 0.95 - 0.01 {
                    "OVERLAP (sub-additive)"
                } else {
                    "additive"
                };
                t.row(vec![
                    format!("{}+{}", name_of(tags[i]), name_of(tags[j])),
                    format!("{:+.3}", singles[i]),
                    format!("{:+.3}", singles[j]),
                    format!("{sum:+.3}"),
                    format!("{both:+.3}"),
                    regime.into(),
                ]);
            }
        }
        println!(
            "=== {} on {} (baseline CPI {:.3}) ===",
            wname,
            core.name,
            base.cpi()
        );
        println!("{t}");
    }
    println!(
        "Any non-additive row is a case no single CPI stack can represent (paper §I):\n\
         the multi-stage bounds absorb both regimes."
    );
}
