//! Differential + metamorphic verification sweep.
//!
//! Part 1 — **differential oracle**: every SPEC-like profile and a set of
//! DeepBench kernels run on all five shipped cores (BDW/KNL/SKX plus the
//! table-only zen/atom) through two independent models — the cycle-level
//! engine and the analytical first-order oracle (`mstacks-oracle`). Each
//! CPI component must agree within its tolerance band (DESIGN.md §9), and
//! the OSACA-style static port-pressure bound must bracket the engine's
//! issue-stage CPI; any divergence is an attribution bug in one of the
//! two code paths. The cores are loaded from their shipped `.core`
//! tables, so the sweep also exercises the declarative table path.
//!
//! Part 2 — **metamorphic fuzz**: a seeded fuzzer generates ~100
//! randomized valid core configurations (`CoreConfig::fuzz`) and asserts
//! the paper's structural invariants on simulator output: conservation,
//! stage-total consistency, idealization monotonicity, FLOPS ≤ peak, and
//! SMT per-thread aggregation — plus a table round-trip (dump ⇒ parse ⇒
//! identical config) per fuzzed core. Same seed ⇒ same configs ⇒ same
//! verdicts.
//!
//! Environment: `MSTACKS_UOPS` scales the differential runs,
//! `MSTACKS_FUZZ_CONFIGS` (default 100) and `MSTACKS_FUZZ_SEED` (default
//! 0x00C0FFEE) control the fuzz fleet. Exits non-zero on any failure.

use mstacks_bench::{par_map, sim_uops};
use mstacks_core::Session;
use mstacks_model::rng::SmallRng;
use mstacks_model::{coretab, CoreConfig, IdealFlags, IDEAL_KINDS};
use mstacks_oracle::{
    crosscheck_static, invariants, predict, static_port_bound, ToleranceBands, WorkloadSummary,
};
use mstacks_workloads::{spec, ConvPhase, GemmStyle, Workload};
use std::process::ExitCode;

fn deepbench_kernels() -> Vec<Workload> {
    let gemm = mstacks_workloads::deepbench::sgemm_train_configs()[0];
    let conv = mstacks_workloads::deepbench::conv_configs()[0];
    vec![
        Workload::Gemm {
            cfg: gemm,
            style: GemmStyle::KnlJit,
            lanes: 16,
        },
        Workload::Gemm {
            cfg: gemm,
            style: GemmStyle::SkxBroadcast,
            lanes: 16,
        },
        Workload::Conv {
            cfg: conv,
            phase: ConvPhase::Forward,
            lanes: 16,
        },
    ]
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let uops = sim_uops().min(120_000);
    let bands = ToleranceBands::default();
    // Every core comes from its shipped declarative table — the three
    // presets (bit-identical to the constructors) and the two table-only
    // machines. No construction path escapes the sweep.
    let cores: Vec<CoreConfig> = coretab::BUILTIN_NAMES
        .iter()
        .map(|name| coretab::builtin(name).expect("shipped table"))
        .collect();

    // ---- Part 1: differential oracle sweep -----------------------------
    let mut workloads = spec::all();
    workloads.extend(deepbench_kernels());
    println!(
        "crosscheck: {} workloads × {} cores, {uops} uops per run…\n",
        workloads.len(),
        cores.len()
    );

    let points: Vec<(Workload, CoreConfig)> = workloads
        .iter()
        .flat_map(|w| cores.iter().map(move |c| (w.clone(), c.clone())))
        .collect();
    let results = par_map(&points, |(w, cfg)| {
        let summary = WorkloadSummary::profile(cfg, IdealFlags::none(), w.trace(uops));
        let prediction = predict(cfg, &summary);
        let bound = static_port_bound(cfg, IdealFlags::none(), &summary);
        let report = Session::new(cfg.clone())
            .run(w.trace(uops))
            .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), cfg.name));
        let cmp = crosscheck_static(&prediction, &bound, &report.multi, &bands);
        (w.name(), cfg.name.clone(), cmp)
    });

    let mut failures = 0u32;
    let mut worst: f64 = 0.0;
    for (wname, cname, cmp) in &results {
        worst = worst.max(cmp.worst_gap());
        if cmp.pass() {
            println!("PASS  {wname} on {cname}");
        } else {
            failures += 1;
            println!("FAIL  {wname} on {cname}");
            for c in cmp.failures() {
                println!("      {c}");
            }
        }
    }
    println!(
        "\ndifferential: {}/{} agree (worst residual gap {worst:.4} CPI)\n",
        results.len() as u32 - failures,
        results.len()
    );

    // ---- Part 2: metamorphic fuzz fleet --------------------------------
    let n_configs = env_u64("MSTACKS_FUZZ_CONFIGS", 100);
    let seed = env_u64("MSTACKS_FUZZ_SEED", 0x00C0_FFEE);
    let fuzz_uops = uops.min(20_000);
    println!("fuzz: {n_configs} seeded configs (seed {seed:#x}), {fuzz_uops} uops per run…");

    let mut rng = SmallRng::seed_from_u64(seed);
    let fleet: Vec<(usize, CoreConfig)> = (0..n_configs as usize)
        .map(|i| (i, CoreConfig::fuzz(&mut rng)))
        .collect();
    let profiles = spec::all();

    let violations: Vec<Vec<String>> = par_map(&fleet, |(i, cfg)| {
        let w = &profiles[i % profiles.len()];
        let label = format!("fuzz#{i}:{}", w.name());
        let mut v = Vec::new();

        // Table round-trip: dumping any valid config as a `.core` table
        // and parsing it back must reproduce the config exactly.
        if let Err(e) = coretab::roundtrip(cfg) {
            v.push(format!("{label}: table round-trip failed: {e}"));
        }

        let base = match Session::new(cfg.clone()).run(w.trace(fuzz_uops)) {
            Ok(r) => r,
            Err(e) => return vec![format!("{label}: baseline run failed: {e}")],
        };
        v.extend(invariants::check_report(&label, &base, cfg));

        // Each config exercises one idealization's monotonicity; the
        // fleet as a whole covers all four kinds on all profiles.
        let kind = IDEAL_KINDS[i % IDEAL_KINDS.len()];
        match Session::new(cfg.clone())
            .with_ideal(IdealFlags::none().with(kind))
            .run(w.trace(fuzz_uops))
        {
            Ok(ideal) => {
                v.extend(invariants::check_report(
                    &format!("{label}+{kind}"),
                    &ideal,
                    cfg,
                ));
                v.extend(invariants::check_idealization_monotone(
                    &label, kind, &base, &ideal,
                ));
            }
            Err(e) => v.push(format!("{label}: {kind} run failed: {e}")),
        }

        // Every fifth config additionally runs a two-thread SMT session.
        if i % 5 == 0 {
            let w2 = &profiles[(i + 7) % profiles.len()];
            match Session::new(cfg.clone())
                .run_threads(vec![w.trace(fuzz_uops / 2), w2.trace(fuzz_uops / 2)])
            {
                Ok(s) => v.extend(invariants::check_session(&format!("{label}+smt"), &s, cfg)),
                Err(e) => v.push(format!("{label}: smt run failed: {e}")),
            }
        }
        v
    });

    let fuzz_violations: Vec<&String> = violations.iter().flatten().collect();
    for m in &fuzz_violations {
        println!("VIOLATION  {m}");
    }
    println!(
        "fuzz: {}/{n_configs} configs uphold all invariants\n",
        n_configs - violations.iter().filter(|v| !v.is_empty()).count() as u64
    );

    if failures == 0 && fuzz_violations.is_empty() {
        println!("crosscheck: all checks pass");
        ExitCode::SUCCESS
    } else {
        println!(
            "crosscheck: {failures} differential failures, {} invariant violations",
            fuzz_violations.len()
        );
        ExitCode::FAILURE
    }
}
