//! **Figure 1** — example CPI stacks at dispatch, issue and commit.
//!
//! The paper's opening figure shows the same execution producing three
//! different-looking stacks depending on the accounting stage. We use the
//! `mcf` profile on the Broadwell core, as in the paper's running example.

use mstacks_bench::{sim_uops, Sweep};
use mstacks_core::COMPONENTS;
use mstacks_model::{coretab, IdealFlags};
use mstacks_stats::{render::cpi_stack_lines, TextTable};
use mstacks_workloads::spec;

fn main() {
    let uops = sim_uops();
    let w = spec::mcf();
    // Loaded from the shipped declarative table (not the constructor), so
    // the perf-smoke CI job also covers table-loading startup cost.
    let cfg = coretab::builtin("bdw").expect("shipped bdw table");
    let r = Sweep::new()
        .point(w.clone(), cfg.clone(), IdealFlags::none(), uops)
        .run()
        .remove(0)
        .report;

    println!(
        "Figure 1: CPI stacks at dispatch, issue and commit — {} on {} ({} uops)\n",
        w.name(),
        cfg.name,
        uops
    );
    for s in r.multi.stacks() {
        println!("{}", cpi_stack_lines(s, 44));
    }

    let fetch = r.multi.fetch.as_ref().expect("fetch stack present");
    let mut t = TextTable::new(vec![
        "component".into(),
        "fetch*".into(),
        "dispatch".into(),
        "issue".into(),
        "commit".into(),
    ]);
    for c in COMPONENTS {
        let (f, d, i, cm) = (
            fetch.cpi_of(c),
            r.multi.dispatch.cpi_of(c),
            r.multi.issue.cpi_of(c),
            r.multi.commit.cpi_of(c),
        );
        if f.max(d).max(i).max(cm) < 1e-4 {
            continue;
        }
        t.row(vec![
            c.label().into(),
            format!("{f:.3}"),
            format!("{d:.3}"),
            format!("{i:.3}"),
            format!("{cm:.3}"),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        format!("{:.3}", fetch.total_cpi()),
        format!("{:.3}", r.multi.dispatch.total_cpi()),
        format!("{:.3}", r.multi.issue.total_cpi()),
        format!("{:.3}", r.multi.commit.total_cpi()),
    ]);
    println!("{t}");
    println!(
        "Note the paper's §III-A ordering: frontend components shrink from dispatch\n\
         to commit, backend components grow — the same CPI, three valid stacks.\n\
         (* fetch column: our extension of the paper's \"other stages\" remark.)"
    );
}
