//! One-shot validation of every headline claim — a condensed, pass/fail
//! version of the full experiment suite, suitable for CI or a quick "does
//! the reproduction still hold on this machine?" check.
//!
//! Exits non-zero if any claim fails.

use mstacks_bench::{run, sim_uops};
use mstacks_core::{Component, FlopsComponent, Simulation};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_workloads::{spec, GemmConfig, GemmStyle, Workload};
use std::process::ExitCode;

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name} ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name} ({detail})");
        }
    }
}

fn main() -> ExitCode {
    let uops = sim_uops().min(200_000);
    let mut c = Checker {
        failures: 0,
        checks: 0,
    };
    println!("validating the paper's headline claims ({uops} uops per run)…\n");

    let bdw = CoreConfig::broadwell();
    let knl = CoreConfig::knights_landing();
    let skx = CoreConfig::skylake_server();

    // --- Table I: hidden + overlapping stalls ---------------------------
    let w = spec::mcf();
    let base_k = run(&w, &knl, IdealFlags::none(), uops);
    let alu_k = run(&w, &knl, IdealFlags::none().with_single_cycle_alu(), uops);
    let dc_k = run(&w, &knl, IdealFlags::none().with_perfect_dcache(), uops);
    let both_k = run(
        &w,
        &knl,
        IdealFlags::none().with_perfect_dcache().with_single_cycle_alu(),
        uops,
    );
    let d_alu = base_k.cpi() - alu_k.cpi();
    let d_dc = base_k.cpi() - dc_k.cpi();
    let d_both = base_k.cpi() - both_k.cpi();
    c.check(
        "Table I: hidden stalls on mcf/KNL (d(both) > d(ALU)+d(D$))",
        d_both > d_alu + d_dc,
        format!("{d_both:.3} vs {:.3}", d_alu + d_dc),
    );

    let base_b = run(&w, &bdw, IdealFlags::none(), uops);
    let bp_b = run(&w, &bdw, IdealFlags::none().with_perfect_bpred(), uops);
    let dc_b = run(&w, &bdw, IdealFlags::none().with_perfect_dcache(), uops);
    let both_b = run(
        &w,
        &bdw,
        IdealFlags::none().with_perfect_bpred().with_perfect_dcache(),
        uops,
    );
    let s_bp = base_b.cpi() - bp_b.cpi();
    let s_dc = base_b.cpi() - dc_b.cpi();
    let s_both = base_b.cpi() - both_b.cpi();
    c.check(
        "Table I: overlapping stalls on mcf/BDW (d(both) < d(bpred)+d(D$))",
        s_both < s_bp + s_dc,
        format!("{s_both:.3} vs {:.3}", s_bp + s_dc),
    );

    // --- §III-A ordering ------------------------------------------------
    let r = &base_b.multi;
    c.check(
        "§III-A: frontend components shrink dispatch → issue → commit (mcf/BDW)",
        r.dispatch.cpi_of(Component::Bpred) + 1e-3 >= r.issue.cpi_of(Component::Bpred)
            && r.issue.cpi_of(Component::Bpred) + 1e-3 >= r.commit.cpi_of(Component::Bpred),
        format!(
            "bpred {:.3} / {:.3} / {:.3}",
            r.dispatch.cpi_of(Component::Bpred),
            r.issue.cpi_of(Component::Bpred),
            r.commit.cpi_of(Component::Bpred)
        ),
    );
    c.check(
        "§III-A: backend Dcache component grows toward commit (mcf/BDW)",
        r.commit.cpi_of(Component::Dcache) + 1e-3 >= r.dispatch.cpi_of(Component::Dcache),
        format!(
            "dcache {:.3} → {:.3}",
            r.dispatch.cpi_of(Component::Dcache),
            r.commit.cpi_of(Component::Dcache)
        ),
    );

    // --- Fig. 2 core claim: bounds contain the measured deltas ----------
    let mut within = 0;
    let mut total = 0;
    for w in [spec::mcf(), spec::deepsjeng(), spec::gcc(), spec::omnetpp()] {
        let base = run(&w, &bdw, IdealFlags::none(), uops);
        for (comp, ideal) in mstacks_bench::single_idealizations() {
            let (_, hi) = base.multi.bounds(comp);
            if hi < 0.10 * base.cpi() {
                continue;
            }
            let d = base.cpi() - run(&w, &bdw, ideal, uops).cpi();
            total += 1;
            if base.multi.contains(comp, d) {
                within += 1;
            }
        }
    }
    c.check(
        "Fig. 2: most measured improvements fall within the multi-stage bounds",
        within * 3 >= total * 2, // ≥ 2/3, the paper's "in most of the cases"
        format!("{within}/{total} within"),
    );

    // --- Fig. 4: FLOPS-stack style contrast ------------------------------
    let gemm = |style| Workload::Gemm {
        cfg: GemmConfig {
            m: 128,
            n: 220,
            k: 128,
            train: true,
        },
        style,
        lanes: 16,
    };
    let jit = Simulation::new(knl.clone())
        .run(gemm(GemmStyle::KnlJit).trace(uops.min(60_000)))
        .expect("simulation completes");
    let bcast = Simulation::new(skx.clone())
        .run(gemm(GemmStyle::SkxBroadcast).trace(uops.min(60_000)))
        .expect("simulation completes");
    let jm = jit.flops.normalized()[FlopsComponent::Memory.index()];
    let bd = bcast.flops.normalized()[FlopsComponent::Depend.index()];
    let bm = bcast.flops.normalized()[FlopsComponent::Memory.index()];
    c.check(
        "Fig. 4: KNL-jit sgemm is memory-dominated, SKX-broadcast shifts to depend",
        jm > 0.3 && bd > bm * 0.8,
        format!("knl mem {jm:.2}; skx depend {bd:.2} vs mem {bm:.2}"),
    );

    // --- FLOPS base below CPI base (Fig. 4 constant) ---------------------
    let f = jit.flops.normalized()[FlopsComponent::Base.index()];
    let cb = jit.multi.issue.normalized()[Component::Base.index()];
    c.check(
        "Fig. 4: normalized FLOPS base ≤ CPI base (KNL sgemm)",
        f <= cb + 0.02,
        format!("{f:.2} vs {cb:.2}"),
    );

    // --- Accounting invariants ------------------------------------------
    let inv = Simulation::new(bdw.clone())
        .run(spec::povray().trace(uops.min(60_000)))
        .expect("simulation completes");
    let cycles = inv.result.cycles as f64;
    let sums_ok = inv
        .multi
        .all_stacks()
        .iter()
        .all(|s| (s.total_cycles() - cycles).abs() < 1e-6)
        && (inv.flops.total_cycles() - cycles).abs() < 1e-6;
    c.check(
        "invariant: every stack (fetch/dispatch/issue/commit/FLOPS) sums to the cycle count",
        sums_ok,
        format!("{cycles} cycles"),
    );

    println!(
        "\n{}/{} claims hold",
        c.checks - c.failures,
        c.checks
    );
    if c.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
