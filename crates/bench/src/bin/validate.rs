//! One-shot validation of every headline claim — a condensed, pass/fail
//! version of the full experiment suite, suitable for CI or a quick "does
//! the reproduction still hold on this machine?" check.
//!
//! All simulations fan out over the shared [`Sweep`] executor.
//! Exits non-zero if any claim fails.

use mstacks_bench::{run, sim_uops, Sweep};
use mstacks_core::{Component, FlopsComponent};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_workloads::{spec, GemmConfig, GemmStyle, Workload};
use std::process::ExitCode;

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name} ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name} ({detail})");
        }
    }
}

fn main() -> ExitCode {
    let uops = sim_uops().min(200_000);
    let mut c = Checker {
        failures: 0,
        checks: 0,
    };
    println!("validating the paper's headline claims ({uops} uops per run)…\n");

    let bdw = CoreConfig::broadwell();
    let knl = CoreConfig::knights_landing();
    let skx = CoreConfig::skylake_server();

    // --- Table I: hidden + overlapping stalls ---------------------------
    let w = spec::mcf();
    let none = IdealFlags::none();
    let t1 = Sweep::new()
        .point(w.clone(), knl.clone(), none, uops)
        .point(w.clone(), knl.clone(), none.with_single_cycle_alu(), uops)
        .point(w.clone(), knl.clone(), none.with_perfect_dcache(), uops)
        .point(
            w.clone(),
            knl.clone(),
            none.with_perfect_dcache().with_single_cycle_alu(),
            uops,
        )
        .point(w.clone(), bdw.clone(), none, uops)
        .point(w.clone(), bdw.clone(), none.with_perfect_bpred(), uops)
        .point(w.clone(), bdw.clone(), none.with_perfect_dcache(), uops)
        .point(
            w.clone(),
            bdw.clone(),
            none.with_perfect_bpred().with_perfect_dcache(),
            uops,
        )
        .run();
    let cpi = |i: usize| t1[i].report.cpi();
    let d_alu = cpi(0) - cpi(1);
    let d_dc = cpi(0) - cpi(2);
    let d_both = cpi(0) - cpi(3);
    c.check(
        "Table I: hidden stalls on mcf/KNL (d(both) > d(ALU)+d(D$))",
        d_both > d_alu + d_dc,
        format!("{d_both:.3} vs {:.3}", d_alu + d_dc),
    );

    let s_bp = cpi(4) - cpi(5);
    let s_dc = cpi(4) - cpi(6);
    let s_both = cpi(4) - cpi(7);
    c.check(
        "Table I: overlapping stalls on mcf/BDW (d(both) < d(bpred)+d(D$))",
        s_both < s_bp + s_dc,
        format!("{s_both:.3} vs {:.3}", s_bp + s_dc),
    );

    // --- §III-A ordering ------------------------------------------------
    let r = &t1[4].report.multi;
    c.check(
        "§III-A: frontend components shrink dispatch → issue → commit (mcf/BDW)",
        r.dispatch.cpi_of(Component::Bpred) + 1e-3 >= r.issue.cpi_of(Component::Bpred)
            && r.issue.cpi_of(Component::Bpred) + 1e-3 >= r.commit.cpi_of(Component::Bpred),
        format!(
            "bpred {:.3} / {:.3} / {:.3}",
            r.dispatch.cpi_of(Component::Bpred),
            r.issue.cpi_of(Component::Bpred),
            r.commit.cpi_of(Component::Bpred)
        ),
    );
    c.check(
        "§III-A: backend Dcache component grows toward commit (mcf/BDW)",
        r.commit.cpi_of(Component::Dcache) + 1e-3 >= r.dispatch.cpi_of(Component::Dcache),
        format!(
            "dcache {:.3} → {:.3}",
            r.dispatch.cpi_of(Component::Dcache),
            r.commit.cpi_of(Component::Dcache)
        ),
    );

    // --- Fig. 2 core claim: bounds contain the measured deltas ----------
    // Stage 1: the four baselines in parallel; stage 2: every relevant
    // idealization in parallel.
    let fig2_workloads = [spec::mcf(), spec::deepsjeng(), spec::gcc(), spec::omnetpp()];
    let bases = Sweep::product(
        &fig2_workloads,
        std::slice::from_ref(&bdw),
        &[IdealFlags::none()],
        uops,
    )
    .run();
    let mut idealized = Sweep::new();
    let mut keys: Vec<(usize, Component)> = Vec::new();
    for (i, b) in bases.iter().enumerate() {
        for (comp, ideal) in mstacks_bench::single_idealizations() {
            let (_, hi) = b.report.multi.bounds(comp);
            if hi < 0.10 * b.report.cpi() {
                continue;
            }
            idealized = idealized.point(fig2_workloads[i].clone(), bdw.clone(), ideal, uops);
            keys.push((i, comp));
        }
    }
    let ideal_results = idealized.run();
    let mut within = 0;
    let mut total = 0;
    for (&(i, comp), ir) in keys.iter().zip(&ideal_results) {
        let base = &bases[i].report;
        let d = base.cpi() - ir.report.cpi();
        total += 1;
        if base.multi.contains(comp, d) {
            within += 1;
        }
    }
    c.check(
        "Fig. 2: most measured improvements fall within the multi-stage bounds",
        within * 3 >= total * 2, // ≥ 2/3, the paper's "in most of the cases"
        format!("{within}/{total} within"),
    );

    // --- Fig. 4: FLOPS-stack style contrast ------------------------------
    let gemm = |style| Workload::Gemm {
        cfg: GemmConfig {
            m: 128,
            n: 220,
            k: 128,
            train: true,
        },
        style,
        lanes: 16,
    };
    let gemm_uops = uops.min(60_000);
    let mut g = Sweep::new()
        .point(gemm(GemmStyle::KnlJit), knl.clone(), none, gemm_uops)
        .point(gemm(GemmStyle::SkxBroadcast), skx.clone(), none, gemm_uops)
        .run();
    let bcast = g.pop().expect("two gemm results").report;
    let jit = g.pop().expect("two gemm results").report;
    let jm = jit.flops.normalized()[FlopsComponent::Memory.index()];
    let bd = bcast.flops.normalized()[FlopsComponent::Depend.index()];
    let bm = bcast.flops.normalized()[FlopsComponent::Memory.index()];
    c.check(
        "Fig. 4: KNL-jit sgemm is memory-dominated, SKX-broadcast shifts to depend",
        jm > 0.3 && bd > bm * 0.8,
        format!("knl mem {jm:.2}; skx depend {bd:.2} vs mem {bm:.2}"),
    );

    // --- FLOPS base below CPI base (Fig. 4 constant) ---------------------
    let f = jit.flops.normalized()[FlopsComponent::Base.index()];
    let cb = jit.multi.issue.normalized()[Component::Base.index()];
    c.check(
        "Fig. 4: normalized FLOPS base ≤ CPI base (KNL sgemm)",
        f <= cb + 0.02,
        format!("{f:.2} vs {cb:.2}"),
    );

    // --- Accounting invariants ------------------------------------------
    let inv = run(&spec::povray(), &bdw, none, uops.min(60_000));
    let cycles = inv.result.cycles as f64;
    let sums_ok = inv
        .multi
        .all_stacks()
        .iter()
        .all(|s| (s.total_cycles() - cycles).abs() < 1e-6)
        && (inv.flops.total_cycles() - cycles).abs() < 1e-6;
    c.check(
        "invariant: every stack (fetch/dispatch/issue/commit/FLOPS) sums to the cycle count",
        sums_ok,
        format!("{cycles} cycles"),
    );

    println!("\n{}/{} claims hold", c.checks - c.failures, c.checks);
    if c.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
