//! **Closed-loop load generator for `mstacks serve` (PR 10).**
//!
//! Boots the analysis service in-process on an ephemeral port, then
//! drives it with persistent keep-alive clients through four scenarios:
//!
//! * `cold-miss` — every request is a distinct cache key (fresh µop
//!   count), so each one pays a full detailed simulation;
//! * `warm-hit` — one key, primed once, then hammered: every request
//!   replays cached bytes;
//! * `mixed` — 80% requests from a small primed hot set, 20% fresh
//!   cold keys, the shape an interactive sweep front end produces;
//! * `lattice` — the 16-subset [`IdealFlags`] lattice via `/v1/sweep`,
//!   posted twice; the second pass must ride the cache, so the overall
//!   hit rate is ≥ 50% (the PR 10 acceptance floor).
//!
//! Each scenario reports requests/s and p50/p99 latency; the committed
//! `BENCH_PR10.json` is one run of this binary with
//! `MSTACKS_BENCH_OUT=BENCH_PR10.json`. The acceptance ratio —
//! warm-hit throughput over all-cold throughput — must be ≥ 10x.
//!
//! `--smoke` runs a seconds-scale variant for CI: it additionally
//! exercises `/v1/corun`, asserts a forced cache hit, and forces a
//! `429 Retry-After` out of a deliberately tiny admission budget on a
//! second server. Any violated expectation aborts with a nonzero exit.
//!
//! [`IdealFlags`]: mstacks_model::IdealFlags

use mstacks_serve::client::Client;
use mstacks_serve::{Server, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One scenario's closed-loop measurements.
struct Summary {
    scenario: &'static str,
    requests: usize,
    clients: usize,
    elapsed_secs: f64,
    cache_hits: usize,
    p50_ms: f64,
    p99_ms: f64,
}

impl Summary {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs
    }

    fn json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"requests\":{},\"clients\":{},\"elapsed_secs\":{:.3},\"requests_per_sec\":{:.1},\"cache_hits\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}",
            self.scenario, self.requests, self.clients, self.elapsed_secs,
            self.rps(), self.cache_hits, self.p50_ms, self.p99_ms
        )
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 * p).floor() as usize).min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// Runs `bodies` through `clients` closed-loop workers (each with its
/// own keep-alive connection), pulling from a shared work index, and
/// returns the merged latency/throughput summary. Panics on any
/// non-200 response: the load here is sized under the admission budget,
/// so a 429 (or worse) is a bug, not a data point.
fn drive(scenario: &'static str, addr: SocketAddr, bodies: &[String], clients: usize) -> Summary {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let per_thread: Vec<(Vec<f64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut lat_ms = Vec::new();
                    let mut hits = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(body) = bodies.get(i) else { break };
                        let t = Instant::now();
                        let r = c.post("/v1/simulate", body).expect("post");
                        lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(r.status, 200, "{scenario}: {}", r.body);
                        hits += usize::from(r.header("X-Cache") == Some("hit"));
                    }
                    (lat_ms, hits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();
    let mut lat_ms: Vec<f64> = Vec::with_capacity(bodies.len());
    let mut cache_hits = 0;
    for (l, h) in per_thread {
        lat_ms.extend(l);
        cache_hits += h;
    }
    lat_ms.sort_by(f64::total_cmp);
    Summary {
        scenario,
        requests: bodies.len(),
        clients,
        elapsed_secs,
        cache_hits,
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
    }
}

fn simulate_body(workload: &str, uops: u64) -> String {
    format!(r#"{{"workload":"{workload}","uops":{uops}}}"#)
}

/// The 16-subset ideal-flags lattice as a `/v1/sweep` body.
fn lattice_body(uops: u64) -> String {
    let flags = ["icache", "dcache", "bpred", "alu"];
    let points: Vec<String> = (0..16u32)
        .map(|mask| {
            let list: Vec<&str> = flags
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, f)| *f)
                .collect();
            format!(
                r#"{{"workload":"mcf","uops":{uops},"ideal":"{}"}}"#,
                list.join(",")
            )
        })
        .collect();
    format!(r#"{{"points":[{}]}}"#, points.join(","))
}

/// Posts the lattice twice and returns (hits, misses) across both
/// passes, taken from the service's `X-Cache-Hits/Misses` headers.
fn run_lattice(addr: SocketAddr, uops: u64) -> (u64, u64) {
    let mut c = Client::connect(addr).expect("connect");
    let body = lattice_body(uops);
    let (mut hits, mut misses) = (0, 0);
    for pass in 0..2 {
        let r = c.post("/v1/sweep", &body).expect("sweep");
        assert_eq!(r.status, 200, "lattice pass {pass}: {}", r.body);
        hits += r
            .header("X-Cache-Hits")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        misses += r
            .header("X-Cache-Misses")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
    }
    (hits, misses)
}

/// CI smoke: every endpoint answers, a repeated key is a hit, and an
/// over-budget request is turned away with `Retry-After`.
fn smoke(handle: &ServerHandle) {
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(c.get("/healthz").expect("healthz").status, 200);

    let body = simulate_body("mcf", 20_000);
    let miss = c.post("/v1/simulate", &body).expect("simulate");
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("X-Cache"), Some("miss"), "first key use");
    let hit = c.post("/v1/simulate", &body).expect("simulate");
    assert_eq!(hit.header("X-Cache"), Some("hit"), "forced cache hit");
    assert_eq!(hit.body, miss.body, "hit replays the miss bytes");

    let corun = c
        .post("/v1/corun", r#"{"workloads":["mcf","lbm"],"uops":20000}"#)
        .expect("corun");
    assert_eq!(corun.status, 200, "{}", corun.body);
    assert!(corun.body.contains("\"interference_cycles\""));

    let (hits, misses) = run_lattice(addr, 10_000);
    assert_eq!((hits, misses), (16, 16), "lattice second pass is warm");

    // Backpressure on a dedicated tiny-budget server: one big job holds
    // the debt while fresh-keyed probes poke admission until one is
    // turned away.
    let tiny = Server::spawn(ServerConfig {
        shards: 1,
        debt_budget_uops: 600_000,
        fast_lane_uops: 0,
        ..ServerConfig::default()
    })
    .expect("bind tiny server");
    let tiny_addr = tiny.addr();
    let big = std::thread::spawn(move || {
        let mut c = Client::connect(tiny_addr).expect("connect");
        c.post("/v1/simulate", &simulate_body("mcf", 500_000))
            .expect("big job")
    });
    let mut stats = Client::connect(tiny_addr).expect("connect");
    for _ in 0..500 {
        if !stats
            .get("/v1/stats")
            .expect("stats")
            .body
            .contains("\"debt_uops\":0}")
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let mut saw_429 = false;
    for i in 0..100u64 {
        let mut probe = Client::connect(tiny_addr).expect("connect");
        let r = probe
            .post("/v1/simulate", &simulate_body("lbm", 400_000 + i))
            .expect("probe");
        if r.status == 429 {
            let retry: u64 = r
                .header("Retry-After")
                .expect("429 carries Retry-After")
                .parse()
                .expect("integer seconds");
            assert!(retry >= 1, "Retry-After must be at least a second");
            saw_429 = true;
            break;
        }
        assert_eq!(r.status, 200, "{}", r.body);
    }
    assert!(saw_429, "forced backpressure produced a 429");
    assert_eq!(big.join().unwrap().status, 200, "big job still completes");
    tiny.shutdown();
    println!("serve smoke: ok (simulate, sweep, corun, cache hit, 429)");
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let handle = Server::spawn(ServerConfig::default()).expect("bind server");
    let addr = handle.addr();

    if smoke_mode {
        smoke(&handle);
        handle.shutdown();
        return;
    }

    let clients = 6;
    let cold_n = 48;
    let warm_n = 2000;
    let mixed_n = 400;
    let uops = 30_000u64;

    // cold-miss: every request a fresh key (distinct µop count).
    let cold_bodies: Vec<String> = (0..cold_n)
        .map(|i| simulate_body("mcf", uops + i as u64))
        .collect();
    let cold = drive("cold-miss", addr, &cold_bodies, clients);
    assert_eq!(cold.cache_hits, 0, "cold keys must all miss");

    // warm-hit: one key primed by the cold pass is replayed warm_n times.
    let warm_bodies: Vec<String> = (0..warm_n).map(|_| cold_bodies[0].clone()).collect();
    let warm = drive("warm-hit", addr, &warm_bodies, clients);
    assert_eq!(warm.cache_hits, warm_n, "warm keys must all hit");

    // mixed: 80% from an already-primed hot set, 20% fresh cold keys.
    let hot: Vec<&String> = cold_bodies.iter().take(8).collect();
    let mixed_bodies: Vec<String> = (0..mixed_n)
        .map(|i| {
            if i % 5 == 4 {
                simulate_body("lbm", uops + i as u64)
            } else {
                hot[i % hot.len()].clone()
            }
        })
        .collect();
    let mixed = drive("mixed-80-20", addr, &mixed_bodies, clients);

    let (lat_hits, lat_misses) = run_lattice(addr, 15_000);
    let lattice_hit_rate = lat_hits as f64 / (lat_hits + lat_misses) as f64;
    let speedup = warm.rps() / cold.rps();

    for s in [&cold, &warm, &mixed] {
        println!(
            "{:<12} {:>6} req, {} clients: {:>9.1} req/s   p50 {:>8.3} ms   p99 {:>8.3} ms   hits {}",
            s.scenario, s.requests, s.clients, s.rps(), s.p50_ms, s.p99_ms, s.cache_hits
        );
    }
    println!(
        "lattice      {lat_hits} hits / {lat_misses} misses over two passes ({:.0}% hit rate)",
        lattice_hit_rate * 100.0
    );
    println!("warm-hit over cold-miss: {speedup:.1}x (acceptance floor 10x)");
    assert!(speedup >= 10.0, "warm/cold speedup {speedup:.1}x below 10x");
    assert!(lattice_hit_rate >= 0.5, "lattice hit rate below 50%");

    let json = format!(
        "{{\n  \"bench\": \"serve-loadgen\",\n  \"description\": \"Closed-loop load against an in-process mstacks serve instance (cargo run --release -p mstacks-bench --bin loadgen). cold-miss = every request a fresh cache key; warm-hit = one primed key replayed; mixed = 80% primed hot set / 20% fresh keys; lattice = the 16-subset IdealFlags sweep posted twice through /v1/sweep.\",\n  \"uops_per_request\": {uops},\n  \"warm_over_cold_speedup\": {speedup:.1},\n  \"lattice_hit_rate\": {lattice_hit_rate:.3},\n  \"scenarios\": [\n    {},\n    {},\n    {}\n  ]\n}}",
        cold.json(),
        warm.json(),
        mixed.json(),
    );
    if let Ok(path) = std::env::var("MSTACKS_BENCH_OUT") {
        std::fs::write(&path, format!("{json}\n")).expect("write bench JSON");
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
    handle.shutdown();
}
