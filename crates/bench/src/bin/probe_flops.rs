//! Development probe for FLOPS stacks: runs one sgemm config on KNL and
//! SKX and prints the issue-stage CPI stack next to the FLOPS stack.

use mstacks_bench::run;
use mstacks_core::FLOPS_COMPONENTS;
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::render::{cpi_stack_lines, flops_stack_lines};
use mstacks_workloads::{GemmConfig, GemmStyle, Workload};

fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let cfg_g = GemmConfig {
        m: 128,
        n: 440,
        k: 128,
        train: true,
    };
    for (core, style) in [
        (CoreConfig::knights_landing(), GemmStyle::KnlJit),
        (CoreConfig::skylake_server(), GemmStyle::SkxBroadcast),
    ] {
        let lanes = (core.vector_bits / 32) as u8;
        let w = Workload::Gemm {
            cfg: cfg_g,
            style,
            lanes,
        };
        let r = run(&w, &core, IdealFlags::none(), uops);
        println!(
            "== {} on {} | CPI {:.3} IPC {:.2} | {:.1} / {:.1} GFLOPS ==",
            w.name(),
            core.name,
            r.cpi(),
            1.0 / r.cpi(),
            r.gflops(core.freq_ghz),
            core.peak_gflops(),
        );
        print!("{}", cpi_stack_lines(&r.multi.issue, 30));
        print!("{}", flops_stack_lines(&r.flops, core.freq_ghz, 30));
        let n = r.flops.normalized();
        for c in FLOPS_COMPONENTS {
            if n[c.index()] > 0.005 {
                println!("  flops {:<10} {:5.1}%", c.label(), n[c.index()] * 100.0);
            }
        }
        println!();
    }
}
