//! **Sensitivity ablations** — how the paper's second-order mechanisms
//! respond to the structures that cause them:
//!
//! 1. **L2 MSHR count vs the Fig. 3(c) effect**: `bwaves`' I-cache misses
//!    queue behind prefetch traffic on the L2 MSHRs. More MSHRs should
//!    dissolve the queueing and let the perfect-I$ experiment realize its
//!    predicted gain; fewer MSHRs should starve it further.
//! 2. **Prefetcher on/off**: without prefetches there is no contention —
//!    but the baseline CPI is far worse.
//! 3. **ROB size vs dispatch-stack backend components**: the dispatch
//!    stack only charges a backend miss once the ROB fills (paper §III-A),
//!    so a smaller ROB moves the dispatch D-cache component toward the
//!    commit one.
//!
//! Each ablation is a config sweep run in parallel on the shared
//! [`Sweep`] executor; results come back in declaration (config) order.

use mstacks_bench::{sim_uops, Sweep};
use mstacks_core::Component;
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_stats::TextTable;
use mstacks_workloads::spec;

fn main() {
    let uops = sim_uops().min(300_000);
    println!("Sensitivity ablations ({uops} uops)\n");

    // --- 1. L2 MSHRs vs unrealized Icache gain (bwaves) ---------------
    let w = spec::bwaves();
    let mshr_counts = [4u32, 8, 16, 32, 64];
    let cfgs: Vec<CoreConfig> = mshr_counts
        .iter()
        .map(|&m| CoreConfig::broadwell().with_l2_mshrs(m))
        .collect();
    // Product order is config-major: [base, perfect-I$] per MSHR count.
    let results = Sweep::product(
        std::slice::from_ref(&w),
        &cfgs,
        &[IdealFlags::none(), IdealFlags::none().with_perfect_icache()],
        uops,
    )
    .run();
    let mut t = TextTable::new(vec![
        "L2 MSHRs".into(),
        "CPI".into(),
        "icache bounds".into(),
        "realized d(perfect I$)".into(),
        "L2-MSHR wait cycles".into(),
    ]);
    for (mshrs, pair) in mshr_counts.iter().zip(results.chunks(2)) {
        let (base, pi) = (&pair[0].report, &pair[1].report);
        let (lo, hi) = base.multi.bounds(Component::Icache);
        t.row(vec![
            mshrs.to_string(),
            format!("{:.3}", base.cpi()),
            format!("[{lo:.3}, {hi:.3}]"),
            format!("{:+.3}", base.cpi() - pi.cpi()),
            base.result.mem.l2_mshr_wait_cycles.to_string(),
        ]);
    }
    println!("1. bwaves: L2 MSHR count vs the Fig. 3(c) queueing effect");
    println!("{t}");

    // --- 2. Prefetcher on/off -----------------------------------------
    let results = Sweep::product(
        std::slice::from_ref(&w),
        &[
            CoreConfig::broadwell(),
            CoreConfig::broadwell().without_prefetch(),
        ],
        &[IdealFlags::none()],
        uops,
    )
    .run();
    let mut t = TextTable::new(vec![
        "prefetch".into(),
        "CPI".into(),
        "dcache (commit)".into(),
        "icache (dispatch)".into(),
        "prefetches".into(),
    ]);
    for (label, res) in ["on", "off"].iter().zip(&results) {
        let r = &res.report;
        t.row(vec![
            (*label).into(),
            format!("{:.3}", r.cpi()),
            format!("{:.3}", r.multi.commit.cpi_of(Component::Dcache)),
            format!("{:.3}", r.multi.dispatch.cpi_of(Component::Icache)),
            r.result.mem.prefetches_issued.to_string(),
        ]);
    }
    println!("2. bwaves: prefetcher ablation (contention source vs latency hiding)");
    println!("{t}");

    // --- 3. ROB size vs dispatch-stage backend visibility --------------
    let w = spec::mcf();
    let rob_sizes = [48usize, 96, 192, 384];
    let cfgs: Vec<CoreConfig> = rob_sizes
        .iter()
        .map(|&rob| CoreConfig::broadwell().with_rob_size(rob))
        .collect();
    let results =
        Sweep::product(std::slice::from_ref(&w), &cfgs, &[IdealFlags::none()], uops).run();
    let mut t = TextTable::new(vec![
        "ROB".into(),
        "CPI".into(),
        "dcache@dispatch".into(),
        "dcache@commit".into(),
        "dispatch/commit".into(),
    ]);
    for (rob, res) in rob_sizes.iter().zip(&results) {
        let r = &res.report;
        let d = r.multi.dispatch.cpi_of(Component::Dcache);
        let c = r.multi.commit.cpi_of(Component::Dcache);
        t.row(vec![
            rob.to_string(),
            format!("{:.3}", r.cpi()),
            format!("{d:.3}"),
            format!("{c:.3}"),
            format!("{:.2}", d / c.max(1e-9)),
        ]);
    }
    println!("3. mcf: ROB size vs dispatch-stack backend visibility (§III-A: the");
    println!("   dispatch stage charges a D-miss only once the ROB fills)");
    println!("{t}");
}
