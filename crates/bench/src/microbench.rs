//! Minimal timing harness for the `benches/` targets.
//!
//! The registry is offline, so the bench targets can't use an external
//! harness crate; this module provides the small slice of functionality
//! they need: warm-up, repeated timed samples, and a median/mean report
//! on stdout. Run them with `cargo bench` (each is `harness = false`).

use std::time::{Duration, Instant};

/// One named group of related measurements, mirroring the way the old
/// harness grouped output.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Starts a group that takes `samples` timed runs per case.
    pub fn new(name: &str, samples: usize) -> Self {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            samples: samples.max(3),
        }
    }

    /// Times `f` (after one warm-up call) and prints median / mean / min.
    pub fn bench<R>(&self, case: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{case}: median {:>10.3?}  mean {:>10.3?}  min {:>10.3?}  ({} samples)",
            self.name,
            median,
            mean,
            times[0],
            times.len()
        );
    }
}
