//! Experiment harness shared by the table/figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! ISPASS 2018 paper (see `DESIGN.md` for the index). This library holds
//! the common machinery: run a workload on a core configuration under a
//! set of idealization flags, and compute CPI deltas between runs.

pub mod microbench;
pub mod sweep;

pub use sweep::{
    corun_sweep, par_map, sweep_threads, CorunPoint, CorunResult, Sweep, SweepPoint, SweepResult,
};

use mstacks_core::{CoRun, CoRunReport, Session, SimReport};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_workloads::{SharedTraceBuffer, TraceBuffer, Workload};
use std::sync::Arc;

/// Default detailed-simulation length in micro-ops.
///
/// The paper simulates 1 B instructions after a 10 B fast-forward; we scale
/// to 1 M micro-ops per run so the ~200-simulation sweeps stay tractable.
/// Override with the `MSTACKS_UOPS` environment variable.
pub const DEFAULT_UOPS: u64 = 1_000_000;

/// Detailed-simulation length: `MSTACKS_UOPS` env var or [`DEFAULT_UOPS`].
pub fn sim_uops() -> u64 {
    std::env::var("MSTACKS_UOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_UOPS)
}

/// Whether the `MSTACKS_AUDIT` environment variable asks for audited runs
/// (`1`, `true` or `yes`). CI sets this on the validation sweep so every
/// experiment run doubles as a conservation check.
pub fn audit_enabled() -> bool {
    std::env::var("MSTACKS_AUDIT")
        .map(|v| matches!(v.as_str(), "1" | "true" | "yes"))
        .unwrap_or(false)
}

/// Runs `workload` for `uops` micro-ops on `cfg` under `ideal`.
///
/// With `MSTACKS_AUDIT` set (see [`audit_enabled`]) the run carries the
/// conservation auditor and any invariant violation becomes a panic here.
///
/// # Panics
///
/// Panics if the pipeline deadlocks (a simulator bug, not a user error) or
/// if an audited run trips an accounting invariant.
pub fn run(workload: &Workload, cfg: &CoreConfig, ideal: IdealFlags, uops: u64) -> SimReport {
    // Batched path: pre-decode once into the SoA buffer, then replay by
    // index. Bit-identical to streaming `workload.trace(uops)` straight
    // into the session (the buffer round-trip is lossless).
    let buf = TraceBuffer::capture(workload, uops).shared();
    run_buffered(&buf, cfg, ideal)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name(), cfg.name))
}

/// [`run`] over an already-captured trace buffer — experiment loops that
/// revisit the same workload (benchmark reps, sampling windows) hoist the
/// pre-decode and pay only engine time per run.
pub fn run_buffered(
    buf: &Arc<TraceBuffer>,
    cfg: &CoreConfig,
    ideal: IdealFlags,
) -> Result<SimReport, mstacks_pipeline::PipelineError> {
    Session::new(cfg.clone())
        .with_ideal(ideal)
        .audit(audit_enabled())
        .run(buf.cursor())
}

/// Runs `workloads` co-located on one shared uncore (one core each, `uops`
/// micro-ops per core) — the co-location counterpart of [`run`]. With
/// `MSTACKS_AUDIT` set the run carries the conservation auditor on every
/// core.
///
/// # Panics
///
/// Panics if any core deadlocks or an audited run trips an invariant.
pub fn run_corun(
    workloads: &[Workload],
    cfg: &CoreConfig,
    ideal: IdealFlags,
    uops: u64,
) -> CoRunReport {
    // Equal workloads (homogeneous co-runs are common) decode once and
    // replay from the same Arc'd buffer; all-distinct one-shot co-runs
    // stream each generator directly — a capture would decode exactly once
    // anyway and only add the buffer write/read round trip. The buffer
    // round-trips bit-identically, so both paths produce the same report.
    let any_dup = workloads
        .iter()
        .enumerate()
        .any(|(i, w)| workloads[..i].contains(w));
    let result = if any_dup {
        let bufs = capture_shared(workloads, uops);
        run_corun_buffered(&bufs, cfg, ideal)
    } else {
        CoRun::new(cfg.clone())
            .with_ideal(ideal)
            .audit(audit_enabled())
            .run(workloads.iter().map(|w| w.trace(uops)).collect())
    };
    result.unwrap_or_else(|e| {
        let names: Vec<String> = workloads.iter().map(Workload::name).collect();
        panic!("corun [{}] on {}: {e}", names.join("+"), cfg.name)
    })
}

/// [`run_corun`] over already-captured per-core trace buffers — sweep
/// loops that revisit the same workloads hoist the pre-decode and share
/// buffers across points and cores.
pub fn run_corun_buffered(
    bufs: &[Arc<TraceBuffer>],
    cfg: &CoreConfig,
    ideal: IdealFlags,
) -> Result<CoRunReport, mstacks_pipeline::PipelineError> {
    CoRun::new(cfg.clone())
        .with_ideal(ideal)
        .audit(audit_enabled())
        .run(bufs.iter().map(|b| b.cursor()).collect())
}

/// Captures one `uops`-long trace buffer per workload, sharing a single
/// buffer between equal workloads (equality means byte-identical traces,
/// see [`Workload`]'s `PartialEq`).
pub fn capture_shared(workloads: &[Workload], uops: u64) -> Vec<Arc<TraceBuffer>> {
    let mut bufs: Vec<Arc<TraceBuffer>> = Vec::with_capacity(workloads.len());
    for (i, w) in workloads.iter().enumerate() {
        let dup = workloads[..i]
            .iter()
            .position(|prev| prev == w)
            .map(|j| bufs[j].clone());
        bufs.push(dup.unwrap_or_else(|| TraceBuffer::capture(w, uops).shared()));
    }
    bufs
}

/// Baseline CPI minus idealized CPI: the measured benefit of removing a
/// stall source (positive = idealization helped).
pub fn delta_cpi(base: &SimReport, idealized: &SimReport) -> f64 {
    base.cpi() - idealized.cpi()
}

/// The four single-structure idealizations of the paper's Fig. 2 study,
/// with the component each one validates.
pub fn single_idealizations() -> [(mstacks_core::Component, IdealFlags); 4] {
    use mstacks_core::Component;
    [
        (Component::Icache, IdealFlags::none().with_perfect_icache()),
        (Component::Dcache, IdealFlags::none().with_perfect_dcache()),
        (Component::Bpred, IdealFlags::none().with_perfect_bpred()),
        (
            Component::AluLat,
            IdealFlags::none().with_single_cycle_alu(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_workloads::spec;

    #[test]
    fn run_and_delta() {
        let w = spec::exchange2();
        let cfg = CoreConfig::broadwell();
        let base = run(&w, &cfg, IdealFlags::none(), 60_000);
        let ideal = run(&w, &cfg, IdealFlags::none().with_perfect_bpred(), 60_000);
        assert!(base.result.committed_uops >= 60_000);
        // Perfect branch prediction helps on balance (tiny second-order
        // regressions from changed fetch interleaving are tolerated).
        assert!(delta_cpi(&base, &ideal) >= -0.1);
    }

    #[test]
    fn idealization_list_is_complete() {
        let l = single_idealizations();
        assert_eq!(l.len(), 4);
        assert!(l.iter().all(|(_, i)| !i.is_baseline()));
    }
}
