//! Parallel sweep executor shared by every experiment binary.
//!
//! Each figure/table of the paper is a product of workloads × core
//! configurations × idealization flags, with every point an independent
//! simulation. [`Sweep`] declares the product, [`Sweep::run`] fans the
//! points out over a scoped thread pool, and the results come back in
//! declaration order regardless of which thread finished first — so the
//! parallel output is byte-identical to [`Sweep::run_serial`].
//!
//! The pool is sized by [`sweep_threads`]: `MSTACKS_THREADS` if set, else
//! [`std::thread::available_parallelism`]. Only the standard library is
//! used — no work-stealing crate, just an atomic work index over scoped
//! threads.

use mstacks_core::SimReport;
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_workloads::{TraceBuffer, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Worker count for [`par_map`] / [`Sweep::run`]: the `MSTACKS_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
pub fn sweep_threads() -> usize {
    std::env::var("MSTACKS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every item on a scoped thread pool and returns the
/// results **in input order**.
///
/// Threads pull work through a shared atomic index (dynamic scheduling —
/// simulation lengths vary wildly between points) and write each result
/// into the slot of its input, so ordering never depends on completion
/// order. With one worker (or one item) this degenerates to a plain
/// serial map on the calling thread.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is forwarded when the
/// scope joins its threads).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = sweep_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// One co-location point: several workloads co-run on cores sharing one
/// uncore (one core per workload).
#[derive(Debug, Clone)]
pub struct CorunPoint {
    pub workloads: Vec<Workload>,
    pub cfg: CoreConfig,
    pub ideal: IdealFlags,
    /// Micro-ops per core.
    pub uops: u64,
}

impl CorunPoint {
    /// Human-readable identity, e.g. `mcf+gemm on bdw [baseline]`.
    pub fn label(&self) -> String {
        let names: Vec<String> = self.workloads.iter().map(Workload::name).collect();
        format!("{} on {} [{}]", names.join("+"), self.cfg.name, self.ideal)
    }
}

/// A [`CorunPoint`] with its finished report.
#[derive(Debug, Clone)]
pub struct CorunResult {
    pub point: CorunPoint,
    pub report: mstacks_core::CoRunReport,
}

/// Runs every co-location point on the [`sweep_threads`] pool (results in
/// input order, same as [`par_map`]). Each point honours `MSTACKS_AUDIT`
/// exactly as [`crate::run_corun`] does.
///
/// Trace capture is hoisted out of the simulation loop: every equal
/// `(workload, uops)` pair across all points — and across cores within a
/// point — decodes once, and the cores replay the shared
/// [`Arc<TraceBuffer>`]. A typical interference sweep revisits the same
/// few workloads in every pairing, so the sweep pays decode time per
/// distinct workload instead of per core per point.
///
/// # Panics
///
/// Panics if any point deadlocks or trips an audited invariant.
pub fn corun_sweep(points: &[CorunPoint]) -> Vec<CorunResult> {
    let mut cache: Vec<(&Workload, u64, Arc<TraceBuffer>)> = Vec::new();
    let jobs: Vec<(&CorunPoint, Vec<Arc<TraceBuffer>>)> = points
        .iter()
        .map(|p| {
            let bufs = p
                .workloads
                .iter()
                .map(
                    |w| match cache.iter().find(|(cw, cu, _)| *cu == p.uops && *cw == w) {
                        Some((_, _, b)) => b.clone(),
                        None => {
                            let b = TraceBuffer::capture(w, p.uops).shared();
                            cache.push((w, p.uops, b.clone()));
                            b
                        }
                    },
                )
                .collect();
            (p, bufs)
        })
        .collect();
    par_map(&jobs, |(p, bufs)| CorunResult {
        report: crate::run_corun_buffered(bufs, &p.cfg, p.ideal)
            .unwrap_or_else(|e| panic!("corun {}: {e}", p.label())),
        point: (*p).clone(),
    })
}

/// One simulation of a sweep: a workload on a core under idealization
/// flags, for a number of micro-ops.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub workload: Workload,
    pub cfg: CoreConfig,
    pub ideal: IdealFlags,
    pub uops: u64,
}

impl SweepPoint {
    /// Human-readable identity of this point, e.g.
    /// `mcf on bdw [perfect-dcache]`.
    pub fn label(&self) -> String {
        format!(
            "{} on {} [{}]",
            self.workload.name(),
            self.cfg.name,
            self.ideal
        )
    }
}

/// A [`SweepPoint`] together with its finished [`SimReport`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub point: SweepPoint,
    pub report: SimReport,
}

/// A declarative batch of independent simulations.
///
/// Build one with [`Sweep::product`] (full workload × config × ideal
/// product) and/or the [`Sweep::point`] builder, then execute with
/// [`Sweep::run`]. Results always come back in declaration order:
/// product order is workload-major, then config, then ideal flags.
///
/// # Example
///
/// ```
/// use mstacks_bench::Sweep;
/// use mstacks_model::{CoreConfig, IdealFlags};
/// use mstacks_workloads::spec;
///
/// let results = Sweep::product(
///     &[spec::exchange2()],
///     &[CoreConfig::broadwell()],
///     &[IdealFlags::none(), IdealFlags::none().with_perfect_bpred()],
///     20_000,
/// )
/// .run();
/// assert_eq!(results.len(), 2);
/// // Declaration order: the baseline is first, the idealized run second.
/// assert!(results[0].point.ideal.is_baseline());
/// assert!(results[0].report.cpi() >= 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty sweep; add points with [`Sweep::point`].
    pub fn new() -> Self {
        Sweep::default()
    }

    /// The full product `workloads × cfgs × ideals`, each point simulated
    /// for `uops` micro-ops. Workload-major order.
    pub fn product(
        workloads: &[Workload],
        cfgs: &[CoreConfig],
        ideals: &[IdealFlags],
        uops: u64,
    ) -> Self {
        let mut sweep = Sweep::new();
        for w in workloads {
            for cfg in cfgs {
                for &ideal in ideals {
                    sweep.points.push(SweepPoint {
                        workload: w.clone(),
                        cfg: cfg.clone(),
                        ideal,
                        uops,
                    });
                }
            }
        }
        sweep
    }

    /// [`Sweep::product`] with the core configurations loaded from
    /// `.core` table files instead of constructed in code — experiment
    /// batches over machines that exist only as data.
    ///
    /// # Errors
    ///
    /// Returns the first table that fails to load, parse or validate.
    pub fn product_from_files(
        workloads: &[Workload],
        core_files: &[impl AsRef<std::path::Path>],
        ideals: &[IdealFlags],
        uops: u64,
    ) -> Result<Self, mstacks_model::TableError> {
        let cfgs = core_files
            .iter()
            .map(CoreConfig::from_core_file)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::product(workloads, &cfgs, ideals, uops))
    }

    /// Appends one point (builder style) — for irregular sweeps that are
    /// not a full product.
    pub fn point(
        mut self,
        workload: Workload,
        cfg: CoreConfig,
        ideal: IdealFlags,
        uops: u64,
    ) -> Self {
        self.points.push(SweepPoint {
            workload,
            cfg,
            ideal,
            uops,
        });
        self
    }

    /// The declared points, in execution/result order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runs every point on the [`sweep_threads`] pool. Results are in
    /// declaration order and identical to [`Sweep::run_serial`] — the
    /// simulator is deterministic and points share no state.
    ///
    /// # Panics
    ///
    /// Panics if any simulation deadlocks (a simulator bug).
    pub fn run(&self) -> Vec<SweepResult> {
        par_map(&self.points, Self::run_point)
    }

    /// Runs every point on the calling thread, in order. The reference
    /// implementation [`Sweep::run`] must match exactly.
    pub fn run_serial(&self) -> Vec<SweepResult> {
        self.points.iter().map(Self::run_point).collect()
    }

    fn run_point(p: &SweepPoint) -> SweepResult {
        SweepResult {
            report: crate::run(&p.workload, &p.cfg, p.ideal, p.uops),
            point: p.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_workloads::spec;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_on_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn product_order_is_workload_major() {
        let sweep = Sweep::product(
            &[spec::mcf(), spec::gcc()],
            &[CoreConfig::broadwell(), CoreConfig::knights_landing()],
            &[IdealFlags::none(), IdealFlags::none().with_perfect_dcache()],
            1_000,
        );
        assert_eq!(sweep.len(), 8);
        let labels: Vec<String> = sweep.points().iter().map(SweepPoint::label).collect();
        assert_eq!(labels[0], "mcf on bdw [baseline]");
        assert_eq!(labels[1], "mcf on bdw [perfect-dcache]");
        assert_eq!(labels[2], "mcf on knl [baseline]");
        assert_eq!(labels[4], "gcc on bdw [baseline]");
    }

    #[test]
    fn product_from_files_matches_in_code_product() {
        let dir = std::env::temp_dir().join("mstacks-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for cfg in [CoreConfig::broadwell(), CoreConfig::knights_landing()] {
            let p = dir.join(format!("{}.core", cfg.name));
            std::fs::write(&p, cfg.to_table()).unwrap();
            paths.push(p);
        }
        let from_files =
            Sweep::product_from_files(&[spec::mcf()], &paths, &[IdealFlags::none()], 1_000)
                .expect("tables load");
        let in_code = Sweep::product(
            &[spec::mcf()],
            &[CoreConfig::broadwell(), CoreConfig::knights_landing()],
            &[IdealFlags::none()],
            1_000,
        );
        assert_eq!(from_files.len(), in_code.len());
        for (a, b) in from_files.points().iter().zip(in_code.points()) {
            assert_eq!(a.cfg, b.cfg);
        }
        assert!(Sweep::product_from_files(
            &[spec::mcf()],
            &[dir.join("missing.core")],
            &[IdealFlags::none()],
            1_000,
        )
        .is_err());
    }

    #[test]
    fn parallel_results_match_serial_exactly_and_in_order() {
        let sweep = Sweep::product(
            &[spec::exchange2(), spec::mcf()],
            &[CoreConfig::broadwell()],
            &[IdealFlags::none(), IdealFlags::none().with_perfect_dcache()],
            20_000,
        );
        let serial = sweep.run_serial();
        let parallel = sweep.run();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.point.label(), p.point.label());
            assert_eq!(
                s.report,
                p.report,
                "parallel report differs at {}",
                s.point.label()
            );
        }
    }
}
