//! `.core` table files: the declarative, on-disk form of a [`CoreConfig`].
//!
//! A core is data, not code (DESIGN.md §11). A table file is a plain-text
//! INI-like document — `[section]` headers, `key = value` lines, and one
//! whitespace-separated row per µop class in `[classes]` carrying the
//! class's latency, pipelining flag and eligible ports (uops.info-style
//! tabular port/latency data). [`parse`] turns a table into a validated
//! [`CoreConfig`] with line-numbered diagnostics; [`dump`] writes a
//! configuration back out in canonical form, and the two compose into an
//! exact round-trip ([`roundtrip`]) for *every* valid configuration,
//! fuzzed ones included.
//!
//! The three paper presets ship as `cores/{bdw,knl,skx}.core` and are
//! guaranteed field-for-field equal to the hand-written constructors (see
//! `tests/core_tables.rs`); two additional table-only cores (`zen`,
//! `atom`) exist purely as data. [`builtin`] parses the embedded copy of
//! any shipped table.
//!
//! # Grammar notes
//!
//! * `#` starts a comment (anywhere on a line).
//! * `[ports] names = p0 p1 …` declares the ports; declaration order is
//!   issue priority (the allocator picks the first listed free port).
//! * A `[classes]` row reads `class latency pipelined ports…`, e.g.
//!   `int_div 21 no p2`; `-` means "no eligible port". Classes sharing a
//!   functional unit (e.g. `int_add`/`lea`/`nop` on the integer ALUs, the
//!   four `fp_*` classes on the VPUs) must list identical ports, because
//!   eligibility is per-unit in the engine.
//! * `nop` and `load` must declare latency 1 (fixed by the engine: a
//!   load's port slot is address generation; the memory hierarchy adds
//!   the access latency). The divide classes must be `no` (unpipelined),
//!   everything else `yes` — the flags are part of the table so the
//!   execution contract is explicit, and the parser rejects combinations
//!   the engine does not model.
//! * Cache sizes accept `size_kb` or `size_bytes`.

use crate::classes::{UopClass, UOP_CLASSES};
use crate::config::{
    BpredConfig, CacheConfig, CoreConfig, LatencyTable, MemConfig, PrefetchConfig, TlbConfig,
};
use crate::ports::{caps, PortSpec};

/// Names of the shipped built-in core tables (in `cores/`).
pub const BUILTIN_NAMES: [&str; 5] = ["bdw", "knl", "skx", "zen", "atom"];

/// The embedded source text of a shipped table, by name.
pub fn builtin_source(name: &str) -> Option<&'static str> {
    match name {
        "bdw" => Some(include_str!("../../../cores/bdw.core")),
        "knl" => Some(include_str!("../../../cores/knl.core")),
        "skx" => Some(include_str!("../../../cores/skx.core")),
        "zen" => Some(include_str!("../../../cores/zen.core")),
        "atom" => Some(include_str!("../../../cores/atom.core")),
        _ => None,
    }
}

/// Parses a shipped built-in table by name.
///
/// # Panics
///
/// Panics if the embedded table fails to parse — shipped tables are build
/// artifacts validated in CI, so that is a packaging bug, not user error.
pub fn builtin(name: &str) -> Option<CoreConfig> {
    builtin_source(name).map(|src| {
        parse(src).unwrap_or_else(|e| panic!("embedded core table `{name}` is invalid: {e}"))
    })
}

/// Error from parsing or round-tripping a core table, with the offending
/// line when one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableError {
    /// 1-based line number of the offending line, when attributable.
    pub line: Option<usize>,
    message: String,
}

impl TableError {
    fn new(message: impl Into<String>) -> Self {
        TableError {
            line: None,
            message: message.into(),
        }
    }

    fn at(line: usize, message: impl Into<String>) -> Self {
        TableError {
            line: Some(line),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "core table, line {n}: {}", self.message),
            None => write!(f, "core table: {}", self.message),
        }
    }
}

impl std::error::Error for TableError {}

const SECTIONS: [&str; 12] = [
    "core", "bpred", "ports", "classes", "l1i", "l1d", "l2", "l3", "mem", "itlb", "dtlb",
    "prefetch",
];

/// Raw section: header line plus its content lines (comments stripped).
struct RawSection {
    name: String,
    header_line: usize,
    lines: Vec<(usize, String)>,
}

/// A key/value section with duplicate detection and used-key tracking
/// (leftover keys are reported as unknown).
struct Kv {
    name: String,
    header_line: usize,
    entries: Vec<(usize, String, String)>,
    used: Vec<bool>,
}

impl Kv {
    fn from_raw(raw: RawSection) -> Result<Kv, TableError> {
        let mut entries: Vec<(usize, String, String)> = Vec::new();
        for (line, text) in raw.lines {
            let Some((k, v)) = text.split_once('=') else {
                return Err(TableError::at(
                    line,
                    format!("[{}]: expected `key = value`, got `{text}`", raw.name),
                ));
            };
            let (k, v) = (k.trim().to_string(), v.trim().to_string());
            if let Some((first, _, _)) = entries.iter().find(|(_, ek, _)| *ek == k) {
                return Err(TableError::at(
                    line,
                    format!("duplicate key `{k}` (first at line {first})"),
                ));
            }
            entries.push((line, k, v));
        }
        let used = vec![false; entries.len()];
        Ok(Kv {
            name: raw.name,
            header_line: raw.header_line,
            entries,
            used,
        })
    }

    fn has(&self, key: &str) -> bool {
        self.entries.iter().any(|(_, k, _)| k == key)
    }

    fn get(&mut self, key: &str) -> Result<(usize, String), TableError> {
        match self.entries.iter().position(|(_, k, _)| k == key) {
            Some(i) => {
                self.used[i] = true;
                Ok((self.entries[i].0, self.entries[i].2.clone()))
            }
            None => Err(TableError::at(
                self.header_line,
                format!("[{}]: missing key `{key}`", self.name),
            )),
        }
    }

    fn u32(&mut self, key: &str) -> Result<u32, TableError> {
        let (line, v) = self.get(key)?;
        v.parse().map_err(|_| {
            TableError::at(
                line,
                format!("`{key}`: expected an unsigned integer, got `{v}`"),
            )
        })
    }

    fn u64(&mut self, key: &str) -> Result<u64, TableError> {
        let (line, v) = self.get(key)?;
        v.parse().map_err(|_| {
            TableError::at(
                line,
                format!("`{key}`: expected an unsigned integer, got `{v}`"),
            )
        })
    }

    fn usize(&mut self, key: &str) -> Result<usize, TableError> {
        let (line, v) = self.get(key)?;
        v.parse().map_err(|_| {
            TableError::at(
                line,
                format!("`{key}`: expected an unsigned integer, got `{v}`"),
            )
        })
    }

    fn f64(&mut self, key: &str) -> Result<f64, TableError> {
        let (line, v) = self.get(key)?;
        let x: f64 = v
            .parse()
            .map_err(|_| TableError::at(line, format!("`{key}`: expected a number, got `{v}`")))?;
        if !x.is_finite() {
            return Err(TableError::at(line, format!("`{key}`: must be finite")));
        }
        Ok(x)
    }

    fn bool(&mut self, key: &str) -> Result<bool, TableError> {
        let (line, v) = self.get(key)?;
        match v.as_str() {
            "yes" => Ok(true),
            "no" => Ok(false),
            _ => Err(TableError::at(
                line,
                format!("`{key}`: expected `yes` or `no`, got `{v}`"),
            )),
        }
    }

    /// Errors on the first key that was never consumed.
    fn finish(self) -> Result<(), TableError> {
        for (i, (line, k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(TableError::at(
                    *line,
                    format!("[{}]: unknown key `{k}`", self.name),
                ));
            }
        }
        Ok(())
    }
}

fn cache_section(kv: &mut Kv) -> Result<CacheConfig, TableError> {
    let size_bytes = if kv.has("size_bytes") {
        kv.u64("size_bytes")?
    } else {
        kv.u64("size_kb")?.saturating_mul(1024)
    };
    Ok(CacheConfig {
        size_bytes,
        assoc: kv.u32("assoc")?,
        line_bytes: kv.u32("line_bytes")?,
        latency: kv.u32("latency")?,
        mshrs: kv.u32("mshrs")?,
    })
}

fn tlb_section(kv: &mut Kv) -> Result<TlbConfig, TableError> {
    Ok(TlbConfig {
        entries: kv.u32("entries")?,
        assoc: kv.u32("assoc")?,
        walk_cycles: kv.u32("walk_cycles")?,
    })
}

fn cap_label(cap: u16) -> &'static str {
    match cap {
        caps::INT_ALU => "int_alu",
        caps::INT_MUL => "int_mul",
        caps::INT_DIV => "int_div",
        caps::BRANCH => "branch",
        caps::LOAD => "load",
        caps::STORE => "store",
        caps::VEC_FP => "vec_fp",
        caps::VEC_INT => "vec_int",
        _ => "?",
    }
}

/// One parsed `[classes]` row.
struct ClassRow {
    line: usize,
    latency: u32,
    port_mask: u32,
}

/// Parses a `.core` table into a validated [`CoreConfig`].
///
/// # Errors
///
/// Returns a [`TableError`] with a line number for syntax problems,
/// unknown/duplicate/missing keys or class rows, references to
/// nonexistent ports, inconsistent per-unit port lists, and pipelining or
/// latency declarations the engine does not model; semantic violations
/// found by [`CoreConfig::validate`] are reported without a line.
pub fn parse(text: &str) -> Result<CoreConfig, TableError> {
    // ---- Pass 1: split into raw sections ------------------------------
    let mut sections: Vec<RawSection> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let content = raw_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if let Some(stripped) = content.strip_prefix('[') {
            let Some(name) = stripped.strip_suffix(']') else {
                return Err(TableError::at(line_no, "malformed section header"));
            };
            let name = name.trim().to_string();
            if !SECTIONS.contains(&name.as_str()) {
                return Err(TableError::at(
                    line_no,
                    format!("unknown section `[{name}]`"),
                ));
            }
            if let Some(prev) = sections.iter().find(|s| s.name == name) {
                return Err(TableError::at(
                    line_no,
                    format!(
                        "duplicate section `[{name}]` (first at line {})",
                        prev.header_line
                    ),
                ));
            }
            sections.push(RawSection {
                name,
                header_line: line_no,
                lines: Vec::new(),
            });
        } else {
            let Some(sec) = sections.last_mut() else {
                return Err(TableError::at(
                    line_no,
                    "content before the first [section] header",
                ));
            };
            sec.lines.push((line_no, content.to_string()));
        }
    }
    fn take(sections: &mut Vec<RawSection>, name: &str) -> Option<RawSection> {
        let i = sections.iter().position(|s| s.name == name)?;
        Some(sections.remove(i))
    }
    fn require(sections: &mut Vec<RawSection>, name: &str) -> Result<RawSection, TableError> {
        take(sections, name)
            .ok_or_else(|| TableError::new(format!("missing required section `[{name}]`")))
    }

    // ---- [ports]: declaration order is port-index / issue priority ----
    let mut ports_kv = Kv::from_raw(require(&mut sections, "ports")?)?;
    let (names_line, names_val) = ports_kv.get("names")?;
    let port_names: Vec<String> = names_val.split_whitespace().map(str::to_string).collect();
    if port_names.is_empty() {
        return Err(TableError::at(
            names_line,
            "`names`: at least one port required",
        ));
    }
    if port_names.len() > 32 {
        return Err(TableError::at(
            names_line,
            "`names`: at most 32 ports supported",
        ));
    }
    for (i, n) in port_names.iter().enumerate() {
        if port_names[..i].contains(n) {
            return Err(TableError::at(
                names_line,
                format!("duplicate port name `{n}`"),
            ));
        }
    }
    ports_kv.finish()?;

    // ---- [classes]: one row per µop class -----------------------------
    let classes_raw = require(&mut sections, "classes")?;
    let classes_header = classes_raw.header_line;
    let mut rows: [Option<ClassRow>; UopClass::COUNT] = Default::default();
    for (line, text) in &classes_raw.lines {
        let fields: Vec<&str> = text.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(TableError::at(
                *line,
                format!("expected `class latency pipelined ports…`, got `{text}`"),
            ));
        }
        let Some(class) = UopClass::from_name(fields[0]) else {
            return Err(TableError::at(
                *line,
                format!("unknown µop class `{}`", fields[0]),
            ));
        };
        if let Some(prev) = &rows[class.index()] {
            return Err(TableError::at(
                *line,
                format!(
                    "duplicate class row `{class}` (first at line {})",
                    prev.line
                ),
            ));
        }
        let latency: u32 = fields[1].parse().map_err(|_| {
            TableError::at(
                *line,
                format!("class `{class}`: bad latency `{}`", fields[1]),
            )
        })?;
        let pipelined = match fields[2] {
            "yes" => true,
            "no" => false,
            other => {
                return Err(TableError::at(
                    *line,
                    format!("class `{class}`: pipelined must be `yes` or `no`, got `{other}`"),
                ))
            }
        };
        let mut port_mask = 0u32;
        if fields[3..] != ["-"] {
            for p in &fields[3..] {
                let Some(idx) = port_names.iter().position(|n| n == p) else {
                    return Err(TableError::at(
                        *line,
                        format!(
                            "class `{class}`: unknown port `{p}` (declared ports: {})",
                            port_names.join(" ")
                        ),
                    ));
                };
                port_mask |= 1 << idx;
            }
        }
        // Engine-model constraints — part of the table so the execution
        // contract is explicit, checked so it cannot silently diverge.
        if matches!(class, UopClass::Nop | UopClass::Load) && latency != 1 {
            return Err(TableError::at(
                *line,
                format!(
                    "class `{class}`: latency is fixed at 1 by the engine \
                     (loads get the rest from the memory hierarchy)"
                ),
            ));
        }
        let must_block = matches!(class, UopClass::IntDiv | UopClass::FpDiv);
        if pipelined == must_block {
            return Err(TableError::at(
                *line,
                if must_block {
                    format!("class `{class}`: divides are unpipelined in the engine; write `no`")
                } else {
                    format!("class `{class}`: only the divide classes are unpipelined; write `yes`")
                },
            ));
        }
        rows[class.index()] = Some(ClassRow {
            line: *line,
            latency,
            port_mask,
        });
    }
    for c in UOP_CLASSES {
        if rows[c.index()].is_none() {
            return Err(TableError::at(
                classes_header,
                format!("[classes]: missing class row `{c}`"),
            ));
        }
    }
    let row = |c: UopClass| rows[c.index()].as_ref().expect("all rows present");

    // Rebuild the port capability masks from the class rows, then check
    // consistency: classes sharing a unit must list identical ports.
    let mut port_caps = vec![0u16; port_names.len()];
    for c in UOP_CLASSES {
        for (i, cap) in port_caps.iter_mut().enumerate() {
            if row(c).port_mask >> i & 1 == 1 {
                *cap |= c.cap();
            }
        }
    }
    for c in UOP_CLASSES {
        let derived = port_caps
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & c.cap() != 0)
            .fold(0u32, |m, (i, _)| m | 1 << i);
        if derived != row(c).port_mask {
            let sibling = UOP_CLASSES
                .iter()
                .find(|&&o| o != c && o.cap() == c.cap())
                .map(|o| o.name())
                .unwrap_or("?");
            return Err(TableError::at(
                row(c).line,
                format!(
                    "class `{c}`: classes sharing the {} unit must list identical \
                     ports (compare the `{sibling}` row)",
                    cap_label(c.cap())
                ),
            ));
        }
    }
    for (i, &m) in port_caps.iter().enumerate() {
        if m == 0 {
            return Err(TableError::at(
                names_line,
                format!(
                    "port `{}` is declared but no class row references it",
                    port_names[i]
                ),
            ));
        }
    }

    let lat = LatencyTable {
        int_add: row(UopClass::IntAdd).latency,
        int_mul: row(UopClass::IntMul).latency,
        int_div: row(UopClass::IntDiv).latency,
        lea: row(UopClass::Lea).latency,
        branch: row(UopClass::Branch).latency,
        fp_add: row(UopClass::FpAdd).latency,
        fp_mul: row(UopClass::FpMul).latency,
        fp_fma: row(UopClass::FpFma).latency,
        fp_div: row(UopClass::FpDiv).latency,
        vec_int: row(UopClass::VecInt).latency,
        store: row(UopClass::Store).latency,
    };

    // ---- Scalar sections ----------------------------------------------
    let mut core = Kv::from_raw(require(&mut sections, "core")?)?;
    let mut bpred = Kv::from_raw(require(&mut sections, "bpred")?)?;
    let mut l1i = Kv::from_raw(require(&mut sections, "l1i")?)?;
    let mut l1d = Kv::from_raw(require(&mut sections, "l1d")?)?;
    let mut l2 = Kv::from_raw(require(&mut sections, "l2")?)?;
    let l3 = take(&mut sections, "l3").map(Kv::from_raw).transpose()?;
    let mut mem = Kv::from_raw(require(&mut sections, "mem")?)?;
    let mut itlb = Kv::from_raw(require(&mut sections, "itlb")?)?;
    let mut dtlb = Kv::from_raw(require(&mut sections, "dtlb")?)?;
    let mut prefetch = Kv::from_raw(require(&mut sections, "prefetch")?)?;

    let cfg = CoreConfig {
        name: core.get("name")?.1,
        fetch_width: core.u32("fetch_width")?,
        dispatch_width: core.u32("dispatch_width")?,
        issue_width: core.u32("issue_width")?,
        commit_width: core.u32("commit_width")?,
        rob_size: core.usize("rob_size")?,
        rs_size: core.usize("rs_size")?,
        ldq_size: core.usize("ldq_size")?,
        stq_size: core.usize("stq_size")?,
        frontend_depth: core.u32("frontend_depth")?,
        microcode_decode_cycles: core.u32("microcode_decode_cycles")?,
        ports: port_caps.into_iter().map(PortSpec::new).collect(),
        lat,
        vector_bits: core.u32("vector_bits")?,
        freq_ghz: core.f64("freq_ghz")?,
        bpred: BpredConfig {
            history_bits: bpred.u32("history_bits")?,
            btb_sets_log2: bpred.u32("btb_sets_log2")?,
            btb_ways: bpred.u32("btb_ways")?,
            ras_entries: bpred.u32("ras_entries")?,
        },
        mem: MemConfig {
            l1i: cache_section(&mut l1i)?,
            l1d: cache_section(&mut l1d)?,
            l2: cache_section(&mut l2)?,
            l3: match l3 {
                Some(mut kv) => {
                    let c = cache_section(&mut kv)?;
                    kv.finish()?;
                    Some(c)
                }
                None => None,
            },
            dram_latency: mem.u32("dram_latency")?,
            dram_bytes_per_cycle: mem.f64("dram_bytes_per_cycle")?,
            prefetch: PrefetchConfig {
                stride_enabled: prefetch.bool("stride")?,
                stride_degree: prefetch.u32("stride_degree")?,
                stride_threshold: prefetch.u32("stride_threshold")?,
                next_line_enabled: prefetch.bool("next_line")?,
            },
            itlb: tlb_section(&mut itlb)?,
            dtlb: tlb_section(&mut dtlb)?,
        },
    };
    for kv in [core, bpred, l1i, l1d, l2, mem, itlb, dtlb, prefetch] {
        kv.finish()?;
    }
    if let Some(sec) = sections.first() {
        // Sections that parsed but were never consumed cannot exist: the
        // header pass rejects unknown names and `take` removes known
        // ones. Defensive: report rather than silently ignore.
        return Err(TableError::at(
            sec.header_line,
            format!("section `[{}]` not consumed", sec.name),
        ));
    }
    cfg.validate().map_err(|e| TableError::new(e.to_string()))?;
    Ok(cfg)
}

/// Dumps a configuration as a canonical `.core` table. [`parse`] of the
/// result reproduces the configuration exactly (see [`roundtrip`]); the
/// shipped preset tables are generated this way (`mstacks cores dump`).
pub fn dump(cfg: &CoreConfig) -> String {
    use std::fmt::Write as _;
    let table = cfg.class_table();
    let port_name = |i: usize| format!("p{i}");
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "# {} — mstacks declarative core table (DESIGN.md §11).\n\
         # Regenerate with: mstacks cores dump {}\n",
        cfg.name, cfg.name
    );
    let _ = writeln!(out, "[core]");
    let _ = writeln!(out, "name = {}", cfg.name);
    let _ = writeln!(out, "fetch_width = {}", cfg.fetch_width);
    let _ = writeln!(out, "dispatch_width = {}", cfg.dispatch_width);
    let _ = writeln!(out, "issue_width = {}", cfg.issue_width);
    let _ = writeln!(out, "commit_width = {}", cfg.commit_width);
    let _ = writeln!(out, "rob_size = {}", cfg.rob_size);
    let _ = writeln!(out, "rs_size = {}", cfg.rs_size);
    let _ = writeln!(out, "ldq_size = {}", cfg.ldq_size);
    let _ = writeln!(out, "stq_size = {}", cfg.stq_size);
    let _ = writeln!(out, "frontend_depth = {}", cfg.frontend_depth);
    let _ = writeln!(
        out,
        "microcode_decode_cycles = {}",
        cfg.microcode_decode_cycles
    );
    let _ = writeln!(out, "vector_bits = {}", cfg.vector_bits);
    let _ = writeln!(out, "freq_ghz = {}", cfg.freq_ghz);
    let _ = writeln!(out, "\n[bpred]");
    let _ = writeln!(out, "history_bits = {}", cfg.bpred.history_bits);
    let _ = writeln!(out, "btb_sets_log2 = {}", cfg.bpred.btb_sets_log2);
    let _ = writeln!(out, "btb_ways = {}", cfg.bpred.btb_ways);
    let _ = writeln!(out, "ras_entries = {}", cfg.bpred.ras_entries);
    let _ = writeln!(out, "\n[ports]");
    let _ = writeln!(
        out,
        "# Declaration order is issue priority: the allocator picks the"
    );
    let _ = writeln!(out, "# first listed free port.");
    let names: Vec<String> = (0..cfg.ports.len()).map(port_name).collect();
    let _ = writeln!(out, "names = {}", names.join(" "));
    let _ = writeln!(out, "\n[classes]");
    let _ = writeln!(out, "# class    lat  pipelined  ports");
    for c in UOP_CLASSES {
        let spec = table.spec(c);
        let ports: Vec<String> = spec.ports().map(port_name).collect();
        let _ = writeln!(
            out,
            "{:<8} {:>4}  {:<9}  {}",
            c.name(),
            spec.latency,
            if spec.pipelined { "yes" } else { "no" },
            if ports.is_empty() {
                "-".to_string()
            } else {
                ports.join(" ")
            }
        );
    }
    let cache = |out: &mut String, name: &str, c: &CacheConfig| {
        let _ = writeln!(out, "\n[{name}]");
        if c.size_bytes.is_multiple_of(1024) {
            let _ = writeln!(out, "size_kb = {}", c.size_bytes / 1024);
        } else {
            let _ = writeln!(out, "size_bytes = {}", c.size_bytes);
        }
        let _ = writeln!(out, "assoc = {}", c.assoc);
        let _ = writeln!(out, "line_bytes = {}", c.line_bytes);
        let _ = writeln!(out, "latency = {}", c.latency);
        let _ = writeln!(out, "mshrs = {}", c.mshrs);
    };
    cache(&mut out, "l1i", &cfg.mem.l1i);
    cache(&mut out, "l1d", &cfg.mem.l1d);
    cache(&mut out, "l2", &cfg.mem.l2);
    if let Some(l3) = &cfg.mem.l3 {
        cache(&mut out, "l3", l3);
    }
    let _ = writeln!(out, "\n[mem]");
    let _ = writeln!(out, "dram_latency = {}", cfg.mem.dram_latency);
    let _ = writeln!(
        out,
        "dram_bytes_per_cycle = {}",
        cfg.mem.dram_bytes_per_cycle
    );
    let tlb = |out: &mut String, name: &str, t: &TlbConfig| {
        let _ = writeln!(out, "\n[{name}]");
        let _ = writeln!(out, "entries = {}", t.entries);
        let _ = writeln!(out, "assoc = {}", t.assoc);
        let _ = writeln!(out, "walk_cycles = {}", t.walk_cycles);
    };
    tlb(&mut out, "itlb", &cfg.mem.itlb);
    tlb(&mut out, "dtlb", &cfg.mem.dtlb);
    let _ = writeln!(out, "\n[prefetch]");
    let yn = |b: bool| if b { "yes" } else { "no" };
    let _ = writeln!(out, "stride = {}", yn(cfg.mem.prefetch.stride_enabled));
    let _ = writeln!(out, "stride_degree = {}", cfg.mem.prefetch.stride_degree);
    let _ = writeln!(
        out,
        "stride_threshold = {}",
        cfg.mem.prefetch.stride_threshold
    );
    let _ = writeln!(
        out,
        "next_line = {}",
        yn(cfg.mem.prefetch.next_line_enabled)
    );
    out
}

/// Dump → parse → compare: the table-roundtrip mode of the config fuzzer.
/// Every valid [`CoreConfig`] must survive the trip bit-for-bit (`f64`
/// fields round-trip exactly through shortest-representation formatting).
///
/// # Errors
///
/// Returns the parse error, or a mismatch error if the reparsed
/// configuration differs from the original.
pub fn roundtrip(cfg: &CoreConfig) -> Result<(), TableError> {
    let text = dump(cfg);
    let parsed =
        parse(&text).map_err(|e| TableError::new(format!("dumped table fails to parse: {e}")))?;
    if &parsed != cfg {
        return Err(TableError::new(
            "dump → parse round-trip does not reproduce the configuration",
        ));
    }
    Ok(())
}

impl CoreConfig {
    /// Parses a `.core` table (see [`parse`]).
    ///
    /// # Errors
    ///
    /// See [`parse`].
    pub fn from_table(text: &str) -> Result<Self, TableError> {
        parse(text)
    }

    /// Renders this configuration as a canonical `.core` table.
    pub fn to_table(&self) -> String {
        dump(self)
    }

    /// Loads and parses a `.core` table file.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] for I/O problems or any [`parse`] error.
    pub fn from_core_file(path: impl AsRef<std::path::Path>) -> Result<Self, TableError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| TableError::new(format!("cannot read `{}`: {e}", path.display())))?;
        parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    /// Regenerates the three shipped preset tables from the hand-written
    /// constructors: `MSTACKS_BLESS_CORES=1 cargo test -p mstacks-model
    /// bless_preset_tables`. Because the tables are *produced by* `dump`,
    /// parsing them back is field-for-field equal to the constructors by
    /// construction (asserted in `tests/core_tables.rs`).
    #[test]
    fn bless_preset_tables() {
        if std::env::var("MSTACKS_BLESS_CORES").is_err() {
            return;
        }
        for cfg in [
            CoreConfig::broadwell(),
            CoreConfig::knights_landing(),
            CoreConfig::skylake_server(),
        ] {
            let path = format!(
                "{}/../../cores/{}.core",
                env!("CARGO_MANIFEST_DIR"),
                cfg.name
            );
            std::fs::write(&path, dump(&cfg)).unwrap();
        }
    }

    #[test]
    fn presets_roundtrip() {
        for cfg in [
            CoreConfig::broadwell(),
            CoreConfig::knights_landing(),
            CoreConfig::skylake_server(),
        ] {
            roundtrip(&cfg).unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn fuzzed_configs_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0x7AB1E);
        for i in 0..100 {
            let cfg = CoreConfig::fuzz(&mut rng);
            roundtrip(&cfg).unwrap_or_else(|e| panic!("fuzz config {i}: {e}"));
        }
    }

    #[test]
    fn builtins_parse_and_validate() {
        for name in BUILTIN_NAMES {
            let cfg = builtin(name).unwrap_or_else(|| panic!("missing builtin {name}"));
            assert_eq!(cfg.name, name);
            cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(builtin("p4").is_none());
    }

    fn bdw_table() -> String {
        dump(&CoreConfig::broadwell())
    }

    /// Replaces the first line containing `needle` and reports its
    /// 1-based line number.
    fn patch(table: &str, needle: &str, replacement: &str) -> (String, usize) {
        let mut out = Vec::new();
        let mut patched_at = None;
        for (i, l) in table.lines().enumerate() {
            if patched_at.is_none() && l.contains(needle) {
                patched_at = Some(i + 1);
                out.push(replacement.to_string());
            } else {
                out.push(l.to_string());
            }
        }
        (
            out.join("\n"),
            patched_at.unwrap_or_else(|| panic!("needle `{needle}` not found")),
        )
    }

    #[test]
    fn unknown_port_reference_is_line_numbered() {
        let (t, line) = patch(&bdw_table(), "int_div", "int_div   21  no         p9");
        let err = parse(&t).unwrap_err();
        assert_eq!(err.line, Some(line), "{err}");
        assert!(err.to_string().contains("unknown port `p9`"), "{err}");
    }

    #[test]
    fn duplicate_class_row_is_rejected() {
        let (t, line) = patch(
            &bdw_table(),
            "vec_int",
            "vec_int 1 yes p0 p2 p3\nvec_int 1 yes p0",
        );
        let err = parse(&t).unwrap_err();
        assert_eq!(err.line, Some(line + 1), "{err}");
        assert!(err.to_string().contains("duplicate class row"), "{err}");
    }

    #[test]
    fn missing_key_points_at_the_section() {
        let (t, line) = patch(&bdw_table(), "rob_size", "");
        let err = parse(&t).unwrap_err();
        assert!(err.to_string().contains("missing key `rob_size`"), "{err}");
        // Attributed to the [core] section header, which precedes the
        // removed line.
        assert!(err.line.is_some_and(|l| l < line), "{err}");
    }

    #[test]
    fn inconsistent_shared_unit_ports_are_rejected() {
        // `lea` shares the int_alu unit with `int_add`/`nop`; a different
        // port list is unrepresentable in per-unit eligibility.
        let (t, line) = patch(&bdw_table(), "lea", "lea 1 yes p0");
        let err = parse(&t).unwrap_err();
        assert_eq!(err.line, Some(line), "{err}");
        assert!(err.to_string().contains("identical ports"), "{err}");
    }

    #[test]
    fn unreferenced_port_is_rejected() {
        let (t, _) = patch(&bdw_table(), "names = ", "names = p0 p1 p2 p3 p4 p5 p6 p7");
        let err = parse(&t).unwrap_err();
        assert!(err.to_string().contains("no class row references"), "{err}");
    }

    #[test]
    fn engine_model_constraints_are_enforced() {
        let (t, _) = patch(&bdw_table(), "nop", "nop 3 yes p0 p1 p2 p3");
        assert!(parse(&t).unwrap_err().to_string().contains("fixed at 1"));
        let (t, _) = patch(&bdw_table(), "fp_div", "fp_div 13 yes p2 p3");
        assert!(parse(&t).unwrap_err().to_string().contains("unpipelined"));
        let (t, _) = patch(&bdw_table(), "int_mul", "int_mul 3 no p2 p3");
        assert!(parse(&t).unwrap_err().to_string().contains("write `yes`"));
    }

    #[test]
    fn syntax_errors_are_line_numbered() {
        let (t, line) = patch(&bdw_table(), "history_bits", "history_bits 13");
        let err = parse(&t).unwrap_err();
        assert_eq!(err.line, Some(line));
        assert!(err.to_string().contains("key = value"), "{err}");

        let (t, line) = patch(&bdw_table(), "[bpred]", "[bpred");
        let err = parse(&t).unwrap_err();
        assert_eq!(err.line, Some(line));

        let (t, line) = patch(&bdw_table(), "[bpred]", "[btb]");
        let err = parse(&t).unwrap_err();
        assert_eq!(err.line, Some(line));
        assert!(err.to_string().contains("unknown section"), "{err}");

        let (t, line) = patch(&bdw_table(), "stride_degree", "prefetch_degree = 4");
        let err = parse(&t).unwrap_err();
        // The bogus key is flagged as unknown (after the missing real one
        // is reported first — either diagnostic is acceptable, both are
        // attributed to a line).
        assert!(
            err.line == Some(line) || err.to_string().contains("missing key"),
            "{err}"
        );
    }

    #[test]
    fn semantic_validation_still_applies() {
        // A table can be syntactically perfect and still describe an
        // invalid machine; CoreConfig::validate has the last word.
        let (t, _) = patch(&bdw_table(), "rs_size", "rs_size = 100000");
        let err = parse(&t).unwrap_err();
        assert!(err.line.is_none());
        assert!(err.to_string().contains("RS"), "{err}");
    }

    #[test]
    fn size_kb_and_size_bytes_are_equivalent() {
        let (t, _) = patch(&bdw_table(), "size_kb = 32", "size_bytes = 32768");
        assert_eq!(parse(&t).unwrap(), CoreConfig::broadwell());
    }
}
