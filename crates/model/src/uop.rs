//! The micro-op: the unit of work flowing through the simulated pipeline.
//!
//! Workloads are *functional-first* traces (paper §III-B): every micro-op on
//! the correct path is known ahead of timing simulation, including branch
//! outcomes and memory addresses. The pipeline adds timing, wrong-path
//! speculation and resource contention on top.

use crate::reg::ArchReg;

/// Latency class of a scalar integer / address-generation operation.
///
/// Concrete cycle counts come from [`crate::LatencyTable`]; the class only
/// names the operation so that one trace can be simulated under different
/// core configurations (and under the single-cycle-ALU idealization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluClass {
    /// Simple ALU op (add, sub, logic, shifts) — single cycle on all presets.
    Add,
    /// Integer multiply — multi-cycle, pipelined.
    Mul,
    /// Integer divide — long latency, not pipelined.
    Div,
    /// Address arithmetic (LEA-like) — single cycle.
    Lea,
}

/// Control-flow kind of a branch micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Cond,
    /// Unconditional direct jump.
    Uncond,
    /// Call (pushes the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Ret,
    /// Indirect jump through a register (target prediction via BTB only).
    Indirect,
}

/// Functional outcome of a branch, known functional-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch is actually taken.
    pub taken: bool,
    /// Actual target when taken.
    pub target: u64,
    /// Fall-through address (next sequential pc).
    pub fallthrough: u64,
    /// Control-flow kind, used by the predictor (BTB/RAS behaviour).
    pub kind: BranchKind,
}

impl BranchInfo {
    /// The address control flow actually continues at.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        if self.taken {
            self.target
        } else {
            self.fallthrough
        }
    }
}

/// Element type of a vector floating-point operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit single precision.
    F32,
    /// 64-bit double precision.
    F64,
}

impl ElemType {
    /// Width of one element in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            ElemType::F32 => 32,
            ElemType::F64 => 64,
        }
    }
}

/// Arithmetic kind of a vector floating-point operation.
///
/// The FLOPS-stack algorithm (paper Table III) distinguishes fused
/// multiply-add (2 operations per element) from everything else
/// (1 operation per element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOpKind {
    /// Fused multiply-add: two floating-point operations per element.
    Fma,
    /// Vector add/sub: one operation per element.
    Add,
    /// Vector multiply: one operation per element.
    Mul,
    /// Vector divide / sqrt: one operation per element, long latency.
    Div,
    /// Any other FP op (conversions, compares…): one operation per element.
    Other,
}

impl FpOpKind {
    /// Floating-point operations per active element — the paper's `a`
    /// (2 for FMA, 1 otherwise).
    #[inline]
    pub fn ops_per_element(self) -> u32 {
        match self {
            FpOpKind::Fma => 2,
            _ => 1,
        }
    }
}

/// A vector floating-point micro-op payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecFpOp {
    /// Arithmetic kind.
    pub op: FpOpKind,
    /// Number of *unmasked* (active) elements — the paper's `m`. Must be
    /// between 0 and the vector width in elements for the simulated core.
    pub active_lanes: u8,
    /// Element type.
    pub elem: ElemType,
}

impl VecFpOp {
    /// A fully-unmasked FMA over `lanes` elements.
    pub fn fma(lanes: u8, elem: ElemType) -> Self {
        VecFpOp {
            op: FpOpKind::Fma,
            active_lanes: lanes,
            elem,
        }
    }

    /// Floating-point operations this micro-op performs.
    #[inline]
    pub fn flops(&self) -> u64 {
        u64::from(self.op.ops_per_element()) * u64::from(self.active_lanes)
    }
}

/// What a micro-op does, as far as timing simulation is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// No-op: occupies a pipeline slot and an ALU port for one cycle.
    Nop,
    /// Scalar integer / address arithmetic.
    IntAlu(AluClass),
    /// Scalar floating-point arithmetic (non-vector); classified by the same
    /// [`FpOpKind`]. Executes on a vector port but contributes `flops == 0`
    /// to FLOPS stacks (the paper counts *vector* FP only; scalar FP in SPEC
    /// is exactly why SPEC FLOPS is "very low", §IV).
    ScalarFp(FpOpKind),
    /// Conditional or unconditional control flow.
    Branch(BranchInfo),
    /// Memory load from `addr`.
    Load {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// Memory store to `addr`.
    Store {
        /// Virtual byte address accessed.
        addr: u64,
    },
    /// Vector floating-point arithmetic — the subject of FLOPS stacks.
    VecFp(VecFpOp),
    /// Vector integer / shuffle / broadcast work: occupies a vector unit but
    /// performs zero floating-point operations (paper's `non_vfp` component).
    VecInt,
}

impl UopKind {
    /// `true` for loads and stores.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, UopKind::Load { .. } | UopKind::Store { .. })
    }

    /// `true` for loads.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, UopKind::Load { .. })
    }

    /// `true` for branches.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, UopKind::Branch(_))
    }

    /// `true` if this op executes on a vector unit (VFP or vector-integer).
    #[inline]
    pub fn uses_vector_unit(&self) -> bool {
        matches!(
            self,
            UopKind::VecFp(_) | UopKind::VecInt | UopKind::ScalarFp(_)
        )
    }

    /// `true` for vector floating-point ops (the FLOPS-stack `VFP` class).
    #[inline]
    pub fn is_vfp(&self) -> bool {
        matches!(self, UopKind::VecFp(_))
    }
}

/// A micro-op: one entry of the correct-path trace.
///
/// # Example
///
/// ```
/// use mstacks_model::{ArchReg, MicroOp, UopKind};
///
/// let load = MicroOp::new(0x1000, UopKind::Load { addr: 0xdead00 })
///     .with_dst(ArchReg::new(1));
/// let add = MicroOp::new(0x1004, UopKind::IntAlu(mstacks_model::AluClass::Add))
///     .with_src(ArchReg::new(1))
///     .with_dst(ArchReg::new(2));
/// assert!(load.kind.is_load());
/// assert_eq!(add.srcs().collect::<Vec<_>>(), vec![ArchReg::new(1)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    /// Instruction address. Drives the instruction cache and the branch
    /// predictor. Several micro-ops of one macro-instruction may share a pc.
    pub pc: u64,
    /// Operation payload.
    pub kind: UopKind,
    /// Source registers (up to 3; `None` slots are unused).
    pub src_regs: [Option<ArchReg>; 3],
    /// Destination register, if the op produces a value.
    pub dst: Option<ArchReg>,
    /// `true` if this micro-op belongs to a microcoded (multi-µop sequenced)
    /// macro-instruction. On cores with a slow microcode sequencer (KNL
    /// preset) decode stalls for extra cycles, producing the paper's
    /// `Microcode` CPI component (Fig. 3(d)).
    pub microcoded: bool,
}

impl MicroOp {
    /// Creates a micro-op with no register operands.
    pub fn new(pc: u64, kind: UopKind) -> Self {
        MicroOp {
            pc,
            kind,
            src_regs: [None; 3],
            dst: None,
            microcoded: false,
        }
    }

    /// Adds a source register (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the op already has 3 sources.
    pub fn with_src(mut self, reg: ArchReg) -> Self {
        let slot = self
            .src_regs
            .iter_mut()
            .find(|s| s.is_none())
            .expect("micro-op already has 3 source registers");
        *slot = Some(reg);
        self
    }

    /// Sets the destination register (builder style).
    pub fn with_dst(mut self, reg: ArchReg) -> Self {
        self.dst = Some(reg);
        self
    }

    /// Marks the op as part of a microcoded instruction (builder style).
    pub fn microcoded(mut self) -> Self {
        self.microcoded = true;
        self
    }

    /// The source registers that are present, in order.
    pub fn srcs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src_regs.iter().flatten().copied()
    }

    /// Floating-point operations this micro-op performs (vector FP only).
    #[inline]
    pub fn flops(&self) -> u64 {
        match self.kind {
            UopKind::VecFp(v) => v.flops(),
            _ => 0,
        }
    }

    /// Memory address accessed, for loads and stores.
    #[inline]
    pub fn mem_addr(&self) -> Option<u64> {
        match self.kind {
            UopKind::Load { addr } | UopKind::Store { addr } => Some(addr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn builder_fills_src_slots_in_order() {
        let u = MicroOp::new(0, UopKind::Nop)
            .with_src(r(1))
            .with_src(r(2))
            .with_src(r(3));
        assert_eq!(u.srcs().collect::<Vec<_>>(), vec![r(1), r(2), r(3)]);
    }

    #[test]
    #[should_panic(expected = "3 source registers")]
    fn fourth_src_panics() {
        let _ = MicroOp::new(0, UopKind::Nop)
            .with_src(r(1))
            .with_src(r(2))
            .with_src(r(3))
            .with_src(r(4));
    }

    #[test]
    fn fma_counts_two_flops_per_lane() {
        let v = VecFpOp::fma(16, ElemType::F32);
        assert_eq!(v.flops(), 32);
        let u = MicroOp::new(0, UopKind::VecFp(v));
        assert_eq!(u.flops(), 32);
    }

    #[test]
    fn non_fma_counts_one_flop_per_lane() {
        let v = VecFpOp {
            op: FpOpKind::Add,
            active_lanes: 8,
            elem: ElemType::F64,
        };
        assert_eq!(v.flops(), 8);
    }

    #[test]
    fn masked_lanes_reduce_flops() {
        let v = VecFpOp {
            op: FpOpKind::Fma,
            active_lanes: 4,
            elem: ElemType::F32,
        };
        assert_eq!(v.flops(), 8);
    }

    #[test]
    fn scalar_fp_is_not_vfp_but_uses_vector_unit() {
        let u = MicroOp::new(0, UopKind::ScalarFp(FpOpKind::Mul));
        assert!(!u.kind.is_vfp());
        assert!(u.kind.uses_vector_unit());
        assert_eq!(u.flops(), 0);
    }

    #[test]
    fn branch_next_pc() {
        let b = BranchInfo {
            taken: true,
            target: 0x100,
            fallthrough: 0x8,
            kind: BranchKind::Cond,
        };
        assert_eq!(b.next_pc(), 0x100);
        let b2 = BranchInfo { taken: false, ..b };
        assert_eq!(b2.next_pc(), 0x8);
    }

    #[test]
    fn mem_addr_extraction() {
        assert_eq!(
            MicroOp::new(0, UopKind::Load { addr: 0x40 }).mem_addr(),
            Some(0x40)
        );
        assert_eq!(
            MicroOp::new(0, UopKind::Store { addr: 0x80 }).mem_addr(),
            Some(0x80)
        );
        assert_eq!(MicroOp::new(0, UopKind::Nop).mem_addr(), None);
    }
}
