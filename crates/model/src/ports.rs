//! Execution-port model.
//!
//! Each simulated core has a set of issue ports; every cycle each port can
//! accept at most one micro-op whose resource class the port supports.
//! Structural stalls at the issue stage (the paper's `Other` component,
//! §V-A) arise when ready micro-ops exist but no capable port is free.

/// Port capability bits. A port's capability set is the bitwise OR of the
/// operations it can start.
pub mod caps {
    /// Simple integer ALU (add/logic/shift, also NOP slots).
    pub const INT_ALU: u16 = 1 << 0;
    /// Integer multiplier.
    pub const INT_MUL: u16 = 1 << 1;
    /// Integer divider (not pipelined).
    pub const INT_DIV: u16 = 1 << 2;
    /// Branch resolution unit.
    pub const BRANCH: u16 = 1 << 3;
    /// Load pipe (address generation + L1D access).
    pub const LOAD: u16 = 1 << 4;
    /// Store pipe.
    pub const STORE: u16 = 1 << 5;
    /// Vector floating-point unit (VPU) — FMA capable.
    pub const VEC_FP: u16 = 1 << 6;
    /// Vector integer / shuffle / broadcast unit.
    pub const VEC_INT: u16 = 1 << 7;

    /// Every defined capability bit. Bits outside this mask reference a
    /// functional unit that does not exist — [`CoreConfig::validate`]
    /// rejects them.
    ///
    /// [`CoreConfig::validate`]: crate::CoreConfig::validate
    pub const ALL: u16 = INT_ALU | INT_MUL | INT_DIV | BRANCH | LOAD | STORE | VEC_FP | VEC_INT;
}

/// Static description of one execution port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortSpec {
    /// Bitwise OR of [`caps`] flags.
    pub caps: u16,
}

impl PortSpec {
    /// A port with the given capability mask.
    pub fn new(caps: u16) -> Self {
        PortSpec { caps }
    }

    /// Whether this port can start an op of resource class `cap`.
    #[inline]
    pub fn supports(&self, cap: u16) -> bool {
        self.caps & cap != 0
    }

    /// Whether this port hosts a vector floating-point unit.
    #[inline]
    pub fn is_vpu(&self) -> bool {
        self.supports(caps::VEC_FP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supports_checks_mask() {
        let p = PortSpec::new(caps::INT_ALU | caps::BRANCH);
        assert!(p.supports(caps::INT_ALU));
        assert!(p.supports(caps::BRANCH));
        assert!(!p.supports(caps::LOAD));
        assert!(!p.is_vpu());
    }

    #[test]
    fn vpu_detection() {
        assert!(PortSpec::new(caps::VEC_FP | caps::VEC_INT).is_vpu());
    }
}
