//! Micro-architectural model types shared by the `mstacks` simulator stack.
//!
//! This crate defines the vocabulary of the whole project:
//!
//! * [`MicroOp`] and [`UopKind`] — the trace-level unit of work. Workload
//!   generators produce streams of micro-ops; the pipeline simulates their
//!   timing.
//! * [`ArchReg`] — architectural register names used for dependence tracking.
//! * [`CoreConfig`] and its sub-configurations — every parameter of a
//!   simulated core (widths, structure sizes, execution ports, latencies,
//!   branch predictor and memory hierarchy geometry), plus the three paper
//!   presets: [`CoreConfig::broadwell`], [`CoreConfig::knights_landing`] and
//!   [`CoreConfig::skylake_server`].
//! * [`IdealFlags`] — the idealization knobs used throughout the ISPASS 2018
//!   evaluation (perfect instruction cache, perfect data cache, perfect
//!   branch prediction, single-cycle ALU).
//!
//! # Example
//!
//! ```
//! use mstacks_model::{CoreConfig, IdealFlags, MicroOp, UopKind};
//!
//! let cfg = CoreConfig::broadwell();
//! assert_eq!(cfg.dispatch_width, 4);
//! // Accounting width is the minimum over all stage widths (paper §III-A).
//! assert_eq!(cfg.accounting_width(), 4);
//!
//! let ideal = IdealFlags::none().with_perfect_dcache();
//! assert!(ideal.perfect_dcache);
//!
//! let nop = MicroOp::new(0x400000, UopKind::Nop);
//! assert!(nop.dst.is_none());
//! ```

pub mod classes;
pub mod config;
pub mod coretab;
pub mod fuzz;
pub mod ideal;
pub mod ports;
pub mod reg;
pub mod rng;
pub mod sample;
pub mod uop;

pub use classes::{ClassSpec, ClassTable, UopClass, UOP_CLASSES};
pub use config::{
    BpredConfig, CacheConfig, ConfigError, CoreConfig, LatencyTable, MemConfig, PrefetchConfig,
    TlbConfig,
};
pub use coretab::TableError;
pub use ideal::{IdealFlags, IdealKind, IDEAL_KINDS};
pub use ports::{caps, PortSpec};
pub use reg::ArchReg;
pub use rng::SmallRng;
pub use sample::WarmSink;
pub use uop::{AluClass, BranchInfo, BranchKind, ElemType, FpOpKind, MicroOp, UopKind, VecFpOp};

/// Why the frontend is currently unable to deliver micro-ops.
///
/// The Table II algorithms inspect this when a stage stalls on an empty
/// upstream structure ("`if FE empty: if Icache miss ... elif bpred miss`").
/// The `Microcode` variant corresponds to the extra component the paper
/// introduces for KNL in Fig. 3(d): multi-micro-operation instructions that
/// take several cycles to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontendStall {
    /// An instruction-cache (or ITLB) miss is outstanding.
    Icache,
    /// The frontend is squashed / refilling after a branch misprediction.
    Bpred,
    /// The decoder is busy sequencing a microcoded instruction.
    Microcode,
}

impl std::fmt::Display for FrontendStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendStall::Icache => write!(f, "icache"),
            FrontendStall::Bpred => write!(f, "bpred"),
            FrontendStall::Microcode => write!(f, "microcode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_stall_display() {
        assert_eq!(FrontendStall::Icache.to_string(), "icache");
        assert_eq!(FrontendStall::Bpred.to_string(), "bpred");
        assert_eq!(FrontendStall::Microcode.to_string(), "microcode");
    }
}
