//! Declarative µop-class model: the tabular form of a core's execution
//! resources.
//!
//! uops.info (Abel & Reineke) demonstrates that per-instruction
//! latency/throughput/port-usage data is naturally *tabular*: one row per
//! operation class with a latency, a pipelining flag and a set of eligible
//! ports. This module gives the simulator that representation. Every
//! micro-op kind maps onto one of [`UopClass::COUNT`] classes
//! ([`UopClass::of`]), and a [`ClassTable`] holds one [`ClassSpec`] row
//! per class — derived from a [`CoreConfig`]'s port capabilities and
//! latency table by [`ClassTable::from_parts`], or parsed from a `.core`
//! table file by [`crate::coretab`].
//!
//! The pipeline's port allocator and latency lookup consume the
//! [`ClassTable`] (not the raw capability bits), so a core loaded from a
//! table file drives the engine through exactly the same data path as a
//! built-in preset. The derivation preserves the engine's historical
//! semantics bit-for-bit: `Nop` and `Load` execute in 1 cycle (address
//! generation; the memory hierarchy adds the rest of a load's latency),
//! `FpOpKind::Other` prices as an FP add, and only the divide classes are
//! unpipelined.

use crate::config::{CoreConfig, LatencyTable};
use crate::ports::{caps, PortSpec};
use crate::uop::{AluClass, FpOpKind, UopKind, VecFpOp};

/// One row key of the class table: the µop classes the machine model
/// distinguishes for port binding and execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopClass {
    /// No-op (still occupies an issue slot and an ALU port).
    Nop,
    /// Simple integer ALU op.
    IntAdd,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined).
    IntDiv,
    /// Address arithmetic.
    Lea,
    /// Branch resolution.
    Branch,
    /// Load address generation (the hierarchy adds the access latency).
    Load,
    /// Store execution.
    Store,
    /// Scalar/vector FP add (also prices `FpOpKind::Other`).
    FpAdd,
    /// Scalar/vector FP multiply.
    FpMul,
    /// Scalar/vector fused multiply-add.
    FpFma,
    /// Scalar/vector FP divide (unpipelined).
    FpDiv,
    /// Vector integer / shuffle / broadcast.
    VecInt,
}

/// All classes, in canonical table-row order.
pub const UOP_CLASSES: [UopClass; UopClass::COUNT] = [
    UopClass::Nop,
    UopClass::IntAdd,
    UopClass::IntMul,
    UopClass::IntDiv,
    UopClass::Lea,
    UopClass::Branch,
    UopClass::Load,
    UopClass::Store,
    UopClass::FpAdd,
    UopClass::FpMul,
    UopClass::FpFma,
    UopClass::FpDiv,
    UopClass::VecInt,
];

impl UopClass {
    /// Number of µop classes.
    pub const COUNT: usize = 13;

    /// The class of a micro-op kind.
    pub fn of(kind: &UopKind) -> UopClass {
        match kind {
            UopKind::Nop => UopClass::Nop,
            UopKind::IntAlu(AluClass::Add) => UopClass::IntAdd,
            UopKind::IntAlu(AluClass::Mul) => UopClass::IntMul,
            UopKind::IntAlu(AluClass::Div) => UopClass::IntDiv,
            UopKind::IntAlu(AluClass::Lea) => UopClass::Lea,
            UopKind::Branch(_) => UopClass::Branch,
            UopKind::Load { .. } => UopClass::Load,
            UopKind::Store { .. } => UopClass::Store,
            UopKind::ScalarFp(op) | UopKind::VecFp(VecFpOp { op, .. }) => match op {
                FpOpKind::Add | FpOpKind::Other => UopClass::FpAdd,
                FpOpKind::Mul => UopClass::FpMul,
                FpOpKind::Fma => UopClass::FpFma,
                FpOpKind::Div => UopClass::FpDiv,
            },
            UopKind::VecInt => UopClass::VecInt,
        }
    }

    /// Dense index into per-class arrays (row order of [`UOP_CLASSES`]).
    pub fn index(self) -> usize {
        UOP_CLASSES
            .iter()
            .position(|&c| c == self)
            .expect("every class is listed")
    }

    /// The port-capability bit an op of this class requires.
    pub fn cap(self) -> u16 {
        match self {
            UopClass::Nop | UopClass::IntAdd | UopClass::Lea => caps::INT_ALU,
            UopClass::IntMul => caps::INT_MUL,
            UopClass::IntDiv => caps::INT_DIV,
            UopClass::Branch => caps::BRANCH,
            UopClass::Load => caps::LOAD,
            UopClass::Store => caps::STORE,
            UopClass::FpAdd | UopClass::FpMul | UopClass::FpFma | UopClass::FpDiv => caps::VEC_FP,
            UopClass::VecInt => caps::VEC_INT,
        }
    }

    /// Table-row name of this class (the `.core` file spelling).
    pub fn name(self) -> &'static str {
        match self {
            UopClass::Nop => "nop",
            UopClass::IntAdd => "int_add",
            UopClass::IntMul => "int_mul",
            UopClass::IntDiv => "int_div",
            UopClass::Lea => "lea",
            UopClass::Branch => "branch",
            UopClass::Load => "load",
            UopClass::Store => "store",
            UopClass::FpAdd => "fp_add",
            UopClass::FpMul => "fp_mul",
            UopClass::FpFma => "fp_fma",
            UopClass::FpDiv => "fp_div",
            UopClass::VecInt => "vec_int",
        }
    }

    /// Inverse of [`UopClass::name`].
    pub fn from_name(s: &str) -> Option<UopClass> {
        UOP_CLASSES.iter().copied().find(|c| c.name() == s)
    }
}

impl std::fmt::Display for UopClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the class table: how ops of one class execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSpec {
    /// Execution latency in cycles.
    pub latency: u32,
    /// `false` when an op blocks its port for the full latency.
    pub pipelined: bool,
    /// Eligible ports as a bitmask over port indices (bit `i` = the
    /// `i`-th port of the core can execute this class).
    pub port_mask: u32,
}

impl ClassSpec {
    /// Port indices in the mask, in issue-priority (ascending) order.
    pub fn ports(&self) -> impl Iterator<Item = usize> + '_ {
        (0..u32::BITS as usize).filter(|&i| self.port_mask >> i & 1 == 1)
    }
}

/// The declarative execution model of one core: a [`ClassSpec`] per µop
/// class, plus the port count and the vector-unit port mask. This is what
/// the pipeline's port allocator and latency lookup consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassTable {
    specs: [ClassSpec; UopClass::COUNT],
    n_ports: usize,
    vpu_mask: u32,
}

impl ClassTable {
    /// Derives the table from a port list and a latency table, preserving
    /// the engine's historical semantics exactly: a class may issue on
    /// every port supporting its capability bit, `Nop`/`Load` execute in
    /// 1 cycle, and only the divide classes are unpipelined.
    pub fn from_parts(ports: &[PortSpec], lat: &LatencyTable) -> Self {
        assert!(
            ports.len() <= u32::BITS as usize,
            "at most 32 execution ports supported"
        );
        let mask_for = |cap: u16| -> u32 {
            ports
                .iter()
                .enumerate()
                .filter(|(_, p)| p.supports(cap))
                .fold(0u32, |m, (i, _)| m | 1 << i)
        };
        let mut specs = [ClassSpec {
            latency: 0,
            pipelined: true,
            port_mask: 0,
        }; UopClass::COUNT];
        for c in UOP_CLASSES {
            specs[c.index()] = ClassSpec {
                latency: match c {
                    UopClass::Nop | UopClass::Load => 1,
                    UopClass::IntAdd => lat.int_add,
                    UopClass::IntMul => lat.int_mul,
                    UopClass::IntDiv => lat.int_div,
                    UopClass::Lea => lat.lea,
                    UopClass::Branch => lat.branch,
                    UopClass::Store => lat.store,
                    UopClass::FpAdd => lat.fp_add,
                    UopClass::FpMul => lat.fp_mul,
                    UopClass::FpFma => lat.fp_fma,
                    UopClass::FpDiv => lat.fp_div,
                    UopClass::VecInt => lat.vec_int,
                },
                pipelined: !matches!(c, UopClass::IntDiv | UopClass::FpDiv),
                port_mask: mask_for(c.cap()),
            };
        }
        ClassTable {
            specs,
            n_ports: ports.len(),
            vpu_mask: mask_for(caps::VEC_FP),
        }
    }

    /// The row for class `c`.
    pub fn spec(&self, c: UopClass) -> ClassSpec {
        self.specs[c.index()]
    }

    /// Execution latency for a micro-op kind (identical to
    /// [`LatencyTable::exec_latency`] on derived tables).
    pub fn latency_of(&self, kind: &UopKind) -> u32 {
        self.specs[UopClass::of(kind).index()].latency
    }

    /// Number of execution ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Bitmask of ports hosting a vector FP unit.
    pub fn vpu_mask(&self) -> u32 {
        self.vpu_mask
    }

    /// Whether port `idx` hosts a vector FP unit.
    pub fn is_vpu_port(&self, idx: usize) -> bool {
        self.vpu_mask >> idx & 1 == 1
    }
}

impl CoreConfig {
    /// The declarative class table this configuration induces — the form
    /// the pipeline's port allocator and latency lookup consume.
    pub fn class_table(&self) -> ClassTable {
        ClassTable::from_parts(&self.ports, &self.lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::ElemType;

    #[test]
    fn every_kind_maps_to_a_class() {
        let kinds = [
            UopKind::Nop,
            UopKind::IntAlu(AluClass::Add),
            UopKind::IntAlu(AluClass::Mul),
            UopKind::IntAlu(AluClass::Div),
            UopKind::IntAlu(AluClass::Lea),
            UopKind::Load { addr: 0 },
            UopKind::Store { addr: 0 },
            UopKind::ScalarFp(FpOpKind::Other),
            UopKind::VecFp(VecFpOp::fma(8, ElemType::F32)),
            UopKind::VecInt,
        ];
        for k in &kinds {
            let c = UopClass::of(k);
            assert_eq!(UOP_CLASSES[c.index()], c);
            assert_eq!(UopClass::from_name(c.name()), Some(c));
        }
        // `Other` prices as an FP add — same class.
        assert_eq!(
            UopClass::of(&UopKind::ScalarFp(FpOpKind::Other)),
            UopClass::FpAdd
        );
    }

    #[test]
    fn derived_table_matches_latency_table() {
        let cfg = CoreConfig::broadwell();
        let table = cfg.class_table();
        for kind in [
            UopKind::Nop,
            UopKind::IntAlu(AluClass::Div),
            UopKind::Load { addr: 64 },
            UopKind::Store { addr: 64 },
            UopKind::ScalarFp(FpOpKind::Fma),
            UopKind::ScalarFp(FpOpKind::Other),
            UopKind::VecInt,
        ] {
            assert_eq!(table.latency_of(&kind), cfg.lat.exec_latency(&kind));
        }
    }

    #[test]
    fn only_divides_are_unpipelined() {
        let table = CoreConfig::skylake_server().class_table();
        for c in UOP_CLASSES {
            let want_unpipelined = matches!(c, UopClass::IntDiv | UopClass::FpDiv);
            assert_eq!(table.spec(c).pipelined, !want_unpipelined, "{c}");
        }
    }

    #[test]
    fn port_masks_follow_capabilities() {
        let cfg = CoreConfig::broadwell();
        let table = cfg.class_table();
        // BDW ports: p5, p6, p0, p1, load, load, store (vec order 0..6).
        assert_eq!(table.n_ports(), 7);
        assert_eq!(table.spec(UopClass::IntAdd).port_mask, 0b000_1111);
        assert_eq!(table.spec(UopClass::Branch).port_mask, 0b000_0010);
        assert_eq!(table.spec(UopClass::Load).port_mask, 0b011_0000);
        assert_eq!(table.spec(UopClass::Store).port_mask, 0b100_0000);
        assert_eq!(table.spec(UopClass::FpFma).port_mask, 0b000_1100);
        assert_eq!(table.vpu_mask(), 0b000_1100);
        assert!(table.is_vpu_port(2) && !table.is_vpu_port(0));
        let fma_ports: Vec<usize> = table.spec(UopClass::FpFma).ports().collect();
        assert_eq!(fma_ports, vec![2, 3]);
    }
}
