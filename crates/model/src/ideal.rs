//! Idealization knobs.
//!
//! The paper validates CPI-stack components by re-simulating with one
//! structure made perfect and comparing the measured CPI reduction against
//! the predicted component (Table I, Fig. 2, Fig. 3). These flags select
//! which structures are idealized in a run.

/// One idealizable structure — the unit the combination tests and the
/// metamorphic fuzz harness enumerate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdealKind {
    /// Perfect L1 instruction cache.
    Icache,
    /// Perfect L1 data cache.
    Dcache,
    /// Perfect branch direction + target prediction.
    Bpred,
    /// Single-cycle ALU/FP arithmetic.
    Alu,
}

/// All idealizable structures, in canonical order (the bit order of
/// [`IdealFlags::bits`]).
pub const IDEAL_KINDS: [IdealKind; 4] = [
    IdealKind::Icache,
    IdealKind::Dcache,
    IdealKind::Bpred,
    IdealKind::Alu,
];

/// Which micro-architectural structures are made perfect in a simulation.
///
/// Composition is a set union: every builder sets an independent flag, so
/// flags compose in **any order** to the same value — the combination test
/// suite (`tests/ideal_combinations.rs`) pins this down for all 16 subsets.
///
/// # Example
///
/// ```
/// use mstacks_model::IdealFlags;
///
/// let i = IdealFlags::none().with_perfect_bpred().with_perfect_dcache();
/// assert!(i.perfect_bpred && i.perfect_dcache);
/// assert!(!i.perfect_icache);
/// // Order never matters:
/// assert_eq!(i, IdealFlags::none().with_perfect_dcache().with_perfect_bpred());
/// assert_eq!(i.to_string(), "perfect-dcache+perfect-bpred");
/// assert_eq!(IdealFlags::none().to_string(), "baseline");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct IdealFlags {
    /// Every instruction fetch hits in the L1 I-cache.
    pub perfect_icache: bool,
    /// Every data access hits in the L1 D-cache.
    pub perfect_dcache: bool,
    /// Every branch direction *and* target is predicted correctly.
    pub perfect_bpred: bool,
    /// All arithmetic and logic operations complete in one cycle
    /// (the paper's "1-cycle ALU"; loads keep their cache latency).
    pub single_cycle_alu: bool,
}

impl IdealFlags {
    /// No idealization: the realistic baseline configuration.
    pub fn none() -> Self {
        IdealFlags::default()
    }

    /// Every structure idealized at once (the "perfect everything" run).
    pub fn all() -> Self {
        IdealFlags::from_bits(0xF)
    }

    /// Enables the structure named by `kind` (builder style). The generic
    /// entry point behind the four named builders; composition is a set
    /// union, so call order is irrelevant.
    pub fn with(mut self, kind: IdealKind) -> Self {
        match kind {
            IdealKind::Icache => self.perfect_icache = true,
            IdealKind::Dcache => self.perfect_dcache = true,
            IdealKind::Bpred => self.perfect_bpred = true,
            IdealKind::Alu => self.single_cycle_alu = true,
        }
        self
    }

    /// Disables the structure named by `kind` (builder style) — used by the
    /// combination tests to compare a flag set against the same set minus
    /// one member.
    pub fn without(mut self, kind: IdealKind) -> Self {
        match kind {
            IdealKind::Icache => self.perfect_icache = false,
            IdealKind::Dcache => self.perfect_dcache = false,
            IdealKind::Bpred => self.perfect_bpred = false,
            IdealKind::Alu => self.single_cycle_alu = false,
        }
        self
    }

    /// Whether the structure named by `kind` is idealized.
    pub fn has(&self, kind: IdealKind) -> bool {
        match kind {
            IdealKind::Icache => self.perfect_icache,
            IdealKind::Dcache => self.perfect_dcache,
            IdealKind::Bpred => self.perfect_bpred,
            IdealKind::Alu => self.single_cycle_alu,
        }
    }

    /// Set union of two flag values.
    pub fn union(self, other: IdealFlags) -> Self {
        IdealFlags::from_bits(self.bits() | other.bits())
    }

    /// Dense bit encoding in [`IDEAL_KINDS`] order (bit 0 = icache, …,
    /// bit 3 = ALU).
    pub fn bits(&self) -> u8 {
        IDEAL_KINDS
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &k)| acc | (u8::from(self.has(k)) << i))
    }

    /// Decodes [`IdealFlags::bits`]; bits above 3 are ignored.
    pub fn from_bits(bits: u8) -> Self {
        IDEAL_KINDS
            .iter()
            .enumerate()
            .filter(|&(i, _)| bits & (1 << i) != 0)
            .fold(IdealFlags::none(), |f, (_, &k)| f.with(k))
    }

    /// All 16 flag combinations, in [`IdealFlags::bits`] order (baseline
    /// first, everything-perfect last).
    pub fn combinations() -> impl Iterator<Item = IdealFlags> {
        (0u8..16).map(IdealFlags::from_bits)
    }

    /// Enables a perfect instruction cache (builder style).
    pub fn with_perfect_icache(self) -> Self {
        self.with(IdealKind::Icache)
    }

    /// Enables a perfect data cache (builder style).
    pub fn with_perfect_dcache(self) -> Self {
        self.with(IdealKind::Dcache)
    }

    /// Enables perfect branch (direction + target) prediction (builder style).
    pub fn with_perfect_bpred(self) -> Self {
        self.with(IdealKind::Bpred)
    }

    /// Makes all ALU/FP arithmetic single-cycle (builder style).
    pub fn with_single_cycle_alu(self) -> Self {
        self.with(IdealKind::Alu)
    }

    /// `true` if no structure is idealized.
    pub fn is_baseline(&self) -> bool {
        *self == IdealFlags::default()
    }
}

impl std::fmt::Display for IdealKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdealKind::Icache => write!(f, "perfect-icache"),
            IdealKind::Dcache => write!(f, "perfect-dcache"),
            IdealKind::Bpred => write!(f, "perfect-bpred"),
            IdealKind::Alu => write!(f, "1-cycle-alu"),
        }
    }
}

impl std::fmt::Display for IdealFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_baseline() {
            return write!(f, "baseline");
        }
        let parts: Vec<String> = IDEAL_KINDS
            .iter()
            .filter(|&&k| self.has(k))
            .map(ToString::to_string)
            .collect();
        write!(f, "{}", parts.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_default() {
        assert!(IdealFlags::none().is_baseline());
        assert!(!IdealFlags::none().with_perfect_icache().is_baseline());
    }

    #[test]
    fn display_lists_all_flags() {
        let all = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_dcache()
            .with_perfect_bpred()
            .with_single_cycle_alu();
        assert_eq!(
            all.to_string(),
            "perfect-icache+perfect-dcache+perfect-bpred+1-cycle-alu"
        );
        assert_eq!(all, IdealFlags::all());
    }

    #[test]
    fn bits_roundtrip_all_16() {
        for bits in 0u8..16 {
            let f = IdealFlags::from_bits(bits);
            assert_eq!(f.bits(), bits);
        }
        let combos: Vec<IdealFlags> = IdealFlags::combinations().collect();
        assert_eq!(combos.len(), 16);
        assert!(combos[0].is_baseline());
        assert_eq!(combos[15], IdealFlags::all());
    }

    #[test]
    fn composition_is_order_independent() {
        // Every permutation of every subset lands on the same value.
        for bits in 0u8..16 {
            let kinds: Vec<IdealKind> = IDEAL_KINDS
                .iter()
                .enumerate()
                .filter(|&(i, _)| bits & (1 << i) != 0)
                .map(|(_, &k)| k)
                .collect();
            let forward = kinds.iter().fold(IdealFlags::none(), |f, &k| f.with(k));
            let backward = kinds
                .iter()
                .rev()
                .fold(IdealFlags::none(), |f, &k| f.with(k));
            assert_eq!(forward, backward, "subset {bits:#06b}");
            assert_eq!(forward, IdealFlags::from_bits(bits));
        }
    }

    #[test]
    fn with_without_and_union() {
        let f = IdealFlags::all().without(IdealKind::Bpred);
        assert!(!f.perfect_bpred);
        assert!(f.perfect_icache && f.perfect_dcache && f.single_cycle_alu);
        assert_eq!(f.with(IdealKind::Bpred), IdealFlags::all());
        let a = IdealFlags::none().with(IdealKind::Icache);
        let b = IdealFlags::none().with(IdealKind::Alu);
        assert_eq!(a.union(b).bits(), a.bits() | b.bits());
        assert_eq!(a.union(b), b.union(a));
    }
}
