//! Idealization knobs.
//!
//! The paper validates CPI-stack components by re-simulating with one
//! structure made perfect and comparing the measured CPI reduction against
//! the predicted component (Table I, Fig. 2, Fig. 3). These flags select
//! which structures are idealized in a run.

/// Which micro-architectural structures are made perfect in a simulation.
///
/// # Example
///
/// ```
/// use mstacks_model::IdealFlags;
///
/// let i = IdealFlags::none().with_perfect_bpred().with_perfect_dcache();
/// assert!(i.perfect_bpred && i.perfect_dcache);
/// assert!(!i.perfect_icache);
/// assert_eq!(i.to_string(), "perfect-dcache+perfect-bpred");
/// assert_eq!(IdealFlags::none().to_string(), "baseline");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct IdealFlags {
    /// Every instruction fetch hits in the L1 I-cache.
    pub perfect_icache: bool,
    /// Every data access hits in the L1 D-cache.
    pub perfect_dcache: bool,
    /// Every branch direction *and* target is predicted correctly.
    pub perfect_bpred: bool,
    /// All arithmetic and logic operations complete in one cycle
    /// (the paper's "1-cycle ALU"; loads keep their cache latency).
    pub single_cycle_alu: bool,
}

impl IdealFlags {
    /// No idealization: the realistic baseline configuration.
    pub fn none() -> Self {
        IdealFlags::default()
    }

    /// Enables a perfect instruction cache (builder style).
    pub fn with_perfect_icache(mut self) -> Self {
        self.perfect_icache = true;
        self
    }

    /// Enables a perfect data cache (builder style).
    pub fn with_perfect_dcache(mut self) -> Self {
        self.perfect_dcache = true;
        self
    }

    /// Enables perfect branch (direction + target) prediction (builder style).
    pub fn with_perfect_bpred(mut self) -> Self {
        self.perfect_bpred = true;
        self
    }

    /// Makes all ALU/FP arithmetic single-cycle (builder style).
    pub fn with_single_cycle_alu(mut self) -> Self {
        self.single_cycle_alu = true;
        self
    }

    /// `true` if no structure is idealized.
    pub fn is_baseline(&self) -> bool {
        *self == IdealFlags::default()
    }
}

impl std::fmt::Display for IdealFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_baseline() {
            return write!(f, "baseline");
        }
        let mut parts = Vec::new();
        if self.perfect_icache {
            parts.push("perfect-icache");
        }
        if self.perfect_dcache {
            parts.push("perfect-dcache");
        }
        if self.perfect_bpred {
            parts.push("perfect-bpred");
        }
        if self.single_cycle_alu {
            parts.push("1-cycle-alu");
        }
        write!(f, "{}", parts.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_default() {
        assert!(IdealFlags::none().is_baseline());
        assert!(!IdealFlags::none().with_perfect_icache().is_baseline());
    }

    #[test]
    fn display_lists_all_flags() {
        let all = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_dcache()
            .with_perfect_bpred()
            .with_single_cycle_alu();
        assert_eq!(
            all.to_string(),
            "perfect-icache+perfect-dcache+perfect-bpred+1-cycle-alu"
        );
    }
}
