//! Core configuration: every parameter of a simulated core.
//!
//! Three presets mirror the paper's evaluation platforms (§IV): an Intel
//! Broadwell-inspired 4-wide core ([`CoreConfig::broadwell`]), a Knights
//! Landing-inspired 2-wide core ([`CoreConfig::knights_landing`]) and a
//! Skylake-server-inspired 4-wide AVX-512 core
//! ([`CoreConfig::skylake_server`]). As in the paper, uncore resources
//! (shared cache capacity, memory bandwidth) are divided by the socket core
//! count to mimic a fully loaded processor.

use crate::ports::{caps, PortSpec};
use crate::uop::{AluClass, FpOpKind, UopKind};

/// Error returned when a [`CoreConfig`] fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid core configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Access latency in cycles (added on a hit at this level).
    pub latency: u32,
    /// Miss-status-holding registers: maximum outstanding misses.
    pub mshrs: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.assoc)
    }
}

/// TLB configuration (page size is fixed at 4 KiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Associativity (entries/assoc must be a power of two).
    pub assoc: u32,
    /// Page-walk latency in cycles charged on a miss.
    pub walk_cycles: u32,
}

impl TlbConfig {
    /// A TLB that never stalls (entries cover everything cheaply).
    pub fn free() -> Self {
        TlbConfig {
            entries: 16,
            assoc: 4,
            walk_cycles: 0,
        }
    }
}

/// Hardware-prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Enable the per-PC stride prefetcher on L1D misses.
    pub stride_enabled: bool,
    /// Prefetch degree: lines fetched ahead on a confident stride.
    pub stride_degree: u32,
    /// Confidence threshold (consecutive same-stride observations) before
    /// prefetching starts.
    pub stride_threshold: u32,
    /// Enable the L2 next-line prefetcher.
    pub next_line_enabled: bool,
}

impl PrefetchConfig {
    /// Prefetching fully disabled.
    pub fn disabled() -> Self {
        PrefetchConfig {
            stride_enabled: false,
            stride_degree: 0,
            stride_threshold: 2,
            next_line_enabled: false,
        }
    }
}

/// Builds the memory hierarchy shared by every preset: the L1 geometry
/// and prefetcher setup are identical across BDW/KNL/SKX (32 KiB 8-way
/// L1s, stride + next-line prefetching); only the L1D MSHR depth, the
/// outer levels, DRAM timing and the TLBs differ per core. Table files
/// (`cores/*.core`) spell out every field; this helper is the single
/// construction path the hand-written presets map onto.
fn preset_mem(
    l1d_mshrs: u32,
    l2: CacheConfig,
    l3: Option<CacheConfig>,
    dram_latency: u32,
    dram_bytes_per_cycle: f64,
    itlb: TlbConfig,
    dtlb: TlbConfig,
) -> MemConfig {
    MemConfig {
        l1i: CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        },
        l1d: CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 4,
            mshrs: l1d_mshrs,
        },
        l2,
        l3,
        dram_latency,
        dram_bytes_per_cycle,
        prefetch: PrefetchConfig {
            stride_enabled: true,
            stride_degree: 4,
            stride_threshold: 2,
            next_line_enabled: true,
        },
        itlb,
        dtlb,
    }
}

/// The server-class TLB pair shared by the BDW and SKX presets.
fn server_tlbs() -> (TlbConfig, TlbConfig) {
    (
        TlbConfig {
            entries: 128,
            assoc: 4,
            walk_cycles: 20,
        },
        TlbConfig {
            entries: 64,
            assoc: 4,
            walk_cycles: 26,
        },
    )
}

/// Memory-hierarchy configuration: three or four levels plus DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 (instructions + data — source of the paper's Fig. 3(b)
    /// second-order coupling).
    pub l2: CacheConfig,
    /// Shared last-level cache slice (per core); `None` on KNL-style parts.
    pub l3: Option<CacheConfig>,
    /// Main-memory access latency in cycles (beyond the last cache level).
    pub dram_latency: u32,
    /// Main-memory bandwidth available to this core, in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Prefetcher setup.
    pub prefetch: PrefetchConfig,
    /// Instruction TLB (misses fold into the Icache component, §III).
    pub itlb: TlbConfig,
    /// Data TLB (misses fold into the Dcache component, §III).
    pub dtlb: TlbConfig,
}

/// Branch-predictor configuration (gshare + BTB + RAS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Global history length in bits (also log2 of the PHT size).
    pub history_bits: u32,
    /// log2 of the number of BTB sets.
    pub btb_sets_log2: u32,
    /// BTB associativity.
    pub btb_ways: u32,
    /// Return-address-stack depth.
    pub ras_entries: u32,
}

/// Operation latencies in cycles.
///
/// The single-cycle-ALU idealization replaces every arithmetic latency here
/// by 1 (loads keep their cache latency; that is the paper's definition in
/// §IV: "all arithmetic and logic instructions complete in 1 cycle").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// Simple integer ALU.
    pub int_add: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide (not pipelined).
    pub int_div: u32,
    /// Address arithmetic.
    pub lea: u32,
    /// Branch resolution.
    pub branch: u32,
    /// FP / vector add.
    pub fp_add: u32,
    /// FP / vector multiply.
    pub fp_mul: u32,
    /// FP / vector fused multiply-add.
    pub fp_fma: u32,
    /// FP / vector divide (not pipelined).
    pub fp_div: u32,
    /// Vector integer / shuffle / broadcast.
    pub vec_int: u32,
    /// Store execution (address + data ready to forward).
    pub store: u32,
}

impl LatencyTable {
    /// Latency of a micro-op under this table, before idealization.
    ///
    /// Loads are *not* covered here: their latency comes from the memory
    /// hierarchy.
    pub fn exec_latency(&self, kind: &UopKind) -> u32 {
        match kind {
            UopKind::Nop => 1,
            UopKind::IntAlu(c) => match c {
                AluClass::Add => self.int_add,
                AluClass::Mul => self.int_mul,
                AluClass::Div => self.int_div,
                AluClass::Lea => self.lea,
            },
            UopKind::Branch(_) => self.branch,
            UopKind::ScalarFp(op) | UopKind::VecFp(crate::uop::VecFpOp { op, .. }) => match op {
                FpOpKind::Fma => self.fp_fma,
                FpOpKind::Add => self.fp_add,
                FpOpKind::Mul => self.fp_mul,
                FpOpKind::Div => self.fp_div,
                FpOpKind::Other => self.fp_add,
            },
            UopKind::VecInt => self.vec_int,
            UopKind::Store { .. } => self.store,
            UopKind::Load { .. } => 1, // address generation; memory adds the rest
        }
    }

    /// Whether an op of this kind blocks its port for the full latency
    /// (non-pipelined execution).
    pub fn is_unpipelined(&self, kind: &UopKind) -> bool {
        matches!(kind, UopKind::IntAlu(AluClass::Div))
            || matches!(
                kind,
                UopKind::ScalarFp(FpOpKind::Div)
                    | UopKind::VecFp(crate::uop::VecFpOp {
                        op: FpOpKind::Div,
                        ..
                    })
            )
    }
}

/// Complete configuration of one simulated core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Human-readable name ("bdw", "knl", "skx", …).
    pub name: String,
    /// Micro-ops fetched per cycle.
    pub fetch_width: u32,
    /// Micro-ops dispatched (renamed + ROB/RS-allocated) per cycle.
    pub dispatch_width: u32,
    /// Micro-ops that can start execution per cycle (≤ number of ports).
    pub issue_width: u32,
    /// Micro-ops committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Unified reservation-station entries.
    pub rs_size: usize,
    /// Load-queue entries.
    pub ldq_size: usize,
    /// Store-queue entries.
    pub stq_size: usize,
    /// Frontend pipeline depth in cycles (fetch→dispatch); determines the
    /// branch-misprediction refill penalty.
    pub frontend_depth: u32,
    /// Extra decode cycles per microcoded micro-op (0 disables the
    /// `Microcode` component; the KNL preset uses a non-zero value).
    pub microcode_decode_cycles: u32,
    /// Execution ports.
    pub ports: Vec<PortSpec>,
    /// Operation latencies.
    pub lat: LatencyTable,
    /// SIMD vector width in bits (256 for AVX2, 512 for AVX-512).
    pub vector_bits: u32,
    /// Core clock in GHz (used only to convert cycle counts to FLOPS via the
    /// paper's Eq. (1)).
    pub freq_ghz: f64,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
}

impl CoreConfig {
    /// The accounting width `W`: the minimum of all stage widths
    /// (paper §III-A — "we propose to set W as the minimum of all stage
    /// widths"; wider stages carry the excess fraction over to the next
    /// cycle).
    pub fn accounting_width(&self) -> u32 {
        self.fetch_width
            .min(self.dispatch_width)
            .min(self.issue_width)
            .min(self.commit_width)
    }

    /// Number of vector floating-point units (the paper's `k`).
    pub fn vpu_count(&self) -> u32 {
        self.ports.iter().filter(|p| p.is_vpu()).count() as u32
    }

    /// Vector width in elements for 32-bit data (the paper's `v` for single
    /// precision, e.g. 16 for AVX-512).
    pub fn vector_lanes_f32(&self) -> u32 {
        self.vector_bits / 32
    }

    /// Peak floating-point operations per cycle: `2 · k · v`
    /// (FMA counts double; paper §III-C).
    pub fn peak_flops_per_cycle(&self) -> u32 {
        2 * self.vpu_count() * self.vector_lanes_f32()
    }

    /// Peak GFLOPS at the configured clock: `freq · 2 · k · v`.
    pub fn peak_gflops(&self) -> f64 {
        self.freq_ghz * f64::from(self.peak_flops_per_cycle())
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint
    /// (zero widths, ROB smaller than RS, non-power-of-two cache geometry,
    /// missing port capabilities, …).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0
            || self.dispatch_width == 0
            || self.issue_width == 0
            || self.commit_width == 0
        {
            return Err(ConfigError::new("all stage widths must be non-zero"));
        }
        if self.rob_size == 0 || self.rs_size == 0 {
            return Err(ConfigError::new("ROB and RS must be non-empty"));
        }
        if self.rs_size > self.rob_size {
            return Err(ConfigError::new("RS cannot be larger than the ROB"));
        }
        if self.ports.is_empty() {
            return Err(ConfigError::new("at least one execution port required"));
        }
        if self.issue_width as usize > self.ports.len() {
            return Err(ConfigError::new(
                "issue width cannot exceed the number of ports",
            ));
        }
        for (i, p) in self.ports.iter().enumerate() {
            if p.caps == 0 {
                return Err(ConfigError::new(format!(
                    "port {i}: empty capability mask (port can execute nothing)"
                )));
            }
            if p.caps & !caps::ALL != 0 {
                return Err(ConfigError::new(format!(
                    "port {i}: capability mask {:#x} references undefined unit bits {:#x}",
                    p.caps,
                    p.caps & !caps::ALL
                )));
            }
        }
        for cap in [caps::INT_ALU, caps::LOAD, caps::STORE, caps::BRANCH] {
            if !self.ports.iter().any(|p| p.supports(cap)) {
                return Err(ConfigError::new(format!(
                    "no port supports capability bit {cap:#x}"
                )));
            }
        }
        // Unpipelined ops monopolize a port for their whole latency; a
        // zero latency would make that occupancy vanish and break the
        // static port-pressure bound (DESIGN.md §11).
        for (name, lat) in [("int_div", self.lat.int_div), ("fp_div", self.lat.fp_div)] {
            if lat == 0 {
                return Err(ConfigError::new(format!(
                    "{name}: unpipelined op cannot have zero latency"
                )));
            }
        }
        if !self.vector_bits.is_power_of_two() || self.vector_bits < 64 {
            return Err(ConfigError::new("vector width must be a power of two ≥ 64"));
        }
        for (name, c) in [
            ("l1i", &self.mem.l1i),
            ("l1d", &self.mem.l1d),
            ("l2", &self.mem.l2),
        ]
        .into_iter()
        .chain(self.mem.l3.as_ref().map(|c| ("l3", c)))
        {
            if !c.line_bytes.is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "{name}: line size not a power of two"
                )));
            }
            let sets = c.sets();
            if sets == 0 || !sets.is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "{name}: set count {sets} not a non-zero power of two"
                )));
            }
            if c.mshrs == 0 {
                return Err(ConfigError::new(format!("{name}: needs at least one MSHR")));
            }
        }
        if self.mem.dram_bytes_per_cycle <= 0.0 {
            return Err(ConfigError::new("DRAM bandwidth must be positive"));
        }
        for (name, t) in [("itlb", &self.mem.itlb), ("dtlb", &self.mem.dtlb)] {
            let sets = t.entries / t.assoc.max(1);
            if sets == 0 || !sets.is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "{name}: entries/assoc must be a non-zero power of two"
                )));
            }
        }
        if self.freq_ghz <= 0.0 {
            return Err(ConfigError::new("core frequency must be positive"));
        }
        Ok(())
    }

    /// Returns a copy with a different ROB size (clamping the RS to fit) —
    /// builder-style helper for sensitivity sweeps.
    pub fn with_rob_size(mut self, rob: usize) -> Self {
        self.rob_size = rob;
        self.rs_size = self.rs_size.min(rob);
        self
    }

    /// Returns a copy with a different L2 MSHR count (the Fig. 3(c) knob).
    pub fn with_l2_mshrs(mut self, mshrs: u32) -> Self {
        self.mem.l2.mshrs = mshrs;
        self
    }

    /// Returns a copy with prefetching disabled.
    pub fn without_prefetch(mut self) -> Self {
        self.mem.prefetch = PrefetchConfig::disabled();
        self
    }

    /// Returns a copy with free (never-stalling) TLBs.
    pub fn with_free_tlbs(mut self) -> Self {
        self.mem.itlb = TlbConfig::free();
        self.mem.dtlb = TlbConfig::free();
        self
    }

    /// Intel Broadwell-inspired 4-wide out-of-order core (paper §IV).
    ///
    /// Uncore (L3 slice, DRAM bandwidth) is scaled to 1/18 of an 18-core
    /// socket, mirroring the paper's fully-loaded-socket scaling.
    pub fn broadwell() -> Self {
        let cfg = CoreConfig {
            name: "bdw".to_string(),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 7,
            commit_width: 4,
            rob_size: 192,
            rs_size: 60,
            ldq_size: 72,
            stq_size: 42,
            frontend_depth: 7,
            microcode_decode_cycles: 0,
            // Simple-ALU ports are listed before the FMA-capable ports:
            // the selector fills ports in order, which models a scheduler
            // that keeps integer work off the vector units when possible.
            ports: vec![
                // p5: ALU + vec int/shuffle
                PortSpec::new(caps::INT_ALU | caps::VEC_INT),
                // p6: ALU + branch
                PortSpec::new(caps::INT_ALU | caps::BRANCH),
                // p0: ALU + FMA + int mul + div
                PortSpec::new(
                    caps::INT_ALU | caps::INT_MUL | caps::INT_DIV | caps::VEC_FP | caps::VEC_INT,
                ),
                // p1: ALU + FMA + int mul
                PortSpec::new(caps::INT_ALU | caps::INT_MUL | caps::VEC_FP | caps::VEC_INT),
                // p2, p3: load
                PortSpec::new(caps::LOAD),
                PortSpec::new(caps::LOAD),
                // p4: store
                PortSpec::new(caps::STORE),
            ],
            lat: LatencyTable {
                int_add: 1,
                int_mul: 3,
                int_div: 21,
                lea: 1,
                branch: 1,
                fp_add: 3,
                fp_mul: 3,
                fp_fma: 5,
                fp_div: 13,
                vec_int: 1,
                store: 1,
            },
            vector_bits: 256,
            freq_ghz: 2.3,
            bpred: BpredConfig {
                history_bits: 13,
                btb_sets_log2: 9,
                btb_ways: 4,
                ras_entries: 16,
            },
            mem: {
                let (itlb, dtlb) = server_tlbs();
                preset_mem(
                    10,
                    CacheConfig {
                        size_bytes: 256 * 1024,
                        assoc: 8,
                        line_bytes: 64,
                        latency: 12,
                        mshrs: 16,
                    },
                    // 45 MB / 18 cores = 2.5 MB slice.
                    Some(CacheConfig {
                        size_bytes: 2560 * 1024,
                        assoc: 20,
                        line_bytes: 64,
                        latency: 34,
                        mshrs: 32,
                    }),
                    170,
                    // ~76.8 GB/s socket / 18 cores at 2.3 GHz ≈ 1.9 B/cycle.
                    1.9,
                    itlb,
                    dtlb,
                )
            },
        };
        debug_assert!(cfg.validate().is_ok());
        cfg
    }

    /// Intel Knights Landing-inspired 2-wide out-of-order core (paper §IV).
    ///
    /// Two AVX-512 VPUs, no L3, MCDRAM-like bandwidth scaled to 1/68 of a
    /// 68-core socket, and a slow microcode sequencer (non-zero
    /// `microcode_decode_cycles`, producing the paper's `Microcode`
    /// component on KNL in Fig. 3(d)).
    pub fn knights_landing() -> Self {
        let cfg = CoreConfig {
            name: "knl".to_string(),
            fetch_width: 2,
            dispatch_width: 2,
            issue_width: 6,
            commit_width: 2,
            rob_size: 72,
            rs_size: 40,
            ldq_size: 32,
            stq_size: 16,
            frontend_depth: 5,
            microcode_decode_cycles: 3,
            ports: vec![
                PortSpec::new(caps::INT_ALU | caps::INT_MUL | caps::BRANCH),
                PortSpec::new(caps::INT_ALU | caps::INT_DIV),
                PortSpec::new(caps::LOAD | caps::STORE),
                PortSpec::new(caps::LOAD | caps::STORE),
                PortSpec::new(caps::VEC_FP | caps::VEC_INT),
                PortSpec::new(caps::VEC_FP | caps::VEC_INT),
            ],
            lat: LatencyTable {
                int_add: 1,
                int_mul: 5,
                int_div: 32,
                lea: 2,
                branch: 1,
                fp_add: 6,
                fp_mul: 6,
                fp_fma: 6,
                fp_div: 32,
                vec_int: 2,
                store: 1,
            },
            vector_bits: 512,
            freq_ghz: 1.4,
            bpred: BpredConfig {
                history_bits: 12,
                btb_sets_log2: 8,
                btb_ways: 4,
                ras_entries: 16,
            },
            mem: preset_mem(
                12,
                // 1 MB per 2-core tile → 512 KB per core.
                CacheConfig {
                    size_bytes: 512 * 1024,
                    assoc: 16,
                    line_bytes: 64,
                    latency: 17,
                    mshrs: 12,
                },
                None,
                230,
                // MCDRAM ~400 GB/s / 68 cores at 1.4 GHz ≈ 4.2 B/cycle.
                4.2,
                TlbConfig {
                    entries: 64,
                    assoc: 4,
                    walk_cycles: 30,
                },
                TlbConfig {
                    entries: 64,
                    assoc: 4,
                    walk_cycles: 38,
                },
            ),
        };
        debug_assert!(cfg.validate().is_ok());
        cfg
    }

    /// Intel Skylake-server-inspired 4-wide AVX-512 core (paper §IV, used
    /// for the DeepBench FLOPS-stack experiments).
    ///
    /// Uncore scaled to 1/26 of a 26-core socket.
    pub fn skylake_server() -> Self {
        let cfg = CoreConfig {
            name: "skx".to_string(),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 7,
            commit_width: 4,
            rob_size: 224,
            rs_size: 97,
            ldq_size: 72,
            stq_size: 56,
            frontend_depth: 7,
            microcode_decode_cycles: 0,
            // Same ordering rationale as the BDW preset: simple-ALU ports
            // first so integer work stays off the FMA ports when possible.
            ports: vec![
                PortSpec::new(caps::INT_ALU | caps::VEC_INT),
                PortSpec::new(caps::INT_ALU | caps::BRANCH),
                PortSpec::new(
                    caps::INT_ALU | caps::INT_MUL | caps::INT_DIV | caps::VEC_FP | caps::VEC_INT,
                ),
                PortSpec::new(caps::INT_ALU | caps::INT_MUL | caps::VEC_FP | caps::VEC_INT),
                PortSpec::new(caps::LOAD),
                PortSpec::new(caps::LOAD),
                PortSpec::new(caps::STORE),
            ],
            lat: LatencyTable {
                int_add: 1,
                int_mul: 3,
                int_div: 21,
                lea: 1,
                branch: 1,
                fp_add: 4,
                fp_mul: 4,
                fp_fma: 4,
                fp_div: 14,
                vec_int: 1,
                store: 1,
            },
            vector_bits: 512,
            freq_ghz: 2.1,
            bpred: BpredConfig {
                history_bits: 14,
                btb_sets_log2: 9,
                btb_ways: 4,
                ras_entries: 16,
            },
            mem: {
                let (itlb, dtlb) = server_tlbs();
                preset_mem(
                    12,
                    CacheConfig {
                        size_bytes: 1024 * 1024,
                        assoc: 16,
                        line_bytes: 64,
                        latency: 14,
                        mshrs: 16,
                    },
                    // 1.375 MB per core slice → round to a power-of-two set
                    // count.
                    Some(CacheConfig {
                        size_bytes: 1408 * 1024,
                        assoc: 11,
                        line_bytes: 64,
                        latency: 50,
                        mshrs: 32,
                    }),
                    190,
                    // ~128 GB/s socket / 26 cores at 2.1 GHz ≈ 2.3 B/cycle.
                    2.3,
                    itlb,
                    dtlb,
                )
            },
        };
        debug_assert!(cfg.validate().is_ok());
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            CoreConfig::broadwell(),
            CoreConfig::knights_landing(),
            CoreConfig::skylake_server(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn accounting_width_is_min_stage_width() {
        let bdw = CoreConfig::broadwell();
        assert_eq!(bdw.accounting_width(), 4);
        let knl = CoreConfig::knights_landing();
        assert_eq!(knl.accounting_width(), 2);
    }

    #[test]
    fn vpu_counts_match_paper() {
        // Paper §V-B: 2 VPUs on both KNL and SKX, AVX-512 → v = 16 (f32).
        let knl = CoreConfig::knights_landing();
        assert_eq!(knl.vpu_count(), 2);
        assert_eq!(knl.vector_lanes_f32(), 16);
        assert_eq!(knl.peak_flops_per_cycle(), 64);
        let skx = CoreConfig::skylake_server();
        assert_eq!(skx.vpu_count(), 2);
        assert_eq!(skx.peak_flops_per_cycle(), 64);
        // BDW: AVX2 → 8 f32 lanes, 2 FMA ports.
        let bdw = CoreConfig::broadwell();
        assert_eq!(bdw.peak_flops_per_cycle(), 32);
    }

    #[test]
    fn peak_gflops_uses_frequency() {
        let skx = CoreConfig::skylake_server();
        let expect = 2.1 * 64.0;
        assert!((skx.peak_gflops() - expect).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_zero_width() {
        let mut cfg = CoreConfig::broadwell();
        cfg.dispatch_width = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_rs_bigger_than_rob() {
        let mut cfg = CoreConfig::broadwell();
        cfg.rs_size = cfg.rob_size + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_cache_geometry() {
        let mut cfg = CoreConfig::broadwell();
        cfg.mem.l1d.size_bytes = 3000; // not a power-of-two set count
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_missing_port_caps() {
        let mut cfg = CoreConfig::broadwell();
        cfg.ports.retain(|p| !p.supports(caps::STORE));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_undefined_capability_bits() {
        let mut cfg = CoreConfig::broadwell();
        cfg.ports.push(PortSpec::new(1 << 12));
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("undefined unit bits"), "{err}");
    }

    #[test]
    fn validation_rejects_empty_port_mask() {
        let mut cfg = CoreConfig::broadwell();
        cfg.ports.push(PortSpec::new(0));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_latency_unpipelined_ops() {
        let mut cfg = CoreConfig::broadwell();
        cfg.lat.int_div = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = CoreConfig::broadwell();
        cfg.lat.fp_div = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("zero latency"), "{err}");
    }

    #[test]
    fn exec_latency_table() {
        let lat = CoreConfig::broadwell().lat;
        assert_eq!(lat.exec_latency(&UopKind::IntAlu(AluClass::Add)), 1);
        assert_eq!(lat.exec_latency(&UopKind::IntAlu(AluClass::Mul)), 3);
        assert!(lat.exec_latency(&UopKind::IntAlu(AluClass::Div)) > 10);
        assert!(lat.is_unpipelined(&UopKind::IntAlu(AluClass::Div)));
        assert!(!lat.is_unpipelined(&UopKind::IntAlu(AluClass::Mul)));
    }

    #[test]
    fn builder_tweaks() {
        let cfg = CoreConfig::broadwell()
            .with_rob_size(64)
            .with_l2_mshrs(4)
            .without_prefetch()
            .with_free_tlbs();
        assert_eq!(cfg.rob_size, 64);
        assert!(cfg.rs_size <= 64);
        assert_eq!(cfg.mem.l2.mshrs, 4);
        assert!(!cfg.mem.prefetch.stride_enabled);
        assert_eq!(cfg.mem.dtlb.walk_cycles, 0);
        cfg.validate().expect("tweaked config stays valid");
    }

    #[test]
    fn cache_sets() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 4,
            mshrs: 10,
        };
        assert_eq!(c.sets(), 64);
    }
}
