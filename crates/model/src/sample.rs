//! The functional-warming sink of interval sampling.
//!
//! A sampled run alternates detailed windows (the engine consumes an
//! `Iterator<Item = MicroOp>`) with fast-forward segments, where the only
//! consumers of a micro-op are the warm paths: instruction-side cache and
//! TLB contents, branch-predictor training, and data-side cache, TLB and
//! prefetcher contents. None of those need a materialized [`MicroOp`] —
//! just the program counter, the branch outcome, or the data address.
//! [`WarmSink`] names exactly those entry points, so a pre-decoded
//! structure-of-arrays trace buffer can stream them straight out of its
//! packed columns, skipping the per-µop decode that dominates
//! fast-forward time (measured ~55% of it on the cursor path).

use crate::uop::{BranchInfo, MicroOp, UopKind};

/// The functional-warming entry points a fast-forwarded micro-op can hit.
///
/// Implementors hold mutable borrows of the frontend and memory hierarchy;
/// each method is the no-timing, no-statistics twin of the corresponding
/// demand-path access.
pub trait WarmSink {
    /// Every micro-op's instruction fetch: `pc` goes through the warm
    /// I-side path (the sink dedups consecutive µops on the same line).
    fn inst(&mut self, pc: u64);
    /// A branch micro-op: trains the predictor.
    fn branch(&mut self, pc: u64, info: &BranchInfo);
    /// A load micro-op: warms the D-side for `addr`.
    fn load(&mut self, addr: u64, pc: u64);
    /// A store micro-op: warms the D-side for `addr` (write-allocate).
    fn store(&mut self, addr: u64, pc: u64);

    /// Dispatches one materialized micro-op into the sink — the shared
    /// per-µop body of the fallback warming path. A batched source must
    /// produce the identical call sequence this does.
    #[inline]
    fn feed(&mut self, uop: &MicroOp) {
        self.inst(uop.pc);
        match uop.kind {
            UopKind::Branch(ref b) => self.branch(uop.pc, b),
            UopKind::Load { addr } => self.load(addr, uop.pc),
            UopKind::Store { addr } => self.store(addr, uop.pc),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;
    use crate::uop::{AluClass, BranchKind};

    #[derive(Default)]
    struct Recorder(Vec<String>);

    impl WarmSink for Recorder {
        fn inst(&mut self, pc: u64) {
            self.0.push(format!("i{pc}"));
        }
        fn branch(&mut self, pc: u64, info: &BranchInfo) {
            self.0.push(format!("b{pc}:{}", info.taken));
        }
        fn load(&mut self, addr: u64, pc: u64) {
            self.0.push(format!("l{addr}@{pc}"));
        }
        fn store(&mut self, addr: u64, pc: u64) {
            self.0.push(format!("s{addr}@{pc}"));
        }
    }

    #[test]
    fn feed_dispatches_each_uop_class() {
        let uops = vec![
            MicroOp::new(0x10, UopKind::IntAlu(AluClass::Add)).with_dst(ArchReg::new(1)),
            MicroOp::new(0x14, UopKind::Load { addr: 0x8000 }),
            MicroOp::new(0x18, UopKind::Store { addr: 0x9000 }),
            MicroOp::new(
                0x1c,
                UopKind::Branch(BranchInfo {
                    taken: true,
                    target: 0x10,
                    fallthrough: 0x20,
                    kind: BranchKind::Cond,
                }),
            ),
        ];
        let mut rec = Recorder::default();
        for u in &uops {
            rec.feed(u);
        }
        assert_eq!(
            rec.0,
            vec![
                "i16",
                "i20",
                "l32768@20",
                "i24",
                "s36864@24",
                "i28",
                "b28:true"
            ]
        );
    }
}
