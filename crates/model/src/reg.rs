//! Architectural register names.
//!
//! Dependences between micro-ops are expressed through architectural
//! registers; the pipeline renames them at dispatch. The register file is
//! flat — integer, floating-point and vector registers share one namespace,
//! which keeps workload generation simple without losing any information the
//! accounting algorithms need.

/// An architectural register name.
///
/// The simulator treats registers purely as dependence-carrying names; there
/// is no value simulation (the trace is functional-first, see paper §III-B).
///
/// # Example
///
/// ```
/// use mstacks_model::ArchReg;
/// let r = ArchReg::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u16);

impl ArchReg {
    /// Number of architectural registers the rename table supports.
    pub const COUNT: usize = 256;

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ArchReg::COUNT`.
    #[inline]
    pub fn new(index: u16) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index {index} out of range (< {})",
            Self::COUNT
        );
        ArchReg(index)
    }

    /// The raw register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<ArchReg> for u16 {
    fn from(r: ArchReg) -> u16 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for i in [0u16, 1, 17, 255] {
            let r = ArchReg::new(i);
            assert_eq!(r.index(), i as usize);
            assert_eq!(u16::from(r), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = ArchReg::new(256);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ArchReg::new(1) < ArchReg::new(2));
    }
}
