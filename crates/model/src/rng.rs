//! Small, dependency-free deterministic PRNG.
//!
//! The workload generators (and the randomized tests) need seeded,
//! reproducible randomness, but the build must work without any external
//! registry. This module provides a xoshiro256** generator behind a
//! `rand`-flavoured API surface (`seed_from_u64`, `gen_range`, `gen_bool`)
//! so the call sites read the same as they would with the `rand` crate.
//!
//! Determinism is part of the contract: the same seed always produces the
//! same stream, on every platform, forever. Changing the algorithm would
//! silently change every synthetic workload, so don't.

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator whose full state is derived from `seed` via
    /// SplitMix64 (the construction the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` in `[0, bound)` via widening multiply (no modulo
    /// bias worth caring about at these stream lengths).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Range types [`SmallRng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )+};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let b = r.gen_range(0u8..4);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}/10000");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1234);
        let mut buckets = [0u32; 8];
        for _ in 0..8_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1_200).contains(&b), "bucket {i}: {b}");
        }
    }
}
