//! Seeded random generation of valid [`CoreConfig`]s.
//!
//! The metamorphic fuzz harness needs a large population of *legal but
//! unusual* cores: odd width combinations, shallow queues, slow dividers,
//! no L3, tiny TLBs. Every config produced here passes
//! [`CoreConfig::validate`] by construction (geometries are built from
//! power-of-two set counts, the port file always covers the required
//! capability bits, and `issue_width` never exceeds the port count), and
//! the ranges are chosen so the cycle-level engine always makes forward
//! progress — the fuzzer explores the accounting space, not the deadlock
//! space.
//!
//! Determinism is part of the contract: `CoreConfig::fuzz` draws a fixed
//! sequence of values from the caller's [`SmallRng`], so the same seed
//! always reproduces the same config population (the harness reports
//! config indices, which are meaningful across runs).

use crate::config::{
    BpredConfig, CacheConfig, CoreConfig, LatencyTable, MemConfig, PrefetchConfig, TlbConfig,
};
use crate::ports::{caps, PortSpec};
use crate::rng::SmallRng;

/// Builds a cache level from a power-of-two set count so the geometry is
/// valid by construction (`size = sets · assoc · line`).
fn fuzz_cache(rng: &mut SmallRng, sets_log2: std::ops::RangeInclusive<u32>) -> CacheConfig {
    let sets = 1u64 << rng.gen_range(sets_log2);
    let assoc = [4u32, 8, 16][rng.gen_range(0usize..3)];
    let line_bytes = 64u32;
    CacheConfig {
        size_bytes: sets * u64::from(assoc) * u64::from(line_bytes),
        assoc,
        line_bytes,
        latency: 1, // caller overrides
        mshrs: 4,   // caller overrides
    }
}

impl CoreConfig {
    /// Draws a random, always-valid core configuration from `rng`.
    ///
    /// The returned config is named `"fuzz"`; callers that generate a
    /// population usually rename it (`cfg.name = format!("fuzz{i}")`) so
    /// reports can point back at the offending index.
    ///
    /// ```
    /// use mstacks_model::{CoreConfig, SmallRng};
    ///
    /// let mut rng = SmallRng::seed_from_u64(7);
    /// let cfg = CoreConfig::fuzz(&mut rng);
    /// cfg.validate().unwrap();
    /// // Same seed, same config:
    /// let again = CoreConfig::fuzz(&mut SmallRng::seed_from_u64(7));
    /// assert_eq!(cfg, again);
    /// ```
    pub fn fuzz(rng: &mut SmallRng) -> Self {
        // Execution ports: a fixed backbone guaranteeing every capability
        // the workload generators can emit (INT_ALU/MUL/DIV, BRANCH,
        // LOAD, STORE, VEC_FP, VEC_INT — a missing capability would be an
        // issue-stage deadlock, not an interesting accounting case), plus
        // a few random extra ports for width diversity.
        let mut ports = vec![
            PortSpec::new(caps::INT_ALU | caps::BRANCH),
            PortSpec::new(caps::INT_ALU | caps::INT_MUL | caps::INT_DIV),
            PortSpec::new(caps::VEC_FP | caps::VEC_INT),
            PortSpec::new(caps::LOAD),
            PortSpec::new(caps::STORE),
        ];
        let menu = [
            caps::INT_ALU,
            caps::INT_ALU | caps::INT_MUL,
            caps::INT_ALU | caps::VEC_INT,
            caps::VEC_FP | caps::VEC_INT,
            caps::LOAD,
            caps::LOAD | caps::STORE,
        ];
        for _ in 0..rng.gen_range(0usize..=3) {
            ports.push(PortSpec::new(menu[rng.gen_range(0usize..menu.len())]));
        }

        let fetch_width = rng.gen_range(1u32..=6);
        let dispatch_width = rng.gen_range(1u32..=6);
        let commit_width = rng.gen_range(1u32..=6);
        let issue_width = rng.gen_range(2u32..=(ports.len() as u32));

        let rob_size = rng.gen_range(48usize..=256);
        let rs_size = rng.gen_range(16usize..=rob_size.min(128));
        let ldq_size = rng.gen_range(16usize..=72);
        let stq_size = rng.gen_range(12usize..=56);

        let mut l1i = fuzz_cache(rng, 5..=7);
        l1i.latency = rng.gen_range(1u32..=2);
        l1i.mshrs = rng.gen_range(2u32..=8);
        let mut l1d = fuzz_cache(rng, 5..=7);
        l1d.latency = rng.gen_range(3u32..=5);
        l1d.mshrs = rng.gen_range(4u32..=16);
        let mut l2 = fuzz_cache(rng, 8..=10);
        l2.latency = rng.gen_range(10u32..=20);
        l2.mshrs = rng.gen_range(6u32..=24);
        let l3 = rng.gen_bool(0.6).then(|| {
            let mut c = fuzz_cache(rng, 10..=12);
            c.latency = rng.gen_range(30u32..=60);
            c.mshrs = rng.gen_range(16u32..=32);
            c
        });

        let itlb = TlbConfig {
            entries: 4 << rng.gen_range(3u32..=5),
            assoc: 4,
            walk_cycles: rng.gen_range(15u32..=40),
        };
        let dtlb = TlbConfig {
            entries: 4 << rng.gen_range(3u32..=5),
            assoc: 4,
            walk_cycles: rng.gen_range(15u32..=40),
        };

        let cfg = CoreConfig {
            name: "fuzz".to_string(),
            fetch_width,
            dispatch_width,
            issue_width,
            commit_width,
            rob_size,
            rs_size,
            ldq_size,
            stq_size,
            frontend_depth: rng.gen_range(4u32..=10),
            microcode_decode_cycles: if rng.gen_bool(0.3) {
                rng.gen_range(1u32..=3)
            } else {
                0
            },
            ports,
            lat: LatencyTable {
                int_add: 1,
                int_mul: rng.gen_range(3u32..=5),
                int_div: rng.gen_range(16u32..=40),
                lea: rng.gen_range(1u32..=2),
                branch: 1,
                fp_add: rng.gen_range(3u32..=6),
                fp_mul: rng.gen_range(3u32..=6),
                fp_fma: rng.gen_range(4u32..=6),
                fp_div: rng.gen_range(12u32..=32),
                vec_int: rng.gen_range(1u32..=2),
                store: 1,
            },
            vector_bits: [128u32, 256, 512][rng.gen_range(0usize..3)],
            freq_ghz: rng.gen_range(1.0f64..3.5),
            bpred: BpredConfig {
                history_bits: rng.gen_range(10u32..=15),
                btb_sets_log2: rng.gen_range(7u32..=10),
                btb_ways: [2u32, 4][rng.gen_range(0usize..2)],
                ras_entries: rng.gen_range(8u32..=32),
            },
            mem: MemConfig {
                l1i,
                l1d,
                l2,
                l3,
                dram_latency: rng.gen_range(120u32..=300),
                dram_bytes_per_cycle: rng.gen_range(1.0f64..6.0),
                prefetch: PrefetchConfig {
                    stride_enabled: rng.gen_bool(0.7),
                    stride_degree: rng.gen_range(2u32..=4),
                    stride_threshold: 2,
                    next_line_enabled: rng.gen_bool(0.7),
                },
                itlb,
                dtlb,
            },
        };
        debug_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_configs_always_validate() {
        let mut rng = SmallRng::seed_from_u64(0xF022);
        for i in 0..500 {
            let cfg = CoreConfig::fuzz(&mut rng);
            cfg.validate()
                .unwrap_or_else(|e| panic!("fuzz config {i}: {e}"));
            assert!(cfg.issue_width as usize <= cfg.ports.len());
            assert!(cfg.rs_size <= cfg.rob_size);
            assert!(cfg.vpu_count() >= 1, "fuzz config {i} has no VPU");
            assert!(cfg.peak_flops_per_cycle() > 0);
        }
    }

    #[test]
    fn fuzz_is_deterministic_per_seed() {
        let a: Vec<CoreConfig> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..20).map(|_| CoreConfig::fuzz(&mut rng)).collect()
        };
        let b: Vec<CoreConfig> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..20).map(|_| CoreConfig::fuzz(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fuzz_explores_distinct_configs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = CoreConfig::fuzz(&mut rng);
        let b = CoreConfig::fuzz(&mut rng);
        assert_ne!(a, b);
    }
}
