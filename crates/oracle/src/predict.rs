//! First-order interval equations: from workload summary statistics to
//! per-component CPI prediction intervals.
//!
//! Every equation is deliberately *first order*: each stall source is
//! priced as if it acted alone, and the unavoidable second-order effects
//! (overlap between stall sources, finite-window dependence jamming,
//! wrong-path cache pollution) are absorbed by predicting an interval
//! `[optimistic, pessimistic]` instead of a point. The cycle-level
//! simulator's multi-stage measurement — itself interval-valued across
//! the dispatch/issue/commit stacks — must overlap each prediction after
//! widening by the per-component tolerance band
//! ([`crate::tolerance::ToleranceBands`]).

use crate::summary::WorkloadSummary;
use mstacks_core::{Component, Interval};
use mstacks_model::CoreConfig;

/// The oracle's component vocabulary — a coarser grouping of the
/// simulator's CPI components that first-order equations can actually
/// price (e.g. `MemConflict` folds into `Memory`; `Smt`/`Other` are
/// unmodeled and only constrain the total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleComponent {
    /// Useful-width base: `1/W`.
    Base,
    /// Instruction-delivery stalls (L1I + ITLB misses).
    Icache,
    /// Branch-misprediction penalties.
    Branch,
    /// Data-side memory stalls (L1D misses, DTLB walks, store conflicts).
    Memory,
    /// Multi-cycle execution latency beyond 1 cycle/op.
    Execute,
    /// Inter-instruction dependence stalls at unit latency.
    Depend,
    /// Microcode-sequencer decode stalls.
    Microcode,
}

/// All oracle components, in stacking order.
pub const ORACLE_COMPONENTS: [OracleComponent; 7] = [
    OracleComponent::Base,
    OracleComponent::Icache,
    OracleComponent::Branch,
    OracleComponent::Memory,
    OracleComponent::Execute,
    OracleComponent::Depend,
    OracleComponent::Microcode,
];

impl OracleComponent {
    /// Dense index into prediction arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OracleComponent::Base => 0,
            OracleComponent::Icache => 1,
            OracleComponent::Branch => 2,
            OracleComponent::Memory => 3,
            OracleComponent::Execute => 4,
            OracleComponent::Depend => 5,
            OracleComponent::Microcode => 6,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            OracleComponent::Base => "base",
            OracleComponent::Icache => "icache",
            OracleComponent::Branch => "branch",
            OracleComponent::Memory => "memory",
            OracleComponent::Execute => "execute",
            OracleComponent::Depend => "depend",
            OracleComponent::Microcode => "microcode",
        }
    }

    /// The simulator CPI components this oracle component aggregates.
    pub fn core_components(self) -> &'static [Component] {
        match self {
            OracleComponent::Base => &[Component::Base],
            OracleComponent::Icache => &[Component::Icache],
            OracleComponent::Branch => &[Component::Bpred],
            OracleComponent::Memory => &[Component::Dcache, Component::MemConflict],
            OracleComponent::Execute => &[Component::AluLat],
            OracleComponent::Depend => &[Component::Depend],
            OracleComponent::Microcode => &[Component::Microcode],
        }
    }
}

impl std::fmt::Display for OracleComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The oracle's output: one CPI interval per component plus the implied
/// total-CPI interval.
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePrediction {
    intervals: [Interval; ORACLE_COMPONENTS.len()],
    /// Sum of the component intervals: the oracle's total-CPI bracket
    /// (unmodeled `Other`/structural cycles widen only the high side via
    /// the total tolerance band at comparison time).
    pub total: Interval,
}

impl OraclePrediction {
    /// Prediction interval for `c`.
    pub fn interval(&self, c: OracleComponent) -> Interval {
        self.intervals[c.index()]
    }

    /// `(component, interval)` pairs in stacking order.
    pub fn iter(&self) -> impl Iterator<Item = (OracleComponent, Interval)> + '_ {
        ORACLE_COMPONENTS
            .iter()
            .map(move |&c| (c, self.interval(c)))
    }
}

/// Cumulative access latency for a request served at each level, as seen
/// from the L1 (the engine charges the chain of lookups it traverses).
struct LevelLatencies {
    l2: f64,
    l3: f64,
    dram: f64,
}

impl LevelLatencies {
    fn of(cfg: &CoreConfig) -> Self {
        let l2 = f64::from(cfg.mem.l2.latency);
        let l3 = l2 + cfg.mem.l3.as_ref().map_or(0.0, |c| f64::from(c.latency));
        let dram = l3 + f64::from(cfg.mem.dram_latency);
        LevelLatencies { l2, l3, dram }
    }

    /// Serialized stall cycles for a miss profile (every miss priced at
    /// its full serving latency, no overlap).
    fn serialized(&self, p: &crate::summary::MissProfile) -> f64 {
        p.l2 as f64 * self.l2 + p.l3 as f64 * self.l3 + p.dram as f64 * self.dram
    }
}

/// Predicts per-component CPI intervals for `summary` on core `cfg`.
///
/// The equations (documented in DESIGN.md §9):
///
/// * **base** `= 1/W` exactly (every committed micro-op consumes `1/W` of
///   the accounting width).
/// * **icache**: between "fetch-ahead hides everything" (0) and the fully
///   serialized L1I+ITLB miss cost.
/// * **branch**: mispredict rate × penalty, penalty between the frontend
///   refill depth and refill + a resolution allowance.
/// * **memory**: serialized L1D+DTLB miss cost as the upper bound; the
///   lower bound divides by the attainable memory-level parallelism and
///   floors at the DRAM bandwidth limit.
/// * **execute**: the per-op gap between the configured-latency and
///   unit-latency dataflow critical paths.
/// * **depend**: unit-latency critical path minus the base width cost.
/// * **microcode**: microcoded fraction × decode penalty.
pub fn predict(cfg: &CoreConfig, summary: &WorkloadSummary) -> OraclePrediction {
    let n = summary.uops.max(1) as f64;
    let w = f64::from(cfg.accounting_width().max(1));
    let lat = LevelLatencies::of(cfg);

    let mut iv = [Interval::point(0.0); ORACLE_COMPONENTS.len()];

    // Base: exact.
    iv[OracleComponent::Base.index()] = Interval::point(1.0 / w);

    // Icache: [0, serialized]. The decoupled frontend can hide an L1I
    // miss entirely behind backend stalls; the dispatch stack charges it
    // in full when dispatch starves.
    let ic_serial = (lat.serialized(&summary.icache)
        + summary.itlb_misses as f64 * f64::from(cfg.mem.itlb.walk_cycles))
        / n;
    iv[OracleComponent::Icache.index()] = Interval::new(0.0, ic_serial);

    // Branch: rate × penalty. The refill penalty is the frontend depth;
    // resolution adds up to the window drain, bounded by how long the
    // window can cover (ROB/W) and by the dataflow depth per op.
    let m_rate = summary.mispredicts as f64 / n; // mispredicts per uop
    let depth = f64::from(cfg.frontend_depth);
    let resolve = (cfg.rob_size as f64 / w).min(3.0 * depth + 16.0);
    iv[OracleComponent::Branch.index()] =
        Interval::new(m_rate * depth * 0.5, m_rate * (depth + resolve));

    // Memory: serialized cost as the pessimistic bound; MLP-overlapped
    // and bandwidth-floored as the optimistic bound. Store misses are
    // excluded from the optimistic bound: the engine fires stores at the
    // hierarchy and retires them from the store queue without waiting for
    // the fill, so on store-heavy profiles (e.g. nab) the only cost a
    // store miss can expose is the bandwidth floor, not serialization.
    let d_serial = (lat.serialized(&summary.dcache)
        + summary.dtlb_misses as f64 * f64::from(cfg.mem.dtlb.walk_cycles))
        / n;
    let load_serial = d_serial - lat.serialized(&summary.dcache_stores) / n;
    let mlp = f64::from(cfg.mem.l1d.mshrs.clamp(1, 16));
    let bw_floor = summary.dcache.dram as f64 * f64::from(cfg.mem.l2.line_bytes)
        / cfg.mem.dram_bytes_per_cycle
        / n;
    iv[OracleComponent::Memory.index()] = Interval::new(
        (load_serial / mlp).max(bw_floor.min(d_serial)),
        d_serial * 1.05,
    );

    // Execute: configured-vs-unit latency gap on the dataflow critical
    // path. Fully hidden under abundant ILP; exposed ~1:1 on chains.
    let exec = ((summary.critpath_cfg - summary.critpath_unit) / n).max(0.0);
    iv[OracleComponent::Execute.index()] = Interval::new(0.0, 1.3 * exec + 0.02);

    // Depend: unit-latency dataflow CPI beyond the base cost. The
    // infinite-window estimate is optimistic (finite windows jam), so the
    // upper bound gets headroom.
    let depend = (summary.critpath_unit / n - 1.0 / w).max(0.0);
    iv[OracleComponent::Depend.index()] = Interval::new(0.3 * depend, 1.6 * depend + 0.05);

    // Microcode: decode stalls, fully exposed at worst.
    let uc = summary.microcoded as f64 / n * f64::from(cfg.microcode_decode_cycles);
    iv[OracleComponent::Microcode.index()] = Interval::new(0.0, 1.2 * uc + 0.01);

    let total = iv.iter().fold(Interval::point(0.0), |acc, i| {
        Interval::new(acc.lo + i.lo, acc.hi + i.hi)
    });
    OraclePrediction {
        intervals: iv,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::IdealFlags;
    use mstacks_model::{AluClass, ArchReg, MicroOp, UopKind};

    #[test]
    fn base_is_inverse_width() {
        let cfg = CoreConfig::broadwell();
        let trace = (0..500u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 8) as u16))
        });
        let s = WorkloadSummary::profile(&cfg, IdealFlags::none(), trace);
        let p = predict(&cfg, &s);
        let b = p.interval(OracleComponent::Base);
        assert!((b.lo - 0.25).abs() < 1e-12);
        assert!((b.hi - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serial_chain_predicts_depend() {
        let cfg = CoreConfig::broadwell();
        let trace = (0..1_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let s = WorkloadSummary::profile(&cfg, IdealFlags::none(), trace);
        let p = predict(&cfg, &s);
        let d = p.interval(OracleComponent::Depend);
        // True depend CPI is 1 − 1/4 = 0.75; the interval must cover it.
        assert!(d.contains(0.75), "depend interval {d} misses 0.75");
    }

    #[test]
    fn total_sums_components() {
        let cfg = CoreConfig::knights_landing();
        let trace = (0..500u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 4) as u16))
        });
        let s = WorkloadSummary::profile(&cfg, IdealFlags::none(), trace);
        let p = predict(&cfg, &s);
        let lo: f64 = ORACLE_COMPONENTS.iter().map(|&c| p.interval(c).lo).sum();
        let hi: f64 = ORACLE_COMPONENTS.iter().map(|&c| p.interval(c).hi).sum();
        assert!((p.total.lo - lo).abs() < 1e-12);
        assert!((p.total.hi - hi).abs() < 1e-12);
    }

    #[test]
    fn component_labels_unique() {
        let labels: std::collections::HashSet<_> =
            ORACLE_COMPONENTS.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ORACLE_COMPONENTS.len());
        for (i, c) in ORACLE_COMPONENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
