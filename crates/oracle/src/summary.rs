//! Single-pass trace profiler: turns a micro-op stream into the workload
//! summary statistics the interval equations consume.
//!
//! The profiler is *functional only* — it replays caches, TLBs and the
//! branch predictor as tag arrays with LRU replacement and counts events,
//! but models no timing, no out-of-order window, no ports and no
//! speculation. Everything cycle-shaped is derived later by the analytical
//! equations in [`crate::predict`], which is what makes the oracle an
//! independent reference for the cycle-level engine.

use mstacks_frontend::BranchPredictor;
use mstacks_model::{
    ArchReg, CacheConfig, CoreConfig, IdealFlags, MicroOp, TlbConfig, UopClass, UopKind,
};
use std::collections::HashMap;

/// A tag-only set-associative LRU cache (no data, no timing).
#[derive(Debug, Clone)]
struct TagCache {
    /// Per-set tag vectors, most-recently-used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
}

impl TagCache {
    fn new(cfg: &CacheConfig) -> Self {
        let n_sets = cfg.sets().max(1) as usize;
        TagCache {
            sets: vec![Vec::new(); n_sets],
            assoc: cfg.assoc.max(1) as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (n_sets as u64) - 1,
        }
    }

    /// Touches `addr`; returns `true` on a hit. Misses allocate.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            return true;
        }
        set.insert(0, line);
        set.truncate(self.assoc);
        false
    }

    /// Installs `addr` without counting it as a demand access (prefetch).
    fn install(&mut self, addr: u64) {
        let _ = self.access(addr);
    }
}

/// A tag-only TLB over 4 KiB pages.
#[derive(Debug, Clone)]
struct TagTlb(TagCache);

impl TagTlb {
    fn new(cfg: &TlbConfig) -> Self {
        let sets = (cfg.entries / cfg.assoc.max(1)).max(1);
        TagTlb(TagCache {
            sets: vec![Vec::new(); sets as usize],
            assoc: cfg.assoc.max(1) as usize,
            line_shift: 12,
            set_mask: u64::from(sets) - 1,
        })
    }

    fn access(&mut self, addr: u64) -> bool {
        self.0.access(addr)
    }
}

/// Per-PC stride detector mirroring the first-order effect of the
/// hardware stride prefetcher: confident strided streams install lines
/// ahead of the demand accesses.
#[derive(Debug, Clone, Default)]
struct StrideTable {
    entries: HashMap<u64, (u64, i64, u32)>, // pc → (last addr, stride, confidence)
}

impl StrideTable {
    /// Observes a demand access; returns prefetch addresses to install.
    fn observe(&mut self, pc: u64, addr: u64, degree: u32, threshold: u32) -> Vec<u64> {
        let e = self.entries.entry(pc).or_insert((addr, 0, 0));
        let stride = addr as i64 - e.0 as i64;
        if stride != 0 && stride == e.1 {
            e.2 += 1;
        } else {
            e.1 = stride;
            e.2 = 0;
        }
        e.0 = addr;
        if e.2 >= threshold && e.1 != 0 {
            (1..=i64::from(degree))
                .map(|d| (addr as i64 + d * e.1) as u64)
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// Demand misses of one cache level, split by where the request was
/// eventually served.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MissProfile {
    /// Accesses that reached this level (misses of the level above).
    pub accesses: u64,
    /// Served by the L2.
    pub l2: u64,
    /// Served by the L3.
    pub l3: u64,
    /// Served by DRAM.
    pub dram: u64,
}

impl MissProfile {
    /// Total misses beyond the first-level structure.
    pub fn total(&self) -> u64 {
        self.l2 + self.l3 + self.dram
    }

    /// Counts one access served at `level`.
    fn record(&mut self, level: Served) {
        self.accesses += 1;
        match level {
            Served::L2 => self.l2 += 1,
            Served::L3 => self.l3 += 1,
            Served::Dram => self.dram += 1,
        }
    }
}

/// Where a demand miss was eventually served.
#[derive(Debug, Clone, Copy)]
enum Served {
    L2,
    L3,
    Dram,
}

/// Workload summary statistics: everything the interval equations need,
/// gathered in one functional pass over the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Micro-ops profiled.
    pub uops: u64,
    /// Load micro-ops.
    pub loads: u64,
    /// Store micro-ops.
    pub stores: u64,
    /// Branch micro-ops.
    pub branches: u64,
    /// Micro-ops belonging to microcoded instructions.
    pub microcoded: u64,
    /// Micro-op count per [`UopClass`] (indexed by [`UopClass::index`]) —
    /// the inputs of the static port-pressure bound
    /// ([`crate::portpressure`]).
    pub class_uops: [u64; UopClass::COUNT],
    /// Vector floating-point operations (the FLOPS numerator).
    pub flops: u64,
    /// Mispredicted branches under the core's predictor (0 when the
    /// perfect-bpred idealization is on).
    pub mispredicts: u64,
    /// Instruction-side misses (L1I + ITLB walks folded together, split
    /// by serving level).
    pub icache: MissProfile,
    /// ITLB misses.
    pub itlb_misses: u64,
    /// Data-side misses (loads + stores beyond the L1D, split by serving
    /// level; 0 when the perfect-dcache idealization is on).
    pub dcache: MissProfile,
    /// The store-side subset of [`WorkloadSummary::dcache`]. The engine
    /// fires stores at the hierarchy and completes them without waiting
    /// for the fill (the store queue drains in the background), so store
    /// misses cost bandwidth but never serialize the pipeline — the
    /// memory *lower* bound must exclude them (see [`crate::predict`]).
    pub dcache_stores: MissProfile,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// Dataflow critical-path length in cycles under the core's latency
    /// table (infinite window, infinite ports; loads at L1D hit latency).
    pub critpath_cfg: f64,
    /// Same critical path with every arithmetic latency forced to 1
    /// (loads keep the L1D hit latency — the single-cycle-ALU rule).
    pub critpath_unit: f64,
}

impl WorkloadSummary {
    /// Branch misprediction ratio over all branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Events per micro-op for a raw count.
    pub fn per_uop(&self, count: u64) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            count as f64 / self.uops as f64
        }
    }

    /// Profiles `trace` against core `cfg` under `ideal` (idealized
    /// structures produce zero misses, matching the engine's semantics).
    pub fn profile<I: Iterator<Item = MicroOp>>(
        cfg: &CoreConfig,
        ideal: IdealFlags,
        trace: I,
    ) -> Self {
        let mut l1i = TagCache::new(&cfg.mem.l1i);
        let mut l1d = TagCache::new(&cfg.mem.l1d);
        let mut l2 = TagCache::new(&cfg.mem.l2);
        let mut l3 = cfg.mem.l3.as_ref().map(TagCache::new);
        let mut itlb = TagTlb::new(&cfg.mem.itlb);
        let mut dtlb = TagTlb::new(&cfg.mem.dtlb);
        let mut bpred = BranchPredictor::new(&cfg.bpred, ideal.perfect_bpred);
        let mut strides = StrideTable::default();

        let mut s = WorkloadSummary {
            uops: 0,
            loads: 0,
            stores: 0,
            branches: 0,
            microcoded: 0,
            class_uops: [0; UopClass::COUNT],
            flops: 0,
            mispredicts: 0,
            icache: MissProfile::default(),
            itlb_misses: 0,
            dcache: MissProfile::default(),
            dcache_stores: MissProfile::default(),
            dtlb_misses: 0,
            critpath_cfg: 0.0,
            critpath_unit: 0.0,
        };

        // Dataflow ready-times per architectural register, under the
        // configured latency table and under unit latencies.
        let mut ready_cfg = [0.0f64; ArchReg::COUNT];
        let mut ready_unit = [0.0f64; ArchReg::COUNT];
        let l1d_lat = f64::from(cfg.mem.l1d.latency);

        // Walks the L2(/L3) levels for a demand L1 miss and returns where
        // it was served. `next_line` mirrors the L2 next-line prefetcher.
        let miss_walk = |l2c: &mut TagCache,
                         l3c: &mut Option<TagCache>,
                         addr: u64,
                         next_line: bool,
                         line_bytes: u64|
         -> Served {
            if l2c.access(addr) {
                return Served::L2;
            }
            if next_line {
                l2c.install(addr + line_bytes);
            }
            if let Some(l3c) = l3c {
                if l3c.access(addr) {
                    return Served::L3;
                }
            }
            Served::Dram
        };
        let line_bytes = u64::from(cfg.mem.l2.line_bytes);
        let next_line = cfg.mem.prefetch.next_line_enabled;

        for u in trace {
            s.uops += 1;
            s.class_uops[UopClass::of(&u.kind).index()] += 1;
            if u.microcoded {
                s.microcoded += 1;
            }
            s.flops += u.flops();

            // Instruction side.
            if ideal.perfect_icache {
                // No instruction-side events.
            } else {
                if !itlb.access(u.pc) {
                    s.itlb_misses += 1;
                }
                if !l1i.access(u.pc) {
                    let lv = miss_walk(&mut l2, &mut l3, u.pc, next_line, line_bytes);
                    s.icache.record(lv);
                }
            }

            // Data side.
            if let Some(addr) = u.mem_addr() {
                if u.kind.is_load() {
                    s.loads += 1;
                } else {
                    s.stores += 1;
                }
                if !ideal.perfect_dcache {
                    if !dtlb.access(addr) {
                        s.dtlb_misses += 1;
                    }
                    if !l1d.access(addr) {
                        let lv = miss_walk(&mut l2, &mut l3, addr, next_line, line_bytes);
                        s.dcache.record(lv);
                        if !u.kind.is_load() {
                            s.dcache_stores.record(lv);
                        }
                    }
                    if cfg.mem.prefetch.stride_enabled {
                        for pf in strides.observe(
                            u.pc,
                            addr,
                            cfg.mem.prefetch.stride_degree,
                            cfg.mem.prefetch.stride_threshold,
                        ) {
                            // The timed hierarchy fills prefetches into
                            // the L2 only (`prefetch_into_l2`): later
                            // demand misses still pay the L1D→L2 trip.
                            l2.install(pf);
                        }
                    }
                }
            }

            // Branches.
            if let UopKind::Branch(info) = &u.kind {
                s.branches += 1;
                if bpred.predict_and_update(u.pc, info).mispredicted {
                    s.mispredicts += 1;
                }
            }

            // Dataflow critical path. Loads carry the L1D hit latency in
            // both variants (the single-cycle-ALU idealization keeps load
            // latency); everything else collapses to 1 in the unit path.
            let lat_cfg = if ideal.single_cycle_alu && !u.kind.is_load() {
                1.0
            } else {
                f64::from(cfg.lat.exec_latency(&u.kind))
            } + if u.kind.is_load() { l1d_lat } else { 0.0 };
            let lat_unit = 1.0 + if u.kind.is_load() { l1d_lat } else { 0.0 };

            let start_cfg = u
                .srcs()
                .map(|r| ready_cfg[r.index()])
                .fold(0.0f64, f64::max);
            let start_unit = u
                .srcs()
                .map(|r| ready_unit[r.index()])
                .fold(0.0f64, f64::max);
            let fin_cfg = start_cfg + lat_cfg;
            let fin_unit = start_unit + lat_unit;
            if let Some(d) = u.dst {
                ready_cfg[d.index()] = fin_cfg;
                ready_unit[d.index()] = fin_unit;
            }
            s.critpath_cfg = s.critpath_cfg.max(fin_cfg);
            s.critpath_unit = s.critpath_unit.max(fin_unit);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, BranchInfo, BranchKind};

    fn adds(n: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect()
    }

    #[test]
    fn counts_mix() {
        let mut trace = adds(100);
        trace.push(MicroOp::new(0x2000, UopKind::Load { addr: 0x8000 }));
        trace.push(MicroOp::new(0x2004, UopKind::Store { addr: 0x8040 }));
        trace.push(MicroOp::new(
            0x2008,
            UopKind::Branch(BranchInfo {
                taken: true,
                target: 0x1000,
                fallthrough: 0x200c,
                kind: BranchKind::Uncond,
            }),
        ));
        let s = WorkloadSummary::profile(
            &CoreConfig::broadwell(),
            IdealFlags::none(),
            trace.into_iter(),
        );
        assert_eq!(s.uops, 103);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
    }

    #[test]
    fn independent_adds_have_short_critpath() {
        let s = WorkloadSummary::profile(
            &CoreConfig::broadwell(),
            IdealFlags::none(),
            adds(1_000).into_iter(),
        );
        // 8 rotating destinations, no sources: chains never form.
        assert!(s.critpath_unit < 10.0, "critpath {}", s.critpath_unit);
    }

    #[test]
    fn serial_chain_has_full_critpath() {
        let trace: Vec<MicroOp> = (0..500u64)
            .map(|i| {
                MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Mul))
                    .with_src(ArchReg::new(1))
                    .with_dst(ArchReg::new(1))
            })
            .collect();
        let cfg = CoreConfig::broadwell();
        let s = WorkloadSummary::profile(&cfg, IdealFlags::none(), trace.into_iter());
        // Unit latency: one per op. Config latency: int_mul per op.
        assert!((s.critpath_unit - 500.0).abs() < 1e-9);
        assert!((s.critpath_cfg - 500.0 * f64::from(cfg.lat.int_mul)).abs() < 1e-9);
    }

    #[test]
    fn perfect_flags_suppress_events() {
        // A streaming footprint much larger than the L1D.
        let trace: Vec<MicroOp> = (0..4_000u64)
            .map(|i| MicroOp::new(0x1000, UopKind::Load { addr: i * 4096 }))
            .collect();
        let cfg = CoreConfig::broadwell().without_prefetch();
        let real = WorkloadSummary::profile(&cfg, IdealFlags::none(), trace.clone().into_iter());
        assert!(real.dcache.total() > 0);
        let ideal = WorkloadSummary::profile(
            &cfg,
            IdealFlags::none().with_perfect_dcache(),
            trace.into_iter(),
        );
        assert_eq!(ideal.dcache.total(), 0);
        assert_eq!(ideal.dtlb_misses, 0);
    }

    #[test]
    fn miss_levels_partition_misses() {
        let trace: Vec<MicroOp> = (0..8_000u64)
            .map(|i| {
                MicroOp::new(
                    0x1000,
                    UopKind::Load {
                        addr: (i * 64) % (1 << 22),
                    },
                )
            })
            .collect();
        let s = WorkloadSummary::profile(
            &CoreConfig::broadwell().without_prefetch(),
            IdealFlags::none(),
            trace.into_iter(),
        );
        assert_eq!(s.dcache.total(), s.dcache.accesses);
        assert_eq!(s.dcache.l2 + s.dcache.l3 + s.dcache.dram, s.dcache.total());
    }

    #[test]
    fn strided_stream_prefetches() {
        let mk = |pf: bool| {
            let cfg = if pf {
                CoreConfig::broadwell()
            } else {
                CoreConfig::broadwell().without_prefetch()
            };
            let trace: Vec<MicroOp> = (0..8_000u64)
                .map(|i| MicroOp::new(0x1000, UopKind::Load { addr: i * 64 }))
                .collect();
            WorkloadSummary::profile(&cfg, IdealFlags::none(), trace.into_iter())
        };
        let with_pf = mk(true);
        let without = mk(false);
        // Prefetches fill the L2 (not the L1D), so the miss *count* stays
        // but the serving level moves up: DRAM-served misses become
        // L2-served ones.
        assert!(
            with_pf.dcache.dram < without.dcache.dram / 2,
            "prefetcher must catch a strided stream in the L2: {} vs {} DRAM-served",
            with_pf.dcache.dram,
            without.dcache.dram
        );
        assert!(with_pf.dcache.l2 > without.dcache.l2);
    }
}
