//! Per-component tolerance bands for the differential crosscheck.
//!
//! A band widens the oracle's prediction interval by `abs + rel · CPI`
//! before it must overlap the simulator's measured interval. The defaults
//! are calibrated on the full SPEC/DeepBench × BDW/KNL/SKX sweep (see
//! DESIGN.md §9 and `cargo run --release --bin crosscheck`): tight enough
//! that past attribution bugs (double-charged components, leaked cycles)
//! would trip them, loose enough that legitimate second-order overlap
//! effects do not.

use crate::predict::{OracleComponent, ORACLE_COMPONENTS};
use mstacks_core::Band;

/// One [`Band`] per oracle component, plus a band for the total-CPI check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceBands {
    per: [Band; ORACLE_COMPONENTS.len()],
    /// Band for the total-CPI bracket. Wider on the high side in effect,
    /// since unmodeled components (`Other`, structural stalls) only ever
    /// add cycles.
    pub total: Band,
}

impl ToleranceBands {
    /// The calibrated defaults.
    pub fn default_bands() -> Self {
        let mut per = [Band::new(0.05, 0.05); ORACLE_COMPONENTS.len()];
        // Base is exact: accounting errors here are always bugs.
        per[OracleComponent::Base.index()] = Band::new(0.01, 0.01);
        // Icache: fetch-ahead and wrong-path pollution interact.
        per[OracleComponent::Icache.index()] = Band::new(0.03, 0.05);
        // Branch: wrong-path slot accounting differs per stage.
        per[OracleComponent::Branch.index()] = Band::new(0.05, 0.08);
        // Memory: MLP and prefetch timing are the least first-order
        // effects in the model.
        per[OracleComponent::Memory.index()] = Band::new(0.08, 0.12);
        // Execute/Depend: finite-window jamming vs infinite-window path.
        per[OracleComponent::Execute.index()] = Band::new(0.05, 0.08);
        per[OracleComponent::Depend.index()] = Band::new(0.06, 0.10);
        per[OracleComponent::Microcode.index()] = Band::new(0.03, 0.05);
        ToleranceBands {
            per,
            total: Band::new(0.10, 0.15),
        }
    }

    /// The band for component `c`.
    pub fn band(&self, c: OracleComponent) -> Band {
        self.per[c.index()]
    }

    /// Overrides the band for component `c` (builder style; used to
    /// tighten the harness around a component under investigation).
    pub fn with_band(mut self, c: OracleComponent, band: Band) -> Self {
        self.per[c.index()] = band;
        self
    }
}

impl Default for ToleranceBands {
    fn default() -> Self {
        ToleranceBands::default_bands()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_band_is_tightest() {
        let t = ToleranceBands::default();
        let base = t.band(OracleComponent::Base);
        for &c in &ORACLE_COMPONENTS {
            let b = t.band(c);
            assert!(b.abs >= base.abs && b.rel >= base.rel, "{c}");
        }
    }

    #[test]
    fn with_band_overrides() {
        let t = ToleranceBands::default().with_band(OracleComponent::Memory, Band::new(1.0, 0.0));
        assert_eq!(t.band(OracleComponent::Memory), Band::new(1.0, 0.0));
        assert_eq!(
            t.band(OracleComponent::Base),
            ToleranceBands::default().band(OracleComponent::Base)
        );
    }
}
