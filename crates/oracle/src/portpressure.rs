//! OSACA-style static port-pressure throughput bound.
//!
//! Static analyzers in the OSACA/uops.info tradition predict a kernel's
//! steady-state throughput from tabular per-instruction port and latency
//! data alone — no timing simulation. This module computes the same kind
//! of bound from a [`WorkloadSummary`]'s per-class µop counts and the
//! core's declarative class table, and the crosscheck harness uses it as
//! a second differential axis against the cycle-level engine:
//!
//! ```text
//!     issue-stage Base CPI  ≤  static bound CPI  ≤  issue-stage total CPI
//! ```
//!
//! Both inequalities are theorems, not tolerances:
//!
//! * **Lower side.** The bound is `max(width bound, port bound)` and the
//!   width bound is `1/W` (every stage drains at most its width per
//!   cycle, so `cycles ≥ n/W` with `W` the accounting width) — which is
//!   exactly the measured Base component of every stack.
//! * **Upper side.** The engine issues at most one µop per port per
//!   cycle, and an unpipelined µop monopolizes its port for its whole
//!   latency; therefore the engine's cycle count is at least the minimal
//!   makespan of scheduling the trace's port load. Wrong-path and replay
//!   work only *add* engine cycles, so the bound stays below the
//!   measured total even though the summary counts architectural µops
//!   only.
//!
//! The minimal makespan with per-class port-eligibility sets is computed
//! exactly: for divisible load, LP duality reduces it to
//! `max over class subsets S of load(S) / |ports(S)|`, where `ports(S)`
//! is the union of the eligible ports of the classes in `S` (a
//! fractional relaxation — real schedules are integral, so the true
//! engine makespan can only be larger, which keeps the bound on the safe
//! side). With at most 13 classes the subset enumeration is at most 2¹³
//! terms, and only classes that actually occur are enumerated.

use crate::crosscheck::crosscheck;
use crate::predict::OraclePrediction;
use crate::summary::WorkloadSummary;
use crate::tolerance::ToleranceBands;
use mstacks_core::{Band, Component, ComponentCheck, Interval, MultiStackReport, StackComparison};
use mstacks_model::{CoreConfig, IdealFlags, UopClass, UOP_CLASSES};

/// The static throughput bound for one (core, workload) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticPortBound {
    /// Width-limited CPI: `1 / accounting_width`.
    pub width_cpi: f64,
    /// Port-limited CPI: minimal port makespan divided by the µop count.
    pub port_cpi: f64,
    /// The bound itself: `max(width_cpi, port_cpi)`.
    pub bound_cpi: f64,
    /// Port mask (bit i = port i) of the binding port subset when the
    /// bound is port-limited; 0 when the width bound dominates.
    pub critical_ports: u32,
    /// Port-cycles of demand per class (count × occupancy), indexed by
    /// [`UopClass::index`].
    pub per_class_load: [f64; UopClass::COUNT],
}

impl StaticPortBound {
    /// Whether execution-port pressure (rather than pipeline width) is
    /// the binding constraint.
    pub fn port_limited(&self) -> bool {
        self.port_cpi > self.width_cpi
    }
}

/// Computes the static port-pressure bound for `summary` on `cfg` under
/// `ideal` (the single-cycle-ALU idealization collapses the occupancy of
/// unpipelined non-memory ops to one cycle, mirroring the engine).
pub fn static_port_bound(
    cfg: &CoreConfig,
    ideal: IdealFlags,
    summary: &WorkloadSummary,
) -> StaticPortBound {
    let table = cfg.class_table();
    let mut per_class_load = [0.0f64; UopClass::COUNT];

    // Active classes: (port mask, port-cycles of load).
    let mut active: Vec<(u32, f64)> = Vec::new();
    for c in UOP_CLASSES {
        let n = summary.class_uops[c.index()];
        if n == 0 {
            continue;
        }
        let spec = table.spec(c);
        // Pipelined ops occupy their port for one cycle regardless of
        // latency; unpipelined ops block it for the whole (effective)
        // latency. Loads/stores are memory ops, so single_cycle_alu never
        // rewrites them — but no memory class is unpipelined anyway.
        let occupancy = if spec.pipelined || ideal.single_cycle_alu {
            1.0
        } else {
            f64::from(spec.latency)
        };
        let load = n as f64 * occupancy;
        per_class_load[c.index()] = load;
        active.push((spec.port_mask, load));
    }

    let width_cpi = 1.0 / f64::from(cfg.accounting_width());
    let (mut makespan, mut critical_ports) = (0.0f64, 0u32);
    for subset in 1u32..(1 << active.len()) {
        let mut load = 0.0;
        let mut ports = 0u32;
        for (i, &(mask, l)) in active.iter().enumerate() {
            if subset >> i & 1 == 1 {
                load += l;
                ports |= mask;
            }
        }
        let span = if ports == 0 {
            // A class with demand but no eligible port can never issue;
            // the engine would deadlock. Unreachable for configurations
            // whose traces it actually ran, kept as a guard.
            f64::INFINITY
        } else {
            load / f64::from(ports.count_ones())
        };
        if span > makespan {
            makespan = span;
            critical_ports = ports;
        }
    }
    let port_cpi = if summary.uops == 0 {
        0.0
    } else {
        makespan / summary.uops as f64
    };
    if port_cpi <= width_cpi {
        critical_ports = 0;
    }
    StaticPortBound {
        width_cpi,
        port_cpi,
        bound_cpi: width_cpi.max(port_cpi),
        critical_ports,
        per_class_load,
    }
}

/// The bracket check: the static bound must land between the issue
/// stack's Base CPI and its total CPI. The band is a pure floating-point
/// epsilon — both sides are mathematical inequalities, not model
/// tolerances.
pub fn port_bound_check(bound: &StaticPortBound, multi: &MultiStackReport) -> ComponentCheck {
    let measured = Interval::new(multi.issue.cpi_of(Component::Base), multi.issue.total_cpi());
    ComponentCheck::evaluate(
        "static-port",
        Interval::point(bound.bound_cpi),
        measured,
        Band::new(1e-6, 0.0),
        multi.total_cpi(),
    )
}

/// [`crosscheck`] with the static port-pressure bound appended as an
/// extra differential axis.
pub fn crosscheck_static(
    prediction: &OraclePrediction,
    bound: &StaticPortBound,
    multi: &MultiStackReport,
    bands: &ToleranceBands,
) -> StackComparison {
    let mut cmp = crosscheck(prediction, multi, bands);
    cmp.checks.push(port_bound_check(bound, multi));
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_core::Session;
    use mstacks_model::{AluClass, ArchReg, MicroOp, UopKind};

    fn profile(trace: &[MicroOp], ideal: IdealFlags) -> (CoreConfig, WorkloadSummary) {
        let cfg = CoreConfig::broadwell();
        let s = WorkloadSummary::profile(&cfg, ideal, trace.iter().cloned());
        (cfg, s)
    }

    fn adds(n: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect()
    }

    #[test]
    fn alu_trace_is_width_bound() {
        // Four ALU ports on BDW and accounting width 4: both bounds are
        // 0.25, so the width bound dominates (ties go to width).
        let (cfg, s) = profile(&adds(4_000), IdealFlags::none());
        let b = static_port_bound(&cfg, IdealFlags::none(), &s);
        assert!((b.width_cpi - 0.25).abs() < 1e-12);
        assert!((b.port_cpi - 0.25).abs() < 1e-12);
        assert!(!b.port_limited());
        assert_eq!(b.critical_ports, 0);
    }

    #[test]
    fn divides_are_port_bound_by_their_latency() {
        // int_div: one eligible port, 21-cycle unpipelined occupancy →
        // port CPI 21 regardless of width.
        let trace: Vec<MicroOp> = (0..500u64)
            .map(|i| {
                MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Div))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect();
        let (cfg, s) = profile(&trace, IdealFlags::none());
        let b = static_port_bound(&cfg, IdealFlags::none(), &s);
        assert!((b.port_cpi - f64::from(cfg.lat.int_div)).abs() < 1e-12);
        assert!(b.port_limited());
        assert_ne!(b.critical_ports, 0);
    }

    #[test]
    fn single_cycle_alu_collapses_divide_occupancy() {
        let trace: Vec<MicroOp> = (0..500u64)
            .map(|_| MicroOp::new(0x1000, UopKind::IntAlu(AluClass::Div)))
            .collect();
        let ideal = IdealFlags::none().with_single_cycle_alu();
        let (cfg, s) = profile(&trace, ideal);
        let b = static_port_bound(&cfg, ideal, &s);
        // One eligible port, one-cycle occupancy → port CPI 1.
        assert!((b.port_cpi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subset_union_beats_single_classes() {
        // Loads (ports 4,5) and stores (port 6) individually bound CPI at
        // 1/2 and 1/3 of the mix; the {load,store} subset shares 3 ports
        // and with a 50/50 mix gives (n/2 + n/2) / 3 = n/3 port-cycles —
        // but store alone gives (n/2)/1 = n/2, the true maximum. The
        // enumeration must find it.
        let trace: Vec<MicroOp> = (0..1_000u64)
            .map(|i| {
                if i % 2 == 0 {
                    MicroOp::new(
                        0x1000,
                        UopKind::Load {
                            addr: 0x8000 + (i % 64) * 8,
                        },
                    )
                } else {
                    MicroOp::new(
                        0x1000,
                        UopKind::Store {
                            addr: 0x8000 + (i % 64) * 8,
                        },
                    )
                }
            })
            .collect();
        let (cfg, s) = profile(&trace, IdealFlags::none());
        let b = static_port_bound(&cfg, IdealFlags::none(), &s);
        assert!((b.port_cpi - 0.5).abs() < 1e-12, "port cpi {}", b.port_cpi);
        // The binding subset is the store port alone.
        assert_eq!(b.critical_ports, 1 << 6);
    }

    #[test]
    fn bound_brackets_the_engine() {
        for ideal in [
            IdealFlags::none(),
            IdealFlags::none().with_single_cycle_alu(),
        ] {
            for trace in [
                adds(3_000),
                (0..1_500u64)
                    .map(|i| {
                        MicroOp::new(0x1000 + (i % 32) * 4, {
                            match i % 5 {
                                0 => UopKind::Load {
                                    addr: (i % 128) * 64,
                                },
                                1 => UopKind::Store {
                                    addr: (i % 128) * 64,
                                },
                                2 => UopKind::IntAlu(AluClass::Mul),
                                3 => UopKind::IntAlu(AluClass::Div),
                                _ => UopKind::IntAlu(AluClass::Add),
                            }
                        })
                        .with_dst(ArchReg::new((i % 8) as u16))
                    })
                    .collect(),
            ] {
                let (cfg, s) = profile(&trace, ideal);
                let b = static_port_bound(&cfg, ideal, &s);
                let report = Session::new(cfg)
                    .with_ideal(ideal)
                    .run(trace.into_iter())
                    .expect("completes");
                let check = port_bound_check(&b, &report.multi);
                assert!(check.pass(), "bracket violated:\n{check}");
            }
        }
    }

    #[test]
    fn empty_trace_is_degenerate() {
        let (cfg, s) = profile(&[], IdealFlags::none());
        let b = static_port_bound(&cfg, IdealFlags::none(), &s);
        assert_eq!(b.port_cpi, 0.0);
        assert!((b.bound_cpi - b.width_cpi).abs() < 1e-12);
    }
}
