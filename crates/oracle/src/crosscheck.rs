//! Differential comparison: oracle prediction vs simulator measurement.
//!
//! The simulator side of a component is itself an interval — the min/max
//! across the dispatch, issue and commit stacks of the summed CPI of the
//! core components the oracle component aggregates. Agreement means the
//! tolerance-widened prediction overlaps that measured interval, plus a
//! total-CPI bracket check (with the unmodeled `Other`/`Smt` cycles
//! allowed on the high side only).

use crate::predict::{OraclePrediction, ORACLE_COMPONENTS};
use crate::tolerance::ToleranceBands;
use mstacks_core::{ComponentCheck, Interval, MultiStackReport, StackComparison};

/// The measured interval for one oracle component: `[min, max]` over the
/// three bounding stacks of the summed core-component CPI.
pub fn measured_interval(multi: &MultiStackReport, c: crate::predict::OracleComponent) -> Interval {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for stack in multi.stacks() {
        let v: f64 = c.core_components().iter().map(|&cc| stack.cpi_of(cc)).sum();
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Interval::new(lo, hi)
}

/// Compares a prediction against a measured multi-stage report under
/// `bands`. The comparison scale (for the relative band part) is the
/// measured total CPI.
pub fn crosscheck(
    prediction: &OraclePrediction,
    multi: &MultiStackReport,
    bands: &ToleranceBands,
) -> StackComparison {
    let scale = multi.total_cpi();
    let mut checks: Vec<ComponentCheck> = ORACLE_COMPONENTS
        .iter()
        .map(|&c| {
            ComponentCheck::evaluate(
                c.label(),
                prediction.interval(c),
                measured_interval(multi, c),
                bands.band(c),
                scale,
            )
        })
        .collect();

    // Total bracket: the measured total must fall inside the summed
    // prediction, widened by the total band — asymmetrically, because the
    // oracle does not model the `Other`/`Smt` cycles which only ever push
    // the measurement up.
    let other: f64 = multi
        .stacks()
        .iter()
        .map(|s| s.cpi_of(mstacks_core::Component::Other) + s.cpi_of(mstacks_core::Component::Smt))
        .fold(0.0, f64::max);
    let total_pred = Interval::new(prediction.total.lo, prediction.total.hi + other);
    checks.push(ComponentCheck::evaluate(
        "total",
        total_pred,
        Interval::point(scale),
        bands.total,
        scale,
    ));
    StackComparison { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{predict, OracleComponent};
    use crate::summary::WorkloadSummary;
    use mstacks_core::Session;
    use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};

    fn trace(n: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_src(ArchReg::new((i % 4) as u16))
                    .with_dst(ArchReg::new(((i + 1) % 4) as u16))
            })
            .collect()
    }

    #[test]
    fn simple_alu_trace_crosschecks() {
        let cfg = CoreConfig::broadwell();
        let t = trace(20_000);
        let s = WorkloadSummary::profile(&cfg, IdealFlags::none(), t.clone().into_iter());
        let p = predict(&cfg, &s);
        let report = Session::new(cfg).run(t.into_iter()).expect("completes");
        let cmp = crosscheck(&p, &report.multi, &ToleranceBands::default());
        assert!(cmp.pass(), "diverged:\n{cmp}");
    }

    #[test]
    fn measured_interval_spans_stages() {
        let cfg = CoreConfig::broadwell();
        let t = trace(5_000);
        let report = Session::new(cfg).run(t.into_iter()).expect("completes");
        let iv = measured_interval(&report.multi, OracleComponent::Base);
        // Base CPI is identical at every stage: degenerate interval 1/W.
        assert!(iv.width() < 1e-9);
        assert!((iv.mid() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn a_wrong_prediction_fails() {
        let cfg = CoreConfig::broadwell();
        let t = trace(5_000);
        let s = WorkloadSummary::profile(&cfg, IdealFlags::none(), t.clone().into_iter());
        let mut p = predict(&cfg, &s);
        // Corrupt the total so the bracket check must fail.
        p.total = Interval::new(40.0, 50.0);
        let report = Session::new(cfg).run(t.into_iter()).expect("completes");
        let cmp = crosscheck(&p, &report.multi, &ToleranceBands::default());
        assert!(!cmp.pass());
        assert!(cmp.failures().any(|c| c.label == "total"));
    }
}
