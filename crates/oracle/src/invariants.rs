//! Metamorphic invariants on simulator output.
//!
//! These are the paper's structural guarantees, checked on *any* run —
//! including runs on fuzzed configurations where no golden numbers exist:
//!
//! 1. every stage's CPI stack sums to the measured cycle count;
//! 2. the dispatch/issue/commit totals are mutually consistent;
//! 3. each [`IdealFlags`] idealization never *increases* the component it
//!    idealizes;
//! 4. achieved FLOPS never exceed `peak_flops_per_cycle`, and the FLOPS
//!    stack also sums to the cycle count;
//! 5. SMT per-thread stacks each account every one of their thread's
//!    cycles (the per-thread books aggregate to the multi-threaded run).
//!
//! Checks return human-readable violation strings (empty = clean), so the
//! fuzz harness can aggregate them across hundreds of runs and stay
//! deterministic: same seed, same configs, same verdicts.

use mstacks_core::{Component, SessionReport, SimReport};
use mstacks_model::{CoreConfig, IdealKind};

/// Absolute slack (in cycles) allowed when a stack's component sum is
/// compared against the measured cycle count. SMT runs add one boundary
/// cycle per thread.
const SUM_SLACK_CYCLES: f64 = 1.5;

/// Upper allowance for the width-normalizer carry folded into base at
/// finalize (the folding contract in `mstacks_core::audit`): a stage wider
/// than the accounting width can end the run with undrained carry, bounded
/// by the maximum in-flight work divided by the accounting width. On
/// configurations where every stage width equals the accounting width
/// (all three presets) this is never consumed — sums are exact there.
fn carry_allowance(cfg: &CoreConfig) -> f64 {
    let in_flight = cfg.rob_size as f64 + f64::from(cfg.fetch_width * cfg.frontend_depth);
    in_flight / f64::from(cfg.accounting_width().max(1))
}

/// Relative slack for cross-run component comparisons (idealization
/// monotonicity): second-order coupling means "never increases" holds up
/// to accounting noise, not to the last ulp.
const MONOTONE_ABS: f64 = 0.02;
const MONOTONE_REL: f64 = 0.02;

fn check_stack_sums(
    out: &mut Vec<String>,
    label: &str,
    stacks: &mstacks_core::MultiStackReport,
    flops: &mstacks_core::FlopsStack,
    cycles: u64,
    carry: f64,
) {
    let cycles_f = cycles as f64;
    for s in stacks.all_stacks() {
        let sum = s.total_cycles();
        if sum < cycles_f - SUM_SLACK_CYCLES || sum > cycles_f + carry + SUM_SLACK_CYCLES {
            out.push(format!(
                "{label}: {} stack sums to {sum:.3} ≠ {cycles} cycles (carry allowance {carry:.1})",
                s.stage
            ));
        }
        for (c, cpi) in s.iter_cpi() {
            if cpi < -1e-9 {
                out.push(format!(
                    "{label}: {} stack has negative {c} component {cpi:.6}",
                    s.stage
                ));
            }
        }
    }
    // Mutual consistency of the three bounding stacks: all sum to the
    // same cycle count, so their totals agree pairwise.
    let totals: Vec<f64> = stacks.stacks().iter().map(|s| s.total_cycles()).collect();
    for (i, a) in totals.iter().enumerate() {
        for b in &totals[i + 1..] {
            if (a - b).abs() > carry + 2.0 * SUM_SLACK_CYCLES {
                out.push(format!(
                    "{label}: stage totals inconsistent ({a:.3} vs {b:.3})"
                ));
            }
        }
    }
    let fsum = flops.total_cycles();
    if fsum < cycles_f - SUM_SLACK_CYCLES || fsum > cycles_f + carry + SUM_SLACK_CYCLES {
        out.push(format!(
            "{label}: FLOPS stack sums to {fsum:.3} ≠ {cycles} cycles (carry allowance {carry:.1})"
        ));
    }
}

/// Invariants 1, 2 and 4 on a single-thread report.
pub fn check_report(label: &str, r: &SimReport, cfg: &CoreConfig) -> Vec<String> {
    let peak_flops_per_cycle = cfg.peak_flops_per_cycle();
    let carry = carry_allowance(cfg);
    let mut out = Vec::new();
    check_stack_sums(&mut out, label, &r.multi, &r.flops, r.result.cycles, carry);
    let achieved = r.result.flops_per_cycle();
    if achieved > f64::from(peak_flops_per_cycle) + 1e-9 {
        out.push(format!(
            "{label}: achieved {achieved:.3} FLOPS/cycle exceeds peak {peak_flops_per_cycle}"
        ));
    }
    let stack_achieved = r.flops.achieved_flops_per_cycle();
    if stack_achieved > f64::from(peak_flops_per_cycle) + 1e-9 {
        out.push(format!(
            "{label}: FLOPS-stack base implies {stack_achieved:.3} FLOPS/cycle > peak {peak_flops_per_cycle}"
        ));
    }
    out
}

/// The CPI component targeted by each idealization knob.
pub fn idealized_component(kind: IdealKind) -> Component {
    match kind {
        IdealKind::Icache => Component::Icache,
        IdealKind::Dcache => Component::Dcache,
        IdealKind::Bpred => Component::Bpred,
        IdealKind::Alu => Component::AluLat,
    }
}

/// Invariant 3: idealizing a structure never increases the component it
/// targets, at any stage (up to accounting noise).
pub fn check_idealization_monotone(
    label: &str,
    kind: IdealKind,
    baseline: &SimReport,
    idealized: &SimReport,
) -> Vec<String> {
    let c = idealized_component(kind);
    let mut out = Vec::new();
    for (b, i) in baseline
        .multi
        .all_stacks()
        .iter()
        .zip(idealized.multi.all_stacks())
    {
        let before = b.cpi_of(c);
        let after = i.cpi_of(c);
        if after > before + MONOTONE_ABS + MONOTONE_REL * before.max(0.0) {
            out.push(format!(
                "{label}: {kind} increased {c} at {} stage ({before:.4} → {after:.4})",
                b.stage
            ));
        }
    }
    out
}

/// Invariant 5: each SMT thread's books account every one of its cycles,
/// FLOPS stay under peak per thread, and solo runs carry no SMT
/// component.
pub fn check_session(label: &str, r: &SessionReport, cfg: &CoreConfig) -> Vec<String> {
    let peak_flops_per_cycle = cfg.peak_flops_per_cycle();
    let carry = carry_allowance(cfg);
    let mut out = Vec::new();
    for (tid, t) in r.threads.iter().enumerate() {
        let tl = format!("{label}[t{tid}]");
        check_stack_sums(&mut out, &tl, &t.multi, &t.flops, t.result.cycles, carry);
        let achieved = t.result.flops_per_cycle();
        if achieved > f64::from(peak_flops_per_cycle) + 1e-9 {
            out.push(format!(
                "{tl}: achieved {achieved:.3} FLOPS/cycle exceeds peak {peak_flops_per_cycle}"
            ));
        }
        if r.threads.len() == 1 {
            for s in t.multi.all_stacks() {
                let smt = s.cpi_of(Component::Smt);
                if smt > 1e-9 {
                    out.push(format!(
                        "{tl}: solo thread has nonzero SMT component {smt:.6} at {} stage",
                        s.stage
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_core::Session;
    use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};

    fn trace(n: u64, base: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_src(ArchReg::new((i % 4) as u16))
                    .with_dst(ArchReg::new(((i + 1) % 4) as u16))
            })
            .collect()
    }

    #[test]
    fn clean_run_has_no_violations() {
        let cfg = CoreConfig::broadwell();
        let r = Session::new(cfg.clone())
            .run(trace(5_000, 0x1000).into_iter())
            .expect("completes");
        let v = check_report("bdw", &r, &cfg);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn idealization_monotone_on_real_runs() {
        let cfg = CoreConfig::broadwell();
        let base = Session::new(cfg.clone())
            .run(trace(5_000, 0x1000).into_iter())
            .expect("completes");
        for kind in mstacks_model::IDEAL_KINDS {
            let ideal = Session::new(cfg.clone())
                .with_ideal(IdealFlags::none().with(kind))
                .run(trace(5_000, 0x1000).into_iter())
                .expect("completes");
            let v = check_idealization_monotone("bdw", kind, &base, &ideal);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn smt_session_is_clean() {
        let cfg = CoreConfig::broadwell();
        let r = Session::new(cfg.clone())
            .run_threads(vec![
                trace(4_000, 0x1000).into_iter(),
                trace(4_000, 0x9000).into_iter(),
            ])
            .expect("completes");
        let v = check_session("bdw-smt", &r, &cfg);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn corrupted_books_are_reported() {
        let cfg = CoreConfig::broadwell();
        let mut r = Session::new(cfg.clone())
            .run(trace(3_000, 0x1000).into_iter())
            .expect("completes");
        // Forge a cycle count the books cannot explain.
        r.result.cycles += 1_000;
        let v = check_report("forged", &r, &cfg);
        assert!(!v.is_empty());
        assert!(v.iter().any(|m| m.contains("stack sums to")));
    }
}
