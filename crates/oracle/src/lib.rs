//! Analytical first-order reference model and differential/metamorphic
//! harness for the mstacks simulator.
//!
//! The cycle-level engine and this oracle answer the same question — "how
//! many cycles does this trace cost on this core, and why?" — through two
//! independent code paths:
//!
//! * [`summary::WorkloadSummary::profile`] runs a *functional* (tag-only,
//!   non-timed) pass over a trace: cache/TLB tag simulation with the same
//!   geometries and prefetchers, the real branch predictor, and dual
//!   dataflow critical-path profiles (configured vs unit latencies).
//! * [`predict::predict`] turns those summary statistics into
//!   per-component CPI *intervals* from interval-analysis equations —
//!   first-order models in the tradition the paper builds on.
//! * [`crosscheck::crosscheck`] compares the prediction against the
//!   simulator's multi-stage measurement under per-component
//!   [`tolerance::ToleranceBands`]; divergence beyond a band flags an
//!   attribution bug in one of the two models.
//! * [`invariants`] checks metamorphic properties that need no reference
//!   numbers at all — conservation, idealization monotonicity, FLOPS
//!   peaks, SMT aggregation — so fuzzed configurations are testable too.

pub mod crosscheck;
pub mod invariants;
pub mod portpressure;
pub mod predict;
pub mod summary;
pub mod tolerance;

pub use crosscheck::{crosscheck, measured_interval};
pub use portpressure::{crosscheck_static, port_bound_check, static_port_bound, StaticPortBound};
pub use predict::{predict, OracleComponent, OraclePrediction, ORACLE_COMPONENTS};
pub use summary::{MissProfile, WorkloadSummary};
pub use tolerance::ToleranceBands;
