//! Multi-core co-run simulation: N single-thread engines in lockstep
//! against a shared uncore.
//!
//! Each core is a full [`mstacks_pipeline::Engine`] with private L1/L2
//! (the same thread-parameterized pipeline a [`crate::Session`] runs),
//! linked to one [`SharedUncore`] — a shared L3 slice, a shared MSHR pool
//! and a shared DRAM channel — via
//! [`mstacks_mem::Hierarchy::new_shared`]. The driver steps every
//! non-stopped core once per cycle in core order, so cross-core resource
//! arbitration is deterministic.
//!
//! Every core's multi-stage CPI stacks gain an explicit **interference**
//! component: on each shared-uncore access the uncore times the request
//! twice — against the real shared state and against a per-core
//! counterfactual that sees only this core's own traffic — and the
//! difference is the latency that exists *only* because of co-runners. The
//! pipeline tags the load's ROB entry with those cycles, and the
//! accountants blame stall cycles falling in the access's interference
//! tail window on [`Component::Interference`](crate::Component) (same
//! blame machinery the SMT accountants use per thread). A core running
//! alone — or next to an idle co-runner — sees structurally identical
//! request streams in both timings, so its interference component is
//! *exactly* zero and its books are bit-identical to a solo
//! [`crate::Session`] run.
//!
//! # Example
//!
//! ```
//! use mstacks_core::CoRun;
//! use mstacks_model::{ArchReg, CoreConfig, MicroOp, UopKind};
//!
//! let mk = |base: u64| {
//!     (0..800u64)
//!         .map(move |i| {
//!             MicroOp::new(base + (i % 16) * 4, UopKind::Load { addr: base + i * 64 })
//!                 .with_dst(ArchReg::new((i % 8) as u16))
//!         })
//!         .collect::<Vec<_>>()
//!         .into_iter()
//! };
//! let report = CoRun::new(CoreConfig::broadwell())
//!     .run(vec![mk(0x10000), mk(0x40000000)])
//!     .expect("completes");
//! assert_eq!(report.cores.len(), 2);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::accounting::BadSpecMode;
use crate::audit::{AuditObserver, AuditOptions, AuditReport, FaultSpec};
use crate::session::{ThreadObserver, ThreadReport};
use mstacks_mem::{Hierarchy, SharedSummary, SharedUncore};
use mstacks_model::{CoreConfig, IdealFlags, MicroOp};
use mstacks_pipeline::{Engine, PipelineError, PipelineResult, StageObserver, WATCHDOG_CYCLES};

/// Core-count ceiling (mirrors the engine's hardware-thread ceiling; the
/// CLI exposes 2–4).
const MAX_CORES: usize = 4;

/// Results of a co-run: one report per core, plus the shared-resource
/// occupancy summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CoRunReport {
    /// Per-core reports, in core order. Each carries the core's
    /// multi-stage CPI stacks with the interference component.
    pub cores: Vec<ThreadReport>,
    /// Shared L3 / MSHR pool / DRAM channel traffic and per-core
    /// interference attribution.
    pub shared: SharedSummary,
}

/// Builder-style co-run driver: N homogeneous cores, one trace each,
/// stepped in lockstep against one shared uncore.
#[derive(Debug, Clone)]
pub struct CoRun {
    cfg: CoreConfig,
    ideal: IdealFlags,
    badspec: BadSpecMode,
    max_uops: Option<u64>,
    audit: bool,
    fault: Option<FaultSpec>,
    corrupt_shared_book: bool,
}

impl CoRun {
    /// A co-run on homogeneous cores of configuration `cfg`, with no
    /// idealization, ground-truth bad-speculation handling and no
    /// micro-op cap.
    pub fn new(cfg: CoreConfig) -> Self {
        CoRun {
            cfg,
            ideal: IdealFlags::none(),
            badspec: BadSpecMode::GroundTruth,
            max_uops: None,
            audit: false,
            fault: None,
            corrupt_shared_book: false,
        }
    }

    /// A co-run on a core loaded from a `.core` table file.
    ///
    /// # Errors
    ///
    /// Returns the table's parse or validation error.
    pub fn from_core_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, mstacks_model::TableError> {
        Ok(CoRun::new(CoreConfig::from_core_file(path)?))
    }

    /// Sets the idealization flags (builder style).
    pub fn with_ideal(mut self, ideal: IdealFlags) -> Self {
        self.ideal = ideal;
        self
    }

    /// Sets the wrong-path discrimination mode (builder style).
    pub fn with_badspec(mut self, mode: BadSpecMode) -> Self {
        self.badspec = mode;
        self
    }

    /// Caps the simulation at `n` committed micro-ops per core (builder
    /// style).
    pub fn with_max_uops(mut self, n: u64) -> Self {
        self.max_uops = Some(n);
        self
    }

    /// Enables the conservation-audit subsystem on every core (builder
    /// style); any violation becomes [`PipelineError::Audit`] from
    /// [`CoRun::run`].
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Injects a deliberate accounting corruption into core 0 (builder
    /// style). Implies auditing, as [`crate::Session`] does.
    pub fn with_fault_injection(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Test hook: corrupts the shared-L3 MSHR book (its reported occupancy
    /// exceeds capacity) so the audit tests can prove a broken *shared*
    /// structure is caught at the memory-occupancy check of every core.
    /// Implies auditing.
    pub fn with_corrupt_shared_book(mut self) -> Self {
        self.corrupt_shared_book = true;
        self
    }

    /// Runs one trace per core (1–4) in lockstep and produces per-core
    /// stacks plus the shared-resource summary.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from any core (deadlock watchdog, with
    /// the `thread` field reporting the *core* index); with auditing
    /// enabled, the first violation folds into [`PipelineError::Audit`].
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or holds more than 4 entries.
    pub fn run<I: Iterator<Item = MicroOp>>(
        &self,
        traces: Vec<I>,
    ) -> Result<CoRunReport, PipelineError> {
        if self.audit || self.fault.is_some() || self.corrupt_shared_book {
            let (report, audit) = self.run_audited(traces, AuditOptions::default())?;
            if let Some(v) = audit.violations.first() {
                return Err(PipelineError::Audit {
                    cycle: v.cycle,
                    thread: v.thread,
                    stage: v.stage.clone(),
                    violations: audit.violations.len() + audit.dropped,
                    detail: v.message.clone(),
                });
            }
            return Ok(report);
        }
        let n = traces.len();
        let mut obs: Vec<ThreadObserver> = (0..n)
            .map(|_| ThreadObserver::new(&self.cfg, self.badspec))
            .collect();
        let (results, shared) = self.drive(traces, &mut obs)?;
        let cores = obs
            .into_iter()
            .zip(results)
            .map(|(o, result)| o.finish(result))
            .collect();
        Ok(CoRunReport { cores, shared })
    }

    /// Runs with the audit subsystem attached to every core and returns
    /// the structured findings next to the (identical) report.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    /// Audit violations do NOT error here — inspect the [`AuditReport`].
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or holds more than 4 entries.
    pub fn run_audited<I: Iterator<Item = MicroOp>>(
        &self,
        traces: Vec<I>,
        opts: AuditOptions,
    ) -> Result<(CoRunReport, AuditReport), PipelineError> {
        let n = traces.len();
        let mut obs: Vec<AuditObserver> = (0..n)
            .map(|c| {
                AuditObserver::new(
                    ThreadObserver::new(&self.cfg, self.badspec),
                    c,
                    &opts,
                    if c == 0 { self.fault } else { None },
                )
            })
            .collect();
        let (results, shared) = self.drive(traces, &mut obs)?;
        let mut audit = AuditReport::default();
        let cores = obs
            .into_iter()
            .zip(results)
            .map(|(o, result)| {
                let (inner, findings) = o.into_parts();
                audit.merge(findings);
                inner.finish(result)
            })
            .collect();
        Ok((CoRunReport { cores, shared }, audit))
    }

    /// The lockstep driver: builds the shared uncore and one single-thread
    /// engine per core, then steps every non-stopped core once per cycle
    /// in core order. `obs[c]` observes core `c`.
    fn drive<I: Iterator<Item = MicroOp>, O: StageObserver>(
        &self,
        traces: Vec<I>,
        obs: &mut [O],
    ) -> Result<(Vec<PipelineResult>, SharedSummary), PipelineError> {
        let n = traces.len();
        assert!((1..=MAX_CORES).contains(&n), "1..=4 cores supported");
        assert_eq!(obs.len(), n, "one observer per core");
        let uncore = Rc::new(RefCell::new(SharedUncore::new(&self.cfg.mem, n)));
        if self.corrupt_shared_book {
            uncore.borrow_mut().corrupt_book();
        }
        let mut engines: Vec<Engine<I>> = traces
            .into_iter()
            .enumerate()
            .map(|(c, trace)| {
                let mem = Hierarchy::new_shared(&self.cfg.mem, Rc::clone(&uncore), c as u8);
                Engine::with_memory(self.cfg.clone(), self.ideal, vec![trace], mem)
            })
            .collect();
        let stopped =
            |e: &Engine<I>| e.thread_done(0) || self.max_uops.is_some_and(|m| e.committed(0) >= m);
        let total = |engines: &[Engine<I>]| -> u64 { engines.iter().map(|e| e.committed(0)).sum() };
        let mut idle_cycles = 0u64;
        let mut last_total = total(&engines);
        while !engines.iter().all(stopped) {
            for (c, engine) in engines.iter_mut().enumerate() {
                if !stopped(engine) {
                    engine.step(std::slice::from_mut(&mut obs[c]));
                }
            }
            let t = total(&engines);
            if t != last_total {
                last_total = t;
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                if idle_cycles > WATCHDOG_CYCLES {
                    let c = engines
                        .iter()
                        .position(|e| !stopped(e))
                        .expect("a non-stopped core exists");
                    let mut err = engines[c].deadlock_error();
                    if let PipelineError::Deadlock { thread, .. } = &mut err {
                        // Single-thread engines always report thread 0;
                        // re-key to the core index for the caller.
                        *thread = c;
                    }
                    return Err(err);
                }
            }
        }
        let results = engines.iter().map(|e| e.result_of(0)).collect();
        let shared = uncore.borrow().summary();
        Ok((results, shared))
    }

    /// The configuration every core runs on.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::session::Session;
    use mstacks_model::{AluClass, ArchReg, UopKind};

    /// Memory-bound stream whose line sequence is scrambled, so the
    /// prefetchers cannot hide the misses (only *demand* misses carry
    /// attributed interference).
    fn load_stream(n: u64, base: u64) -> std::vec::IntoIter<MicroOp> {
        (0..n)
            .map(|i| {
                let line = (i.wrapping_mul(2_654_435_761)) % 16_384;
                MicroOp::new(
                    base + (i % 16) * 4,
                    UopKind::Load {
                        addr: base + line * 64,
                    },
                )
                .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn alu_stream(n: u64, base: u64) -> std::vec::IntoIter<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn solo_corun_matches_solo_session_bit_for_bit() {
        // A 1-core co-run goes through the shared uncore, but with no
        // co-runner the counterfactual timing equals the real timing, so
        // the whole report must be bit-identical to a private-hierarchy
        // Session run.
        let solo = Session::new(CoreConfig::broadwell())
            .run(load_stream(3_000, 0x10000))
            .expect("completes");
        let corun = CoRun::new(CoreConfig::broadwell())
            .run(vec![load_stream(3_000, 0x10000)])
            .expect("completes");
        let c = &corun.cores[0];
        assert_eq!(solo.result, c.result);
        assert_eq!(solo.multi, c.multi);
        assert_eq!(solo.flops, c.flops);
        for s in c.multi.stacks() {
            assert_eq!(s.cycles_of(Component::Interference), 0.0, "{}", s.stage);
        }
        assert_eq!(corun.shared.cores[0].interference_cycles, 0);
    }

    #[test]
    fn contended_corun_shows_interference() {
        // Two memory-bound cores with disjoint line sets must each lose
        // visible cycles to the other in the shared channel.
        let report = CoRun::new(CoreConfig::broadwell())
            .run(vec![
                load_stream(4_000, 0x10000),
                load_stream(4_000, 0x4000_0000),
            ])
            .expect("completes");
        for (c, core) in report.cores.iter().enumerate() {
            // Independent loads drain the RS, so the interference shows at
            // the stages that inspect the ROB head (dispatch backpressure,
            // commit) — the issue stack only sees it through consumers.
            let dispatch = core.multi.dispatch.cycles_of(Component::Interference);
            let commit = core.multi.commit.cycles_of(Component::Interference);
            assert!(dispatch > 0.0, "core {c} dispatch interference: {dispatch}");
            assert!(commit > 0.0, "core {c} commit interference: {commit}");
        }
        assert!(report
            .shared
            .cores
            .iter()
            .all(|c| c.interference_cycles > 0));
    }

    #[test]
    fn compute_bound_corunner_is_mostly_harmless() {
        // An ALU-only co-runner produces no shared-uncore traffic after
        // its I-side warms; the memory-bound core's interference stays 0.
        let report = CoRun::new(CoreConfig::broadwell())
            .run(vec![
                load_stream(3_000, 0x10000),
                alu_stream(3_000, 0x4000_0000),
            ])
            .expect("completes");
        let c0 = &report.cores[0];
        let total: f64 = c0
            .multi
            .stacks()
            .into_iter()
            .map(|s| s.cycles_of(Component::Interference))
            .sum();
        let cycles = c0.result.cycles as f64;
        assert!(
            total < cycles * 0.05,
            "ALU co-runner caused {total} interference cycles of {cycles}"
        );
    }

    #[test]
    fn audited_corun_is_clean_and_matches_plain() {
        let traces = || vec![load_stream(2_000, 0x10000), load_stream(2_000, 0x4000_0000)];
        let plain = CoRun::new(CoreConfig::broadwell())
            .run(traces())
            .expect("completes");
        let (audited, findings) = CoRun::new(CoreConfig::broadwell())
            .run_audited(traces(), AuditOptions::default())
            .expect("completes");
        assert!(findings.is_clean(), "violations: {:?}", findings.violations);
        assert_eq!(plain, audited);
    }

    #[test]
    fn corrupt_shared_book_trips_every_core() {
        let err = CoRun::new(CoreConfig::broadwell())
            .with_corrupt_shared_book()
            .run(vec![
                load_stream(2_000, 0x10000),
                load_stream(2_000, 0x4000_0000),
            ])
            .expect_err("corrupted shared book must fail the audit");
        match err {
            PipelineError::Audit { stage, detail, .. } => {
                assert_eq!(stage, "occupancy");
                assert!(detail.contains("L3 MSHR"), "detail: {detail}");
            }
            other => panic!("expected an audit error, got {other}"),
        }
    }

    #[test]
    fn max_uops_caps_each_core() {
        let report = CoRun::new(CoreConfig::broadwell())
            .with_max_uops(500)
            .run(vec![
                load_stream(50_000, 0x10000),
                load_stream(50_000, 0x4000_0000),
            ])
            .expect("completes");
        for core in &report.cores {
            assert!(core.result.committed_uops >= 500);
            assert!(core.result.committed_uops < 600);
        }
    }
}
