//! High-level simulation API: one [`Session`] builder runs one trace per
//! hardware thread (1–4) on the unified engine with all accountants
//! attached, and returns per-thread multi-stage CPI stacks and FLOPS
//! stacks.
//!
//! A 1-thread session is *the* single-core simulation — same engine, same
//! accountants, bit-identical results — exposed through the convenience
//! [`Session::run`] that unwraps the one thread into a [`SimReport`]. The
//! historical `Simulation` / `SmtSimulation` builders survive as thin
//! deprecated shims over [`Session`].

use crate::accounting::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FetchAccountant, FlopsAccountant,
    IssueAccountant,
};
use crate::audit::{AuditObserver, AuditOptions, AuditReport, FaultSpec};
use crate::component::Stage;
use crate::multi::MultiStackReport;
use crate::sampling::{self, SamplePlan, SampledReport};
use crate::stack::{CpiStack, FlopsStack};
use mstacks_model::{CoreConfig, IdealFlags, MicroOp};
use mstacks_pipeline::{Engine, PipelineError, PipelineResult, StageObserver};
use mstacks_workloads::SampleSource;

/// Everything one single-thread simulation produces: raw pipeline result,
/// the three CPI stacks and the FLOPS stack.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Core configuration name ("bdw", "knl", "skx", …).
    pub config_name: String,
    /// Idealization flags the run used.
    pub ideal: IdealFlags,
    /// Raw pipeline counters (cycles, commits, cache stats, …).
    pub result: PipelineResult,
    /// The multi-stage CPI stacks.
    pub multi: MultiStackReport,
    /// The FLOPS stack (issue stage, vector FP only).
    pub flops: FlopsStack,
}

impl SimReport {
    /// Total CPI of the run.
    pub fn cpi(&self) -> f64 {
        self.result.cpi()
    }

    /// Achieved GFLOPS at clock `freq_ghz` (paper Eq. (1)).
    pub fn gflops(&self, freq_ghz: f64) -> f64 {
        self.flops.achieved_gflops(freq_ghz)
    }
}

/// One hardware thread's results.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Raw pipeline counters for this thread.
    pub result: PipelineResult,
    /// The thread's multi-stage CPI stacks (with `Smt` components when
    /// co-runners were present).
    pub multi: MultiStackReport,
    /// The thread's FLOPS stack.
    pub flops: FlopsStack,
}

impl ThreadReport {
    /// This thread's CPI over its active period.
    pub fn cpi(&self) -> f64 {
        self.result.cpi()
    }
}

/// Results of a session: one report per hardware thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Per-thread reports, in thread order.
    pub threads: Vec<ThreadReport>,
}

/// Historical name for [`SessionReport`].
pub type SmtReport = SessionReport;

/// The full accountant set for one hardware thread, forwarding each stage
/// hook to exactly the accountants that consume it.
pub(crate) struct ThreadObserver {
    pub(crate) dispatch: DispatchAccountant,
    pub(crate) issue: IssueAccountant,
    pub(crate) commit: CommitAccountant,
    pub(crate) fetch: FetchAccountant,
    pub(crate) flops: FlopsAccountant,
}

impl ThreadObserver {
    pub(crate) fn new(cfg: &CoreConfig, badspec: BadSpecMode) -> Self {
        let w = cfg.accounting_width();
        ThreadObserver {
            dispatch: DispatchAccountant::new(w, badspec),
            issue: IssueAccountant::new(w, badspec),
            commit: CommitAccountant::new(w),
            fetch: FetchAccountant::new(w, badspec),
            flops: FlopsAccountant::new(cfg.vpu_count().max(1), cfg.vector_lanes_f32()),
        }
    }

    /// Closes the books and assembles this thread's report.
    pub(crate) fn finish(self, result: PipelineResult) -> ThreadReport {
        let uops = result.committed_uops;
        let commit = self.commit.finish(uops);
        let base = commit.cycles_of(crate::component::Component::Base);
        ThreadReport {
            multi: MultiStackReport {
                dispatch: self.dispatch.finish(uops, Some(base)),
                issue: self.issue.finish(uops, Some(base)),
                commit,
                fetch: Some(self.fetch.finish(uops, Some(base))),
            },
            flops: self.flops.finish(),
            result,
        }
    }
}

impl StageObserver for ThreadObserver {
    fn on_fetch(&mut self, cycle: u64, view: &mstacks_pipeline::FetchView) {
        self.fetch.on_fetch(cycle, view);
    }
    fn on_dispatch(&mut self, cycle: u64, view: &mstacks_pipeline::DispatchView) {
        self.dispatch.on_dispatch(cycle, view);
    }
    fn on_issue(&mut self, cycle: u64, view: &mstacks_pipeline::IssueView<'_>) {
        self.issue.on_issue(cycle, view);
        self.flops.on_issue(cycle, view);
    }
    fn on_commit(&mut self, cycle: u64, view: &mstacks_pipeline::CommitView) {
        self.commit.on_commit(cycle, view);
    }
    fn on_dispatch_uop(&mut self, cycle: u64, uop: &MicroOp) {
        self.dispatch.on_dispatch_uop(cycle, uop);
        self.issue.on_dispatch_uop(cycle, uop);
        self.fetch.on_dispatch_uop(cycle, uop);
    }
    fn on_commit_uop(&mut self, cycle: u64, uop: &MicroOp) {
        self.dispatch.on_commit_uop(cycle, uop);
        self.issue.on_commit_uop(cycle, uop);
        self.fetch.on_commit_uop(cycle, uop);
    }
    fn on_dispatch_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
        self.dispatch.on_dispatch_uops(cycle, uops);
        self.issue.on_dispatch_uops(cycle, uops);
        self.fetch.on_dispatch_uops(cycle, uops);
    }
    fn on_commit_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
        self.dispatch.on_commit_uops(cycle, uops);
        self.issue.on_commit_uops(cycle, uops);
        self.fetch.on_commit_uops(cycle, uops);
    }
    fn on_squash(&mut self, cycle: u64, n: u64, branches: u64) {
        self.dispatch.on_squash(cycle, n, branches);
        self.issue.on_squash(cycle, n, branches);
        self.fetch.on_squash(cycle, n, branches);
    }
}

/// Builder-style simulation runner over the unified engine.
///
/// # Example — single thread
///
/// ```
/// use mstacks_core::Session;
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
///
/// let trace = (0..500u64).map(|i| {
///     MicroOp::new(0x400000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///         .with_dst(ArchReg::new((i % 4) as u16))
/// });
/// let report = Session::new(CoreConfig::knights_landing())
///     .with_ideal(IdealFlags::none().with_perfect_bpred())
///     .run(trace)
///     .expect("completes");
/// assert_eq!(report.result.committed_uops, 500);
/// ```
///
/// # Example — two hardware threads
///
/// ```
/// use mstacks_core::Session;
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, MicroOp, UopKind};
///
/// let mk = |base: u64| {
///     (0..2_000u64)
///         .map(move |i| {
///             MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///                 .with_dst(ArchReg::new((i % 8) as u16))
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
/// };
/// let report = Session::new(CoreConfig::broadwell())
///     .run_threads(vec![mk(0x1000), mk(0x9000)])
///     .expect("completes");
/// assert_eq!(report.threads.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    cfg: CoreConfig,
    ideal: IdealFlags,
    badspec: BadSpecMode,
    max_uops: Option<u64>,
    audit: bool,
    fault: Option<FaultSpec>,
}

impl Session {
    /// A session on core `cfg` with no idealization, ground-truth
    /// bad-speculation handling and no micro-op cap.
    pub fn new(cfg: CoreConfig) -> Self {
        Session {
            cfg,
            ideal: IdealFlags::none(),
            badspec: BadSpecMode::GroundTruth,
            max_uops: None,
            audit: false,
            fault: None,
        }
    }

    /// A session on a core loaded from a `.core` table file — the
    /// file-based twin of [`Session::new`], so experiment drivers can
    /// take machine descriptions as data.
    ///
    /// # Errors
    ///
    /// Returns the table's parse or validation error (line-numbered where
    /// possible).
    pub fn from_core_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, mstacks_model::TableError> {
        Ok(Session::new(CoreConfig::from_core_file(path)?))
    }

    /// Sets the idealization flags (builder style).
    pub fn with_ideal(mut self, ideal: IdealFlags) -> Self {
        self.ideal = ideal;
        self
    }

    /// Sets the wrong-path discrimination mode (builder style).
    pub fn with_badspec(mut self, mode: BadSpecMode) -> Self {
        self.badspec = mode;
        self
    }

    /// Caps the simulation at `n` committed micro-ops per thread (builder
    /// style).
    pub fn with_max_uops(mut self, n: u64) -> Self {
        self.max_uops = Some(n);
        self
    }

    /// Enables the conservation-audit subsystem (builder style). Audited
    /// runs produce identical stacks, verify the per-cycle invariants as
    /// they go, and turn any violation into [`PipelineError::Audit`].
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Injects a deliberate accounting corruption into hardware thread 0
    /// (builder style) — the mutation hook the audit tests use to prove the
    /// auditor detects broken books. Implies auditing.
    pub fn with_fault_injection(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Runs one trace per hardware thread (1–4) and produces per-thread
    /// stacks.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or holds more than 4 entries.
    pub fn run_threads<I: Iterator<Item = MicroOp>>(
        &self,
        traces: Vec<I>,
    ) -> Result<SessionReport, PipelineError> {
        if self.audit || self.fault.is_some() {
            let (report, audit) = self.run_threads_audited(traces, AuditOptions::default())?;
            if let Some(v) = audit.violations.first() {
                return Err(PipelineError::Audit {
                    cycle: v.cycle,
                    thread: v.thread,
                    stage: v.stage.clone(),
                    violations: audit.violations.len() + audit.dropped,
                    detail: v.message.clone(),
                });
            }
            return Ok(report);
        }
        let n = traces.len();
        let mut obs: Vec<ThreadObserver> = (0..n)
            .map(|_| ThreadObserver::new(&self.cfg, self.badspec))
            .collect();
        let mut engine = Engine::new(self.cfg.clone(), self.ideal, traces);
        let results = match self.max_uops {
            Some(cap) => engine.run_uops(cap, &mut obs)?,
            None => engine.run(&mut obs)?,
        };
        let threads = obs
            .into_iter()
            .zip(results)
            .map(|(o, result)| o.finish(result))
            .collect();
        Ok(SessionReport { threads })
    }

    /// Runs with the audit subsystem attached and returns the structured
    /// findings next to the (identical) session report, instead of folding
    /// the first violation into a [`PipelineError::Audit`] as
    /// [`Session::run_threads`] does when auditing is on.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    /// Audit violations do NOT error here — inspect the [`AuditReport`].
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or holds more than 4 entries.
    pub fn run_threads_audited<I: Iterator<Item = MicroOp>>(
        &self,
        traces: Vec<I>,
        opts: AuditOptions,
    ) -> Result<(SessionReport, AuditReport), PipelineError> {
        let n = traces.len();
        let mut obs: Vec<AuditObserver> = (0..n)
            .map(|t| {
                AuditObserver::new(
                    ThreadObserver::new(&self.cfg, self.badspec),
                    t,
                    &opts,
                    if t == 0 { self.fault } else { None },
                )
            })
            .collect();
        let mut engine = Engine::new(self.cfg.clone(), self.ideal, traces);
        let results = match self.max_uops {
            Some(cap) => engine.run_uops(cap, &mut obs)?,
            None => engine.run(&mut obs)?,
        };
        let mut audit = AuditReport::default();
        let threads = obs
            .into_iter()
            .zip(results)
            .map(|(o, result)| {
                let (inner, findings) = o.into_parts();
                audit.merge(findings);
                inner.finish(result)
            })
            .collect();
        Ok((SessionReport { threads }, audit))
    }

    /// Runs a single trace and collects its stacks — the single-core
    /// convenience over [`Session::run_threads`].
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    pub fn run<I: Iterator<Item = MicroOp>>(&self, trace: I) -> Result<SimReport, PipelineError> {
        let report = self.run_threads(vec![trace])?;
        let t = report.threads.into_iter().next().expect("one thread");
        Ok(SimReport {
            config_name: self.cfg.name.clone(),
            ideal: self.ideal,
            result: t.result,
            multi: t.multi,
            flops: t.flops,
        })
    }

    /// Runs a single trace with the audit subsystem attached — the
    /// single-core convenience over [`Session::run_threads_audited`].
    /// Violations are returned in the [`AuditReport`] rather than folded
    /// into an error, so callers (the CLI, the bench harness) can print
    /// structured diagnostics and decide the exit status themselves.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    pub fn run_audited<I: Iterator<Item = MicroOp>>(
        &self,
        trace: I,
        opts: AuditOptions,
    ) -> Result<(SimReport, AuditReport), PipelineError> {
        let (report, audit) = self.run_threads_audited(vec![trace], opts)?;
        let t = report.threads.into_iter().next().expect("one thread");
        Ok((
            SimReport {
                config_name: self.cfg.name.clone(),
                ideal: self.ideal,
                result: t.result,
                multi: t.multi,
                flops: t.flops,
            },
            audit,
        ))
    }

    /// Runs `total_uops` micro-ops of a single-thread trace under
    /// SMARTS-style interval sampling and returns the aggregate stacks
    /// with per-component confidence intervals.
    ///
    /// `source` is any [`SampleSource`]: a pre-decoded trace buffer
    /// (whose batched `warm_range` makes the fast-forward segments
    /// roughly twice as fast), or a plain window closure wrapped in
    /// [`WindowFn`](mstacks_workloads::WindowFn). The run alternates:
    ///
    /// 1. *warmup*: `plan.warmup` micro-ops under the full timing model
    ///    with a unit observer (fills the pipeline, settles queues; not
    ///    measured),
    /// 2. *detailed*: `plan.detailed` micro-ops under a fresh accountant
    ///    set (measured),
    /// 3. *cooldown*: up to [`sampling::COOLDOWN_UOPS`] further
    ///    micro-ops (a comfortable ROB's worth), borrowed from the
    ///    fast-forward segment, under the unit observer again — so the
    ///    tail of the measurement keeps downstream overlap instead of
    ///    being charged pipeline-drain cycles,
    /// 4. *fast-forward*: the remaining `plan.ff − cooldown` micro-ops of
    ///    functional warming (caches, TLBs, branch predictor learn; zero
    ///    cycles, zero statistics).
    ///
    /// The period is exactly `plan.period()` micro-ops. Warmup and the
    /// measured segment stop on cycle boundaries, so each may overshoot
    /// its target by up to the commit width minus one micro-ops.
    ///
    /// A `plan` with `ff == 0` short-circuits to the plain full run —
    /// bit-identical to [`Session::run`] over the same window.
    ///
    /// Sampled windows are not audited; pair a full
    /// [`Session::run_audited`] with a sampled run when both conservation
    /// checking and speed are needed. [`Session::with_max_uops`] is
    /// ignored here — `total_uops` is the cap.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    pub fn run_sampled<S: SampleSource>(
        &self,
        total_uops: u64,
        plan: SamplePlan,
        source: &S,
    ) -> Result<SampledReport, PipelineError> {
        if plan.is_full() {
            let report = self.run(source.window(0, total_uops))?;
            let components = sampling::component_cis(&[&report.multi]);
            let cpi = report.cpi();
            return Ok(SampledReport {
                windows: 1,
                sampled_uops: report.result.committed_uops,
                total_uops,
                window_cpis: vec![cpi],
                cpi_mean: cpi,
                cpi_ci95: 0.0,
                components,
                plan,
                report,
            });
        }

        let cooldown = plan.ff.min(sampling::COOLDOWN_UOPS);
        let span_of = |pos: u64| (pos + plan.warmup + plan.detailed + cooldown).min(total_uops);
        let mut pos = 0u64;
        let mut end = span_of(pos);
        let mut engine = Engine::new(self.cfg.clone(), self.ideal, vec![source.window(pos, end)]);
        let mut win_reports: Vec<ThreadReport> = Vec::new();
        let mut window_cpis: Vec<f64> = Vec::new();
        loop {
            // Warmup: detailed execution, unit observer, nothing measured.
            let start_committed = engine.committed(0);
            let warm = plan.warmup.min(end - pos);
            if warm > 0 {
                engine.run_uops(start_committed + warm, &mut [(); 1])?;
            }
            // Detailed: fresh accountants attach mid-flight (they are pure
            // tally machines, so unobserved warmup history is harmless)
            // and exactly the measured segment is observed.
            let before = engine.results().swap_remove(0);
            let in_window = end - pos - (before.committed_uops - start_committed);
            let meas = plan.detailed.min(in_window);
            let mut obs = ThreadObserver::new(&self.cfg, self.badspec);
            engine.run_uops(before.committed_uops + meas, std::slice::from_mut(&mut obs))?;
            let mut wres = engine.results().swap_remove(0);
            wres.cycles -= before.cycles;
            wres.committed_uops -= before.committed_uops;
            wres.committed_flops -= before.committed_flops;
            // Cooldown + drain: the rest of the window commits unobserved,
            // keeping window-edge drain cycles out of the books.
            engine.run(&mut [(); 1])?;
            if wres.committed_uops > 0 {
                window_cpis.push(wres.cpi());
                win_reports.push(obs.finish(wres));
            }
            pos = end;
            if pos >= total_uops {
                break;
            }
            // Fast-forward: functional warming only (the cooldown already
            // consumed the head of this segment in detail).
            let ff_end = (pos + (plan.ff - cooldown)).min(total_uops);
            source.warm_range(pos, ff_end, &mut engine.warmer(0));
            pos = ff_end;
            if pos >= total_uops {
                break;
            }
            end = span_of(pos);
            engine.resume(0, source.window(pos, end));
        }

        let stacks_at = |get: fn(&ThreadReport) -> &CpiStack, stage: Stage| {
            let refs: Vec<&CpiStack> = win_reports.iter().map(get).collect();
            sampling::aggregate_cpi_stacks(stage, &refs)
        };
        let dispatch = stacks_at(|w| &w.multi.dispatch, Stage::Dispatch);
        let issue = stacks_at(|w| &w.multi.issue, Stage::Issue);
        let commit = stacks_at(|w| &w.multi.commit, Stage::Commit);
        let fetch_refs: Vec<&CpiStack> = win_reports
            .iter()
            .filter_map(|w| w.multi.fetch.as_ref())
            .collect();
        let fetch = sampling::aggregate_cpi_stacks(Stage::Fetch, &fetch_refs);
        let flops_refs: Vec<&FlopsStack> = win_reports.iter().map(|w| &w.flops).collect();
        let flops = sampling::aggregate_flops_stacks(&flops_refs);
        let multis: Vec<&MultiStackReport> = win_reports.iter().map(|w| &w.multi).collect();
        let components = sampling::component_cis(&multis);
        let sampled_uops: u64 = win_reports.iter().map(|w| w.result.committed_uops).sum();

        let cpi_mean = sampling::mean(&window_cpis);
        let cpi_ci95 = sampling::ci95(&window_cpis);
        Ok(SampledReport {
            report: SimReport {
                config_name: self.cfg.name.clone(),
                ideal: self.ideal,
                result: engine.results().swap_remove(0),
                multi: MultiStackReport {
                    dispatch,
                    issue,
                    commit,
                    fetch: Some(fetch),
                },
                flops,
            },
            plan,
            windows: win_reports.len(),
            sampled_uops,
            total_uops,
            window_cpis,
            cpi_mean,
            cpi_ci95,
            components,
        })
    }

    /// The configuration this session runs on.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

// ----- deprecated shims ---------------------------------------------------

/// Single-core simulation builder.
#[deprecated(note = "use `Session`, which unifies single-core and SMT runs")]
#[derive(Debug, Clone)]
pub struct Simulation(Session);

#[allow(deprecated)]
impl Simulation {
    /// A simulation on core `cfg`; see [`Session::new`].
    pub fn new(cfg: CoreConfig) -> Self {
        Simulation(Session::new(cfg))
    }

    /// See [`Session::with_ideal`].
    pub fn with_ideal(mut self, ideal: IdealFlags) -> Self {
        self.0 = self.0.with_ideal(ideal);
        self
    }

    /// See [`Session::with_badspec`].
    pub fn with_badspec(mut self, mode: BadSpecMode) -> Self {
        self.0 = self.0.with_badspec(mode);
        self
    }

    /// See [`Session::with_max_uops`].
    pub fn with_max_uops(mut self, n: u64) -> Self {
        self.0 = self.0.with_max_uops(n);
        self
    }

    /// See [`Session::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline.
    pub fn run<I: Iterator<Item = MicroOp>>(&self, trace: I) -> Result<SimReport, PipelineError> {
        self.0.run(trace)
    }

    /// See [`Session::config`].
    pub fn config(&self) -> &CoreConfig {
        self.0.config()
    }
}

/// SMT simulation builder.
#[deprecated(note = "use `Session::run_threads`, which unifies single-core and SMT runs")]
#[derive(Debug, Clone)]
pub struct SmtSimulation(Session);

#[allow(deprecated)]
impl SmtSimulation {
    /// An SMT simulation on core `cfg`; see [`Session::new`].
    pub fn new(cfg: CoreConfig) -> Self {
        SmtSimulation(Session::new(cfg))
    }

    /// See [`Session::with_ideal`].
    pub fn with_ideal(mut self, ideal: IdealFlags) -> Self {
        self.0 = self.0.with_ideal(ideal);
        self
    }

    /// See [`Session::with_badspec`].
    pub fn with_badspec(mut self, mode: BadSpecMode) -> Self {
        self.0 = self.0.with_badspec(mode);
        self
    }

    /// See [`Session::run_threads`].
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or holds more than 4 entries.
    pub fn run<I: Iterator<Item = MicroOp>>(
        &self,
        traces: Vec<I>,
    ) -> Result<SmtReport, PipelineError> {
        self.0.run_threads(traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use mstacks_model::{AluClass, ArchReg, UopKind};

    fn alu_chain(n: u64) -> impl Iterator<Item = MicroOp> {
        (0..n).map(|i| {
            MicroOp::new(0x1000 + (i % 32) * 4, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        })
    }

    fn adds(n: u64, base: u64) -> std::vec::IntoIter<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn stacks_sum_to_cycles_at_every_stage() {
        let report = Session::new(CoreConfig::broadwell())
            .run(alu_chain(5_000))
            .expect("completes");
        let cycles = report.result.cycles as f64;
        for s in report.multi.stacks() {
            assert!(
                (s.total_cycles() - cycles).abs() < 1e-6,
                "{} stack sums to {} ≠ {} cycles",
                s.stage,
                s.total_cycles(),
                cycles
            );
        }
        assert!((report.flops.total_cycles() - cycles).abs() < 1e-6);
    }

    #[test]
    fn base_components_equal_across_stages() {
        // Ground-truth mode: each correct-path micro-op traverses every
        // stage exactly once → identical base components (paper §III-A).
        let report = Session::new(CoreConfig::broadwell())
            .run(alu_chain(5_000))
            .expect("completes");
        let b_d = report.multi.dispatch.cycles_of(Component::Base);
        let b_i = report.multi.issue.cycles_of(Component::Base);
        let b_c = report.multi.commit.cycles_of(Component::Base);
        assert!((b_d - b_c).abs() < 1e-6, "dispatch {b_d} vs commit {b_c}");
        assert!((b_i - b_c).abs() < 1e-6, "issue {b_i} vs commit {b_c}");
        // And base CPI = 1/W.
        let w = CoreConfig::broadwell().accounting_width();
        assert!((report.multi.commit.cpi_of(Component::Base) - 1.0 / f64::from(w)).abs() < 1e-9);
    }

    #[test]
    fn dependence_chain_shows_depend_component() {
        let report = Session::new(CoreConfig::broadwell())
            .with_ideal(
                IdealFlags::none()
                    .with_perfect_icache()
                    .with_perfect_bpred(),
            )
            .run(alu_chain(5_000))
            .expect("completes");
        // CPI ≈ 1; 0.25 base + ~0.75 depend at every stage.
        for s in report.multi.stacks() {
            assert!(
                s.cpi_of(Component::Depend) > 0.5,
                "{} stack should be dependence-dominated: {:?}",
                s.stage,
                s.iter_cpi().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn max_uops_caps_the_run() {
        let report = Session::new(CoreConfig::broadwell())
            .with_max_uops(1_000)
            .run(alu_chain(100_000))
            .expect("completes");
        assert!(report.result.committed_uops >= 1_000);
        assert!(report.result.committed_uops < 1_100);
    }

    #[test]
    fn badspec_modes_agree_without_branches() {
        // No branches → no wrong path → all three modes identical.
        let gt = Session::new(CoreConfig::broadwell())
            .run(alu_chain(2_000))
            .expect("completes");
        let simple = Session::new(CoreConfig::broadwell())
            .with_badspec(BadSpecMode::SimpleRetireSlots)
            .run(alu_chain(2_000))
            .expect("completes");
        let spec = Session::new(CoreConfig::broadwell())
            .with_badspec(BadSpecMode::SpeculativeCounters)
            .run(alu_chain(2_000))
            .expect("completes");
        for c in crate::component::COMPONENTS {
            let g = gt.multi.dispatch.cpi_of(c);
            assert!((simple.multi.dispatch.cpi_of(c) - g).abs() < 1e-9, "{c}");
            assert!((spec.multi.dispatch.cpi_of(c) - g).abs() < 1e-9, "{c}");
        }
    }

    #[test]
    fn per_thread_stacks_sum_to_per_thread_cycles() {
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let report = Session::new(CoreConfig::broadwell())
            .with_ideal(ideal)
            .run_threads(vec![adds(4_000, 0x1000), adds(4_000, 0x9000)])
            .expect("completes");
        for (tid, t) in report.threads.iter().enumerate() {
            let cycles = t.result.cycles as f64;
            for s in t.multi.stacks() {
                assert!(
                    (s.total_cycles() - cycles).abs() <= 1.0 + 1e-6,
                    "thread {tid} {} stack {} vs cycles {}",
                    s.stage,
                    s.total_cycles(),
                    cycles
                );
            }
        }
    }

    #[test]
    fn smt_component_appears_under_contention() {
        // Two width-hungry threads on one 4-wide core: each must lose
        // visible cycles to the other.
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let report = Session::new(CoreConfig::broadwell())
            .with_ideal(ideal)
            .run_threads(vec![adds(6_000, 0x1000), adds(6_000, 0x9000)])
            .expect("completes");
        for (tid, t) in report.threads.iter().enumerate() {
            let smt =
                t.multi.dispatch.cpi_of(Component::Smt) + t.multi.commit.cpi_of(Component::Smt);
            assert!(smt > 0.05, "thread {tid} must see SMT interference: {smt}");
        }
    }

    #[test]
    fn single_thread_has_no_smt_component() {
        let report = Session::new(CoreConfig::broadwell())
            .run_threads(vec![adds(3_000, 0x1000)])
            .expect("completes");
        let t = &report.threads[0];
        for s in t.multi.stacks() {
            assert!(
                s.cpi_of(Component::Smt) < 1e-9,
                "{}: solo thread cannot have SMT stalls",
                s.stage
            );
        }
    }

    #[test]
    fn one_thread_session_equals_single_run() {
        // `run` is exactly `run_threads(vec![trace])` with the report
        // unwrapped — verify field by field.
        let single = Session::new(CoreConfig::broadwell())
            .run(alu_chain(3_000))
            .expect("completes");
        let threaded = Session::new(CoreConfig::broadwell())
            .run_threads(vec![alu_chain(3_000).collect::<Vec<_>>().into_iter()])
            .expect("completes");
        let t = &threaded.threads[0];
        assert_eq!(single.result, t.result);
        assert_eq!(single.multi, t.multi);
        assert_eq!(single.flops, t.flops);
    }

    #[test]
    fn audited_run_is_clean_and_matches_plain_run() {
        let plain = Session::new(CoreConfig::broadwell())
            .run(alu_chain(3_000))
            .expect("completes");
        let (audited, findings) = Session::new(CoreConfig::broadwell())
            .run_threads_audited(
                vec![alu_chain(3_000).collect::<Vec<_>>().into_iter()],
                crate::audit::AuditOptions::default(),
            )
            .expect("completes");
        assert!(findings.is_clean(), "violations: {:?}", findings.violations);
        assert!(findings.cycles_checked > 0);
        let t = &audited.threads[0];
        assert_eq!(plain.result, t.result);
        assert_eq!(plain.multi, t.multi);
        assert_eq!(plain.flops, t.flops);
    }

    #[test]
    fn audited_smt_run_matches_plain_run() {
        let traces = || vec![adds(3_000, 0x1000), adds(3_000, 0x9000)];
        let plain = Session::new(CoreConfig::broadwell())
            .run_threads(traces())
            .expect("completes");
        let (audited, findings) = Session::new(CoreConfig::broadwell())
            .run_threads_audited(traces(), crate::audit::AuditOptions::default())
            .expect("completes");
        assert!(findings.is_clean(), "violations: {:?}", findings.violations);
        assert_eq!(plain, audited);
    }

    #[test]
    fn injected_fault_trips_the_auditor() {
        let fault = crate::audit::FaultSpec {
            stage: crate::component::Stage::Dispatch,
            component: Component::Dcache,
            cycle: 100,
            amount: 0.5,
        };
        let err = Session::new(CoreConfig::broadwell())
            .with_fault_injection(fault)
            .run(alu_chain(3_000))
            .expect_err("corrupted books must fail the audit");
        match err {
            PipelineError::Audit { stage, cycle, .. } => {
                assert_eq!(stage, "dispatch");
                assert!(cycle >= 100);
            }
            other => panic!("expected an audit error, got {other}"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_session() {
        let new = Session::new(CoreConfig::broadwell())
            .run(alu_chain(2_000))
            .expect("completes");
        let old = Simulation::new(CoreConfig::broadwell())
            .run(alu_chain(2_000))
            .expect("completes");
        assert_eq!(new, old);
        let new_smt = Session::new(CoreConfig::broadwell())
            .run_threads(vec![adds(2_000, 0x1000), adds(2_000, 0x9000)])
            .expect("completes");
        let old_smt = SmtSimulation::new(CoreConfig::broadwell())
            .run(vec![adds(2_000, 0x1000), adds(2_000, 0x9000)])
            .expect("completes");
        assert_eq!(new_smt, old_smt);
    }
}
