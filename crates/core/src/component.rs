//! CPI-stack and FLOPS-stack component names.

/// The pipeline stage a CPI stack was measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Accounting at the fetch/decode stage (the paper's "other stages"
    /// extension, §III-A).
    Fetch,
    /// Accounting at the dispatch stage (Eyerman et al. \[8\] style).
    Dispatch,
    /// Accounting at the issue stage (unique dependence knowledge).
    Issue,
    /// Accounting at the commit stage (IBM POWER \[14\] style).
    Commit,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Fetch => write!(f, "fetch"),
            Stage::Dispatch => write!(f, "dispatch"),
            Stage::Issue => write!(f, "issue"),
            Stage::Commit => write!(f, "commit"),
        }
    }
}

/// One CPI-stack component (paper §III-A, extended with the Microcode
/// component of Fig. 3(d) and the structural `MemConflict`/`Other`
/// components of §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Useful work: fraction of the (minimum) pipeline width used.
    Base,
    /// Instruction-cache (and I-TLB) misses.
    Icache,
    /// Branch mispredictions (wrong-path slots + refill).
    Bpred,
    /// Data-cache misses (any access beyond the L1D).
    Dcache,
    /// Multi-cycle execution latency (the paper's `ALU_lat`).
    AluLat,
    /// Inter-instruction dependences (limited ILP).
    Depend,
    /// Microcode-sequencer decode stalls (KNL-style cores).
    Microcode,
    /// Loads blocked by unresolved older store addresses
    /// ("predicted memory address conflicts").
    MemConflict,
    /// Slots consumed by another SMT hardware thread (per-thread stacks on
    /// an SMT core, the paper's §II extension after Eyerman & Eeckhout's
    /// ASPLOS'09 per-thread cycle accounting). Zero on single-thread cores.
    Smt,
    /// Cycles lost to another *core's* occupancy of the shared uncore
    /// (shared-L3 MSHR pool, DRAM channel) in a co-run. Attributed by a
    /// per-access counterfactual: the tail of a shared-resource access that
    /// would not exist were this core running alone. Zero outside co-runs.
    Interference,
    /// Everything else: port-structural stalls, warmup, drain.
    Other,
}

/// All CPI components, in canonical (stacking) order.
pub const COMPONENTS: [Component; 11] = [
    Component::Base,
    Component::Icache,
    Component::Bpred,
    Component::Dcache,
    Component::AluLat,
    Component::Depend,
    Component::Microcode,
    Component::MemConflict,
    Component::Smt,
    Component::Interference,
    Component::Other,
];

impl Component {
    /// Dense index into component arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Component::Base => 0,
            Component::Icache => 1,
            Component::Bpred => 2,
            Component::Dcache => 3,
            Component::AluLat => 4,
            Component::Depend => 5,
            Component::Microcode => 6,
            Component::MemConflict => 7,
            Component::Smt => 8,
            Component::Interference => 9,
            Component::Other => 10,
        }
    }

    /// Short label used in reports ("base", "icache", …).
    pub fn label(self) -> &'static str {
        match self {
            Component::Base => "base",
            Component::Icache => "icache",
            Component::Bpred => "bpred",
            Component::Dcache => "dcache",
            Component::AluLat => "alu_lat",
            Component::Depend => "depend",
            Component::Microcode => "microcode",
            Component::MemConflict => "memconflict",
            Component::Smt => "smt",
            Component::Interference => "interference",
            Component::Other => "other",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One FLOPS-stack component (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlopsComponent {
    /// Cycles (fraction) at peak FLOPS — the achieved-FLOPS component.
    Base,
    /// Lost to non-FMA vector FP instructions (adds/muls count 1 op, not 2).
    NonFma,
    /// Lost to masked-out vector lanes.
    Mask,
    /// No vector-FP instructions available in the reservation stations
    /// (non-FP code, I-cache misses, branch recovery).
    Frontend,
    /// A vector unit was busy with non-VFP work (integer vector,
    /// broadcasts, shuffles).
    NonVfp,
    /// The oldest waiting VFP instruction waits on a memory load.
    Memory,
    /// The oldest waiting VFP instruction waits on another computation.
    Depend,
}

/// All FLOPS components, in canonical (stacking) order.
pub const FLOPS_COMPONENTS: [FlopsComponent; 7] = [
    FlopsComponent::Base,
    FlopsComponent::NonFma,
    FlopsComponent::Mask,
    FlopsComponent::Frontend,
    FlopsComponent::NonVfp,
    FlopsComponent::Memory,
    FlopsComponent::Depend,
];

impl FlopsComponent {
    /// Dense index into component arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FlopsComponent::Base => 0,
            FlopsComponent::NonFma => 1,
            FlopsComponent::Mask => 2,
            FlopsComponent::Frontend => 3,
            FlopsComponent::NonVfp => 4,
            FlopsComponent::Memory => 5,
            FlopsComponent::Depend => 6,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FlopsComponent::Base => "base",
            FlopsComponent::NonFma => "non_fma",
            FlopsComponent::Mask => "mask",
            FlopsComponent::Frontend => "frontend",
            FlopsComponent::NonVfp => "non_vfp",
            FlopsComponent::Memory => "memory",
            FlopsComponent::Depend => "depend",
        }
    }
}

impl std::fmt::Display for FlopsComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in COMPONENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in FLOPS_COMPONENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = COMPONENTS.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), COMPONENTS.len());
        let flabels: std::collections::HashSet<_> =
            FLOPS_COMPONENTS.iter().map(|c| c.label()).collect();
        assert_eq!(flabels.len(), FLOPS_COMPONENTS.len());
    }

    #[test]
    fn stage_display() {
        assert_eq!(Stage::Fetch.to_string(), "fetch");
        assert_eq!(Stage::Dispatch.to_string(), "dispatch");
        assert_eq!(Stage::Issue.to_string(), "issue");
        assert_eq!(Stage::Commit.to_string(), "commit");
    }
}
