//! SMARTS-style interval sampling: alternate short *detailed* windows
//! (full timing model, accountants attached) with long *functional
//! fast-forward* segments (caches, TLBs and the branch predictor observe
//! every micro-op, but no cycles elapse and no statistics accumulate).
//!
//! Each detailed window is preceded by a *warmup* sub-window that runs
//! under the full timing model but with a unit observer, so the measured
//! portion starts with a filled pipeline and settled queue state on top
//! of the functionally-warmed caches. The estimator is the classic
//! systematic-sampling one: per-window CPIs (and per-component CPIs) are
//! treated as an i.i.d.-ish sample, reported with a 95% confidence
//! interval `1.96·s/√n`; the aggregate stacks are ratio-of-sums over all
//! detailed windows, so they remain exactly conservative (components sum
//! to measured cycles).
//!
//! With `ff = 0` there is nothing to skip and
//! [`Session::run_sampled`](crate::Session::run_sampled) short-circuits
//! to the plain full run — bit-identical to [`Session::run`](crate::Session::run).

use crate::component::{Component, Stage, COMPONENTS, FLOPS_COMPONENTS};
use crate::multi::MultiStackReport;
use crate::session::SimReport;
use crate::stack::{CpiStack, FlopsStack};
use mstacks_mem::HitLevel;

/// Micro-ops of detailed-but-unmeasured *cooldown* run after each
/// measured segment (borrowed from the fast-forward budget, so the
/// period is unchanged). Its job is to keep younger-instruction overlap
/// alive while the measured tail commits, so the window edge is not
/// charged pipeline-drain cycles; one ROB's worth suffices, and 1024
/// comfortably exceeds every core preset's ROB.
pub const COOLDOWN_UOPS: u64 = 1024;

/// The shape of one sampling period: `warmup` micro-ops of detailed
/// execution that are *not* measured, `detailed` measured micro-ops, then
/// `ff` micro-ops of functional fast-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePlan {
    /// Detailed-but-unmeasured micro-ops at the head of each window.
    pub warmup: u64,
    /// Measured micro-ops per window.
    pub detailed: u64,
    /// Functionally fast-forwarded micro-ops between windows.
    pub ff: u64,
}

impl SamplePlan {
    /// A plan from its three segment lengths.
    ///
    /// # Panics
    ///
    /// Panics if `detailed == 0` (a window must measure something).
    pub fn new(warmup: u64, detailed: u64, ff: u64) -> Self {
        assert!(detailed > 0, "a sample plan needs a detailed segment");
        SamplePlan {
            warmup,
            detailed,
            ff,
        }
    }

    /// Parses the CLI syntax `warmup:detailed:ff`, e.g. `2000:10000:200000`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "expected warmup:detailed:ff (three integers), got {s:?}"
            ));
        }
        let num = |p: &str, what: &str| -> Result<u64, String> {
            p.trim()
                .replace('_', "")
                .parse::<u64>()
                .map_err(|e| format!("bad {what} {p:?}: {e}"))
        };
        let warmup = num(parts[0], "warmup")?;
        let detailed = num(parts[1], "detailed")?;
        let ff = num(parts[2], "ff")?;
        if detailed == 0 {
            return Err("detailed segment must be > 0".into());
        }
        Ok(SamplePlan {
            warmup,
            detailed,
            ff,
        })
    }

    /// Whether this plan degenerates to a plain full run (`ff == 0`).
    pub fn is_full(&self) -> bool {
        self.ff == 0
    }

    /// Micro-ops per full sampling period.
    pub fn period(&self) -> u64 {
        self.warmup + self.detailed + self.ff
    }

    /// Fraction of the trace executed in detail (warmup + measured).
    pub fn detail_fraction(&self) -> f64 {
        (self.warmup + self.detailed) as f64 / self.period() as f64
    }
}

impl std::fmt::Display for SamplePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.warmup, self.detailed, self.ff)
    }
}

/// Mean and 95% confidence half-width of one stack component's CPI over
/// the detailed windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentCi {
    /// Stage the component was measured at.
    pub stage: Stage,
    /// The component.
    pub component: Component,
    /// Mean per-window CPI contribution.
    pub mean_cpi: f64,
    /// 95% confidence half-width (`1.96·s/√n`; 0 with fewer than 2
    /// windows).
    pub ci95: f64,
}

/// Everything a sampled run produces: the aggregate report (stacks built
/// by ratio-of-sums over the detailed windows) plus the sampling
/// statistics a full run cannot provide.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledReport {
    /// Aggregate report. `multi`/`flops` cover exactly the measured
    /// (detailed) micro-ops; `result` holds the engine's cumulative
    /// counters over everything executed in detail (warmup + measured),
    /// excluding fast-forwarded micro-ops.
    pub report: SimReport,
    /// The plan that produced this report.
    pub plan: SamplePlan,
    /// Number of detailed windows that measured at least one micro-op.
    pub windows: usize,
    /// Micro-ops measured in detail (sum over windows).
    pub sampled_uops: u64,
    /// Micro-ops in the trace overall.
    pub total_uops: u64,
    /// Per-window total CPI, in window order (diagnostic; the CI inputs).
    pub window_cpis: Vec<f64>,
    /// Mean per-window CPI — the sampling estimate of the program's CPI.
    pub cpi_mean: f64,
    /// 95% confidence half-width of [`SampledReport::cpi_mean`].
    pub cpi_ci95: f64,
    /// Per-component means and confidence intervals, all four stages.
    pub components: Vec<ComponentCi>,
}

impl SampledReport {
    /// Fraction of the trace that was measured in detail.
    pub fn sampled_fraction(&self) -> f64 {
        if self.total_uops == 0 {
            0.0
        } else {
            self.sampled_uops as f64 / self.total_uops as f64
        }
    }

    /// The confidence entry for `(stage, component)`, if present.
    pub fn ci_of(&self, stage: Stage, component: Component) -> Option<&ComponentCi> {
        self.components
            .iter()
            .find(|c| c.stage == stage && c.component == component)
    }
}

/// Sample mean of `xs` (0 when empty).
pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// 95% confidence half-width `1.96·s/√n` with the sample (n−1) standard
/// deviation; 0 with fewer than two observations.
pub(crate) fn ci95(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
    1.96 * var.sqrt() / (n as f64).sqrt()
}

/// Ratio-of-sums aggregation of per-window CPI stacks measured at one
/// stage: component counts and the Dcache level split add exactly (they
/// are cycle counts), cycles and micro-ops add as integers.
pub(crate) fn aggregate_cpi_stacks(stage: Stage, stacks: &[&CpiStack]) -> CpiStack {
    let mut counts = [0.0; COMPONENTS.len()];
    let mut levels = [0.0; 3];
    let mut cycles = 0u64;
    let mut uops = 0u64;
    for s in stacks {
        for (i, &c) in COMPONENTS.iter().enumerate() {
            counts[i] += s.cycles_of(c);
        }
        let u = s.uops as f64;
        levels[0] += s.dcache_level_cpi(HitLevel::L2) * u;
        levels[1] += s.dcache_level_cpi(HitLevel::L3) * u;
        levels[2] += s.dcache_level_cpi(HitLevel::Mem) * u;
        cycles += s.cycles;
        uops += s.uops;
    }
    CpiStack::from_counts_with_levels(stage, counts, levels, cycles, uops)
}

/// Ratio-of-sums aggregation of per-window FLOPS stacks.
pub(crate) fn aggregate_flops_stacks(stacks: &[&FlopsStack]) -> FlopsStack {
    let peak = stacks.first().map_or(0, |s| s.peak_flops_per_cycle);
    let mut counts = [0.0; FLOPS_COMPONENTS.len()];
    let mut cycles = 0u64;
    for s in stacks {
        for (i, &c) in FLOPS_COMPONENTS.iter().enumerate() {
            counts[i] += s.cycles_of(c);
        }
        cycles += s.cycles;
    }
    FlopsStack::from_counts(counts, cycles, peak)
}

/// Builds the per-component CI table from per-window multi-stack reports.
pub(crate) fn component_cis(windows: &[&MultiStackReport]) -> Vec<ComponentCi> {
    fn stage_of(m: &MultiStackReport, stage: Stage) -> Option<&CpiStack> {
        match stage {
            Stage::Dispatch => Some(&m.dispatch),
            Stage::Issue => Some(&m.issue),
            Stage::Commit => Some(&m.commit),
            Stage::Fetch => m.fetch.as_ref(),
        }
    }
    let mut out = Vec::new();
    for stage in [Stage::Fetch, Stage::Dispatch, Stage::Issue, Stage::Commit] {
        for &component in &COMPONENTS {
            let xs: Vec<f64> = windows
                .iter()
                .filter_map(|m| stage_of(m, stage))
                .map(|s| s.cpi_of(component))
                .collect();
            if xs.is_empty() {
                continue;
            }
            out.push(ComponentCi {
                stage,
                component,
                mean_cpi: mean(&xs),
                ci95: ci95(&xs),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let p = SamplePlan::parse("2000:10000:200000").expect("parses");
        assert_eq!(p.warmup, 2_000);
        assert_eq!(p.detailed, 10_000);
        assert_eq!(p.ff, 200_000);
        assert_eq!(p.to_string(), "2000:10000:200000");
        assert_eq!(p.period(), 212_000);
        assert!(!p.is_full());
    }

    #[test]
    fn parse_accepts_underscores_and_spaces() {
        let p = SamplePlan::parse(" 1_000 : 5_000 : 50_000 ").expect("parses");
        assert_eq!((p.warmup, p.detailed, p.ff), (1_000, 5_000, 50_000));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SamplePlan::parse("10:20").is_err());
        assert!(SamplePlan::parse("a:b:c").is_err());
        assert!(SamplePlan::parse("10:0:30").is_err(), "detailed must be >0");
        assert!(SamplePlan::parse("1:2:3:4").is_err());
    }

    #[test]
    fn ff_zero_is_full() {
        assert!(SamplePlan::parse("0:1000:0").expect("parses").is_full());
    }

    #[test]
    fn ci_math() {
        assert_eq!(ci95(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        // Constant sample → zero-width interval.
        assert_eq!(ci95(&[2.0, 2.0, 2.0, 2.0]), 0.0);
        // Known case: s = 1, n = 4 → 1.96/2.
        let w = ci95(&[1.0, 2.0, 3.0, 2.0]);
        let expected = 1.96 * (2.0f64 / 3.0).sqrt() / 2.0;
        assert!((w - expected).abs() < 1e-12, "{w} vs {expected}");
    }

    #[test]
    fn detail_fraction() {
        let p = SamplePlan::new(1_000, 9_000, 90_000);
        assert!((p.detail_fraction() - 0.1).abs() < 1e-12);
    }
}
