//! Minimal hand-rolled JSON emission (keeps the workspace dependency-free).
//!
//! Only what the tools need: objects, arrays, strings without exotic
//! escapes, and finite numbers. Lives in `mstacks-core` (rather than the
//! CLI) so every front end — the CLI, the serve daemon, the bench
//! binaries — emits the *byte-identical* golden-pinned schemas: the
//! service's result cache stores these bytes and replays them verbatim.

use crate::{
    AuditReport, CoRunReport, SampledReport, SimReport, SmtReport, StackComparison, COMPONENTS,
    FLOPS_COMPONENTS,
};

/// Escapes a string for JSON (the names here are all ASCII identifiers,
/// but be safe).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn cpi_stack_json(s: &crate::CpiStack) -> String {
    let comps: Vec<String> = COMPONENTS
        .iter()
        .map(|&c| format!("\"{}\":{}", c.label(), num(s.cpi_of(c))))
        .collect();
    format!(
        "{{\"stage\":\"{}\",\"cpi\":{},\"components\":{{{}}}}}",
        s.stage,
        num(s.total_cpi()),
        comps.join(",")
    )
}

fn flops_stack_json(s: &crate::FlopsStack) -> String {
    let n = s.normalized();
    let comps: Vec<String> = FLOPS_COMPONENTS
        .iter()
        .map(|&c| format!("\"{}\":{}", c.label(), num(n[c.index()])))
        .collect();
    format!(
        "{{\"flops_per_cycle\":{},\"peak_per_cycle\":{},\"normalized\":{{{}}}}}",
        num(s.achieved_flops_per_cycle()),
        s.peak_flops_per_cycle,
        comps.join(",")
    )
}

/// Serializes an audit verdict: `null` when no audit ran (the field is
/// present either way so the schema is stable).
fn audit_json(a: Option<&AuditReport>) -> String {
    match a {
        None => "null".to_string(),
        Some(a) => format!(
            "{{\"clean\":{},\"violations\":{},\"cycles_checked\":{}}}",
            a.is_clean(),
            a.violations.len() + a.dropped,
            a.cycles_checked
        ),
    }
}

/// Serializes a [`SimReport`].
pub fn sim_report(r: &SimReport, audit: Option<&AuditReport>) -> String {
    let mut stacks: Vec<String> = r.multi.stacks().iter().map(|s| cpi_stack_json(s)).collect();
    if let Some(f) = &r.multi.fetch {
        stacks.insert(0, cpi_stack_json(f));
    }
    format!(
        "{{\"config\":\"{}\",\"ideal\":\"{}\",\"cycles\":{},\"uops\":{},\"cpi\":{},\"stacks\":[{}],\"flops\":{},\"audit\":{}}}",
        esc(&r.config_name),
        r.ideal,
        r.result.cycles,
        r.result.committed_uops,
        num(r.cpi()),
        stacks.join(","),
        flops_stack_json(&r.flops),
        audit_json(audit),
    )
}

/// Serializes a [`SampledReport`]: the plain [`sim_report`] object with a
/// `"sampling"` member appended. Emitted only when `--sample` was given,
/// so the unsampled JSON schema is unchanged.
pub fn sampled_report(s: &SampledReport) -> String {
    let components: Vec<String> = s
        .components
        .iter()
        .map(|c| {
            format!(
                "{{\"stage\":\"{}\",\"component\":\"{}\",\"mean_cpi\":{},\"ci95\":{}}}",
                c.stage,
                c.component.label(),
                num(c.mean_cpi),
                num(c.ci95)
            )
        })
        .collect();
    let block = format!(
        "{{\"plan\":\"{}\",\"windows\":{},\"sampled_uops\":{},\"total_uops\":{},\"sampled_fraction\":{},\"cpi_mean\":{},\"cpi_ci95\":{},\"components\":[{}]}}",
        s.plan,
        s.windows,
        s.sampled_uops,
        s.total_uops,
        num(s.sampled_fraction()),
        num(s.cpi_mean),
        num(s.cpi_ci95),
        components.join(","),
    );
    let base = sim_report(&s.report, None);
    format!("{},\"sampling\":{}}}", &base[..base.len() - 1], block)
}

/// Serializes the FLOPS view of a report (with GFLOPS at `freq_ghz`).
pub fn flops_report(r: &SimReport, freq_ghz: f64, audit: Option<&AuditReport>) -> String {
    format!(
        "{{\"config\":\"{}\",\"gflops\":{},\"peak_gflops\":{},\"stack\":{},\"audit\":{}}}",
        esc(&r.config_name),
        num(r.flops.achieved_gflops(freq_ghz)),
        num(freq_ghz * f64::from(r.flops.peak_flops_per_cycle)),
        flops_stack_json(&r.flops),
        audit_json(audit),
    )
}

/// Serializes an [`SmtReport`].
pub fn smt_report(r: &SmtReport, audit: Option<&AuditReport>) -> String {
    let threads: Vec<String> = r
        .threads
        .iter()
        .map(|t| {
            let stacks: Vec<String> = t.multi.stacks().iter().map(|s| cpi_stack_json(s)).collect();
            format!(
                "{{\"cycles\":{},\"uops\":{},\"cpi\":{},\"stacks\":[{}]}}",
                t.result.cycles,
                t.result.committed_uops,
                num(t.cpi()),
                stacks.join(",")
            )
        })
        .collect();
    format!(
        "{{\"threads\":[{}],\"audit\":{}}}",
        threads.join(","),
        audit_json(audit)
    )
}

/// Serializes a [`CoRunReport`]: one entry per core (with its workload
/// name, stacks and attributed interference) plus the shared-resource
/// occupancy summary. The interference component is always present in
/// every stack's `components` object — exactly `0.000000` for a core
/// that was never delayed — so consumers can diff solo vs co-run output
/// without schema branches.
pub fn corun_report(names: &[String], r: &CoRunReport, audit: Option<&AuditReport>) -> String {
    let cores: Vec<String> = r
        .cores
        .iter()
        .zip(&r.shared.cores)
        .enumerate()
        .map(|(i, (t, s))| {
            let mut stacks: Vec<String> =
                t.multi.stacks().iter().map(|st| cpi_stack_json(st)).collect();
            if let Some(f) = &t.multi.fetch {
                stacks.insert(0, cpi_stack_json(f));
            }
            format!(
                "{{\"core\":{},\"workload\":\"{}\",\"cycles\":{},\"uops\":{},\"cpi\":{},\"interference_cycles\":{},\"stacks\":[{}]}}",
                i,
                esc(names.get(i).map(String::as_str).unwrap_or("?")),
                t.result.cycles,
                t.result.committed_uops,
                num(t.cpi()),
                s.interference_cycles,
                stacks.join(",")
            )
        })
        .collect();
    format!(
        "{{\"cores\":[{}],\"shared\":{},\"audit\":{}}}",
        cores.join(","),
        shared_summary_json(&r.shared),
        audit_json(audit)
    )
}

fn shared_summary_json(s: &mstacks_mem::SharedSummary) -> String {
    let cores: Vec<String> = s
        .cores
        .iter()
        .map(|c| {
            format!(
                "{{\"l3_accesses\":{},\"l3_misses\":{},\"dram_accesses\":{},\"dram_queue_cycles\":{},\"interference_cycles\":{},\"delays_caused\":{}}}",
                c.l3_accesses,
                c.l3_misses,
                c.dram_accesses,
                c.dram_queue_cycles,
                c.interference_cycles,
                c.delays_caused
            )
        })
        .collect();
    format!(
        "{{\"l3_accesses\":{},\"l3_misses\":{},\"dram_accesses\":{},\"dram_queue_cycles\":{},\"mshr_capacity\":{},\"cores\":[{}]}}",
        s.l3_accesses,
        s.l3_misses,
        s.dram_accesses,
        s.dram_queue_cycles,
        s.mshr_capacity,
        cores.join(",")
    )
}

/// Serializes a differential [`StackComparison`] (the `crosscheck`
/// subcommand's `--json` output).
pub fn crosscheck_report(workload: &str, config: &str, cmp: &StackComparison) -> String {
    let checks: Vec<String> = cmp
        .checks
        .iter()
        .map(|c| {
            format!(
                "{{\"component\":\"{}\",\"predicted\":[{},{}],\"measured\":[{},{}],\"margin\":{},\"gap\":{},\"pass\":{}}}",
                esc(&c.label),
                num(c.predicted.lo),
                num(c.predicted.hi),
                num(c.measured.lo),
                num(c.measured.hi),
                num(c.margin),
                num(c.gap),
                c.pass()
            )
        })
        .collect();
    format!(
        "{{\"workload\":\"{}\",\"config\":\"{}\",\"pass\":{},\"checks\":[{}]}}",
        esc(workload),
        esc(config),
        cmp.pass(),
        checks.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn sim_report_shape() {
        use crate::Session;
        use mstacks_model::{AluClass, ArchReg, CoreConfig, MicroOp, UopKind};
        let trace = (0..500u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 4) as u16))
        });
        let r = Session::new(CoreConfig::broadwell())
            .run(trace)
            .expect("runs");
        let j = sim_report(&r, None);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"config\":\"bdw\""));
        assert!(j.contains("\"stage\":\"dispatch\""));
        assert!(j.contains("\"stage\":\"fetch\""));
        assert!(j.contains("\"flops\""));
        assert!(j.contains("\"audit\":null"));
        // Balanced braces as a cheap well-formedness proxy.
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }
}
