//! Stack-component comparison: intervals, tolerance bands and structured
//! verdicts for differential model validation.
//!
//! The multi-stage representation is interval-valued by design: a
//! component's prediction is the `[min, max]` across the dispatch, issue
//! and commit stacks (paper §V-A), and the analytical oracle in
//! `mstacks-oracle` likewise predicts a first-order interval per
//! component. Two models *agree* on a component when their intervals
//! overlap after widening the prediction by a per-component tolerance
//! band; the gap between non-overlapping intervals is the divergence the
//! crosscheck harness reports.

use crate::component::Component;
use crate::multi::MultiStackReport;

/// A closed CPI interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`; bounds are reordered if reversed.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// A degenerate point interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Interval { lo: x, hi: x }
    }

    /// Interval width (`hi - lo`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies inside the (closed) interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Whether two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Distance between two intervals: 0 when they overlap, otherwise the
    /// gap between the nearest bounds.
    pub fn gap(&self, other: &Interval) -> f64 {
        if self.overlaps(other) {
            0.0
        } else if self.hi < other.lo {
            other.lo - self.hi
        } else {
            self.lo - other.hi
        }
    }

    /// The interval widened by `margin` on both sides (clamped below 0 at
    /// the low end — CPI components are non-negative).
    pub fn widen(&self, margin: f64) -> Self {
        Interval {
            lo: (self.lo - margin).max(0.0),
            hi: self.hi + margin,
        }
    }

    /// Smallest interval covering both.
    pub fn hull(&self, other: &Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

/// Per-component tolerance band: the allowed margin is
/// `abs + rel · scale`, where `scale` is the run's total CPI — so tight
/// absolute floors still work on low-CPI runs, and high-CPI runs get
/// proportional slack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Absolute CPI margin.
    pub abs: f64,
    /// Margin relative to the run's total CPI.
    pub rel: f64,
}

impl Band {
    /// A band with absolute margin `abs` and relative margin `rel`.
    pub fn new(abs: f64, rel: f64) -> Self {
        Band { abs, rel }
    }

    /// The CPI margin this band allows at `scale` (total CPI).
    pub fn margin(&self, scale: f64) -> f64 {
        self.abs + self.rel * scale.max(0.0)
    }
}

/// Verdict for one compared component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentCheck {
    /// Component label ("base", "memory", …).
    pub label: String,
    /// Prediction interval (oracle side).
    pub predicted: Interval,
    /// Measurement interval (simulator side; a point for single stacks).
    pub measured: Interval,
    /// Tolerance band applied to the prediction.
    pub band: Band,
    /// Margin the band allowed at this run's scale.
    pub margin: f64,
    /// Residual gap after widening the prediction by `margin`
    /// (0 = agreement).
    pub gap: f64,
}

impl ComponentCheck {
    /// Compares a prediction against a measurement under `band`, with the
    /// band scaled by `scale` (typically the run's total CPI).
    pub fn evaluate(
        label: impl Into<String>,
        predicted: Interval,
        measured: Interval,
        band: Band,
        scale: f64,
    ) -> Self {
        let margin = band.margin(scale);
        let gap = predicted.widen(margin).gap(&measured);
        ComponentCheck {
            label: label.into(),
            predicted,
            measured,
            band,
            margin,
            gap,
        }
    }

    /// Whether the models agree on this component.
    pub fn pass(&self) -> bool {
        self.gap <= 0.0 + f64::EPSILON
    }
}

impl std::fmt::Display for ComponentCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} predicted {} measured {} margin {:.4} → {}",
            self.label,
            self.predicted,
            self.measured,
            self.margin,
            if self.pass() {
                "ok".to_string()
            } else {
                format!("DIVERGED by {:.4}", self.gap)
            }
        )
    }
}

/// The full comparison of one run: a verdict per component.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StackComparison {
    /// Per-component verdicts, in stacking order.
    pub checks: Vec<ComponentCheck>,
}

impl StackComparison {
    /// Whether every component agreed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(ComponentCheck::pass)
    }

    /// The diverged components (empty on agreement).
    pub fn failures(&self) -> impl Iterator<Item = &ComponentCheck> {
        self.checks.iter().filter(|c| !c.pass())
    }

    /// The largest residual gap across all components (0 on agreement).
    pub fn worst_gap(&self) -> f64 {
        self.checks.iter().map(|c| c.gap).fold(0.0, f64::max)
    }
}

impl std::fmt::Display for StackComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.checks {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

impl MultiStackReport {
    /// The multi-stage prediction interval for `c` as an [`Interval`]
    /// (the `[min, max]` of [`MultiStackReport::bounds`]).
    pub fn interval(&self, c: Component) -> Interval {
        let (lo, hi) = self.bounds(c);
        Interval::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = Interval::new(2.0, 1.0); // reversed bounds reorder
        assert_eq!(i, Interval::new(1.0, 2.0));
        assert!((i.width() - 1.0).abs() < 1e-12);
        assert!((i.mid() - 1.5).abs() < 1e-12);
        assert!(i.contains(1.0) && i.contains(2.0) && !i.contains(2.01));
        let p = Interval::point(3.0);
        assert!(!i.overlaps(&p));
        assert!((i.gap(&p) - 1.0).abs() < 1e-12);
        assert!((p.gap(&i) - 1.0).abs() < 1e-12);
        assert!(i.widen(1.0).overlaps(&p));
        assert_eq!(i.hull(&p), Interval::new(1.0, 3.0));
        // Widening never goes negative at the low end.
        assert_eq!(Interval::point(0.1).widen(0.5).lo, 0.0);
    }

    #[test]
    fn band_margin_scales() {
        let b = Band::new(0.02, 0.05);
        assert!((b.margin(0.0) - 0.02).abs() < 1e-12);
        assert!((b.margin(2.0) - 0.12).abs() < 1e-12);
    }

    #[test]
    fn check_pass_and_gap() {
        let pred = Interval::new(0.10, 0.20);
        let meas = Interval::point(0.24);
        let tight = ComponentCheck::evaluate("x", pred, meas, Band::new(0.01, 0.0), 1.0);
        assert!(!tight.pass());
        assert!((tight.gap - 0.03).abs() < 1e-12);
        let loose = ComponentCheck::evaluate("x", pred, meas, Band::new(0.05, 0.0), 1.0);
        assert!(loose.pass());
        assert_eq!(loose.gap, 0.0);
    }

    #[test]
    fn comparison_aggregates() {
        let mk = |gap_margin: f64| {
            ComponentCheck::evaluate(
                "c",
                Interval::point(0.0),
                Interval::point(0.5),
                Band::new(gap_margin, 0.0),
                0.0,
            )
        };
        let ok = StackComparison {
            checks: vec![mk(0.6), mk(0.5)],
        };
        assert!(ok.pass());
        assert_eq!(ok.worst_gap(), 0.0);
        let bad = StackComparison {
            checks: vec![mk(0.6), mk(0.1)],
        };
        assert!(!bad.pass());
        assert_eq!(bad.failures().count(), 1);
        assert!((bad.worst_gap() - 0.4).abs() < 1e-12);
        assert!(bad.to_string().contains("DIVERGED"));
    }
}
