//! Content-addressed cache keys for analysis requests.
//!
//! A long-running service wants "same question ⇒ same answer bytes" to be
//! a cache hit, where *same question* must be insensitive to how the
//! question was spelled (preset name vs. the equivalent `.core` table,
//! flag order, whitespace). The canonical form is built from
//! representations that are already round-trip canonical in this
//! workspace:
//!
//! * the core configuration via `CoreConfig::to_table()` — the `cores
//!   dump` canonical `.core` dump, so a preset name and a verbatim table
//!   that parse to the same machine digest identically;
//! * the workload via its `Debug` form — workload generators are plain
//!   parameter structs, so the `Debug` string is a faithful, total
//!   serialization of the generator;
//! * [`crate::sampling::SamplePlan`] and `IdealFlags` via their `Display`
//!   forms (both round-trip through their parsers).
//!
//! Every field is length-framed before hashing, so `("ab", "c")` and
//! `("a", "bc")` canonicalize differently even though their
//! concatenations agree. The 64-bit FNV-1a digest is the *address*
//! (shard selector, log handle); equality decisions always compare the
//! full canonical string, so a digest collision can never serve the
//! wrong bytes.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` (the workspace's standing zero-dep hash).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A finished cache key: the full canonical request string plus its
/// 64-bit content digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    canonical: String,
    digest: u64,
}

impl CacheKey {
    /// The canonical request string — the authoritative identity.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The FNV-1a digest of the canonical string.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Deterministic shard index in `0..shards`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    #[must_use]
    pub fn shard(&self, shards: usize) -> usize {
        assert!(shards > 0, "shard count must be positive");
        (self.digest % shards as u64) as usize
    }

    /// Approximate heap footprint of the key, for byte-budget accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.canonical.len() + std::mem::size_of::<Self>()
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.digest)
    }
}

/// Builds a [`CacheKey`] from named, length-framed fields.
///
/// ```
/// use mstacks_core::cachekey::KeyBuilder;
///
/// let a = KeyBuilder::new("simulate").field("uops", "120000").finish();
/// let b = KeyBuilder::new("simulate").field("uops", "120000").finish();
/// assert_eq!(a, b);
/// let c = KeyBuilder::new("simulate").field("uops", "12000").finish();
/// assert_ne!(a.canonical(), c.canonical());
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    canon: String,
}

impl KeyBuilder {
    /// Starts a key for one endpoint/request kind (its own frame, so
    /// `simulate` and `sweep` requests can never alias).
    #[must_use]
    pub fn new(endpoint: &str) -> Self {
        let mut b = KeyBuilder {
            canon: String::with_capacity(256),
        };
        b.push_frame("endpoint", endpoint);
        b
    }

    /// Appends one named field. Values are length-framed, so adjacent
    /// fields can never alias regardless of their content.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        let v = value.to_string();
        self.push_frame(name, &v);
        self
    }

    fn push_frame(&mut self, name: &str, value: &str) {
        use std::fmt::Write;
        // name and length in the frame header; \x1f/\x1e are the ASCII
        // unit/record separators (never produced by the canonical dumps,
        // but the length prefix keeps even hostile values unambiguous).
        let _ = write!(self.canon, "{name}\x1f{}\x1f{value}\x1e", value.len());
    }

    /// Finalizes into the canonical string + digest.
    #[must_use]
    pub fn finish(self) -> CacheKey {
        let digest = fnv1a(self.canon.as_bytes());
        CacheKey {
            canonical: self.canon,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_framing_prevents_concatenation_aliasing() {
        let ab_c = KeyBuilder::new("e")
            .field("x", "ab")
            .field("y", "c")
            .finish();
        let a_bc = KeyBuilder::new("e")
            .field("x", "a")
            .field("y", "bc")
            .finish();
        assert_ne!(ab_c.canonical(), a_bc.canonical());
        let xy = KeyBuilder::new("e").field("xy", "").field("", "").finish();
        let x_y = KeyBuilder::new("e").field("x", "y").finish();
        assert_ne!(xy.canonical(), x_y.canonical());
    }

    #[test]
    fn endpoint_is_part_of_the_identity() {
        let sim = KeyBuilder::new("simulate").field("w", "mcf").finish();
        let swp = KeyBuilder::new("sweep").field("w", "mcf").finish();
        assert_ne!(sim.canonical(), swp.canonical());
        assert_ne!(sim.digest(), swp.digest());
    }

    #[test]
    fn shard_is_stable_and_in_range() {
        let k = KeyBuilder::new("simulate").field("w", "lbm").finish();
        for shards in 1..9 {
            let s = k.shard(shards);
            assert!(s < shards);
            assert_eq!(s, k.shard(shards));
        }
    }

    #[test]
    fn display_is_the_hex_digest() {
        let k = KeyBuilder::new("simulate").finish();
        assert_eq!(format!("{k}"), format!("{:016x}", k.digest()));
    }
}
