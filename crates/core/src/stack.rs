//! Stack data types: [`CpiStack`] and [`FlopsStack`].
//!
//! A stack stores per-component *cycle* counts accumulated by an
//! accountant. Dividing by the committed micro-op count turns them into
//! CPI components; dividing by total cycles and scaling by the peak rate
//! turns them into an IPC stack or (via the paper's Eq. (1)) a FLOPS
//! stack in operations per second.

use crate::component::{Component, FlopsComponent, Stage, COMPONENTS, FLOPS_COMPONENTS};
use mstacks_mem::HitLevel;

/// A CPI stack measured at one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiStack {
    /// Stage this stack was measured at.
    pub stage: Stage,
    /// Per-component cycle counts (fractional).
    counts: [f64; COMPONENTS.len()],
    /// Split of the Dcache component by serving level (L2, L3, DRAM) — the
    /// paper's suggested per-level refinement (§III-A).
    mem_levels: [f64; 3],
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed correct-path micro-ops.
    pub uops: u64,
}

impl CpiStack {
    /// An empty stack for `stage`.
    pub fn new(stage: Stage) -> Self {
        CpiStack {
            stage,
            counts: [0.0; COMPONENTS.len()],
            mem_levels: [0.0; 3],
            cycles: 0,
            uops: 0,
        }
    }

    /// Builds a stack directly from counts (used by accountants).
    pub fn from_counts(
        stage: Stage,
        counts: [f64; COMPONENTS.len()],
        cycles: u64,
        uops: u64,
    ) -> Self {
        CpiStack {
            stage,
            counts,
            mem_levels: [0.0; 3],
            cycles,
            uops,
        }
    }

    /// Like [`CpiStack::from_counts`], with the per-level Dcache breakdown
    /// `(L2, L3, DRAM)` attached.
    pub fn from_counts_with_levels(
        stage: Stage,
        counts: [f64; COMPONENTS.len()],
        mem_levels: [f64; 3],
        cycles: u64,
        uops: u64,
    ) -> Self {
        CpiStack {
            stage,
            counts,
            mem_levels,
            cycles,
            uops,
        }
    }

    /// CPI contribution of the Dcache component that was served by `level`
    /// (L1/L2 are reported together under L2, since an L1 hit is never a
    /// Dcache stall). The three levels sum to `cpi_of(Component::Dcache)`
    /// when the accountant recorded levels.
    pub fn dcache_level_cpi(&self, level: HitLevel) -> f64 {
        if self.uops == 0 {
            return 0.0;
        }
        let i = match level {
            HitLevel::L1 | HitLevel::L2 => 0,
            HitLevel::L3 => 1,
            HitLevel::Mem => 2,
        };
        self.mem_levels[i] / self.uops as f64
    }

    /// Raw cycle count of `c`.
    #[inline]
    pub fn cycles_of(&self, c: Component) -> f64 {
        self.counts[c.index()]
    }

    /// CPI contribution of `c` (cycles / committed micro-ops).
    #[inline]
    pub fn cpi_of(&self, c: Component) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.counts[c.index()] / self.uops as f64
        }
    }

    /// Total CPI as the sum of all components.
    pub fn total_cpi(&self) -> f64 {
        COMPONENTS.iter().map(|&c| self.cpi_of(c)).sum()
    }

    /// Sum of all component cycle counts (≈ `cycles`; the accounting
    /// invariant the test-suite checks).
    pub fn total_cycles(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Component fractions of the total (sums to 1 for a non-empty stack).
    pub fn normalized(&self) -> [f64; COMPONENTS.len()] {
        let total = self.total_cycles();
        let mut out = [0.0; COMPONENTS.len()];
        if total > 0.0 {
            for (o, c) in out.iter_mut().zip(self.counts.iter()) {
                *o = c / total;
            }
        }
        out
    }

    /// IPC-stack components: each component scaled to instructions/cycle so
    /// the full stack height equals `max_ipc` and the base component equals
    /// the achieved IPC (paper §V-B, Fig. 5 left).
    pub fn ipc_components(&self, max_ipc: f64) -> [f64; COMPONENTS.len()] {
        let mut out = self.normalized();
        for o in &mut out {
            *o *= max_ipc;
        }
        out
    }

    /// `(component, cpi)` pairs in stacking order.
    pub fn iter_cpi(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        COMPONENTS.iter().map(move |&c| (c, self.cpi_of(c)))
    }
}

/// A FLOPS stack (paper Table III), measured at the issue stage.
#[derive(Debug, Clone, PartialEq)]
pub struct FlopsStack {
    /// Per-component cycle counts (fractional).
    counts: [f64; FLOPS_COMPONENTS.len()],
    /// Total simulated cycles.
    pub cycles: u64,
    /// Peak floating-point operations per cycle, `M = 2·k·v`.
    pub peak_flops_per_cycle: u32,
}

impl FlopsStack {
    /// An empty FLOPS stack for a core with peak `m = 2·k·v` FLOPS/cycle.
    pub fn new(peak_flops_per_cycle: u32) -> Self {
        FlopsStack {
            counts: [0.0; FLOPS_COMPONENTS.len()],
            cycles: 0,
            peak_flops_per_cycle,
        }
    }

    /// Builds a stack directly from counts (used by the accountant).
    pub fn from_counts(
        counts: [f64; FLOPS_COMPONENTS.len()],
        cycles: u64,
        peak_flops_per_cycle: u32,
    ) -> Self {
        FlopsStack {
            counts,
            cycles,
            peak_flops_per_cycle,
        }
    }

    /// Raw cycle count of `c`.
    #[inline]
    pub fn cycles_of(&self, c: FlopsComponent) -> f64 {
        self.counts[c.index()]
    }

    /// Sum of all component cycle counts (≈ `cycles`).
    pub fn total_cycles(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Component fractions of the total (sums to 1).
    pub fn normalized(&self) -> [f64; FLOPS_COMPONENTS.len()] {
        let total = self.total_cycles();
        let mut out = [0.0; FLOPS_COMPONENTS.len()];
        if total > 0.0 {
            for (o, c) in out.iter_mut().zip(self.counts.iter()) {
                *o = c / total;
            }
        }
        out
    }

    /// Achieved floating-point operations per cycle:
    /// `base_comp / cycles · M` (paper Eq. (1) without the frequency).
    pub fn achieved_flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.cycles_of(FlopsComponent::Base) / self.cycles as f64
            * f64::from(self.peak_flops_per_cycle)
    }

    /// Achieved GFLOPS at clock `freq_ghz` — the paper's Eq. (1):
    /// `FLOPS = base_comp / cycles · freq · M`.
    pub fn achieved_gflops(&self, freq_ghz: f64) -> f64 {
        self.achieved_flops_per_cycle() * freq_ghz
    }

    /// Stack heights in GFLOPS: every component scaled by `freq·M/cycles`,
    /// so the total equals peak GFLOPS and the base equals achieved GFLOPS
    /// (paper §III-C).
    pub fn gflops_components(&self, freq_ghz: f64) -> [f64; FLOPS_COMPONENTS.len()] {
        let mut out = self.normalized();
        let peak = freq_ghz * f64::from(self.peak_flops_per_cycle);
        for o in &mut out {
            *o *= peak;
        }
        out
    }

    /// `(component, fraction)` pairs in stacking order.
    pub fn iter_normalized(&self) -> impl Iterator<Item = (FlopsComponent, f64)> + '_ {
        let n = self.normalized();
        FLOPS_COMPONENTS.iter().map(move |&c| (c, n[c.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cpi() -> CpiStack {
        let mut counts = [0.0; COMPONENTS.len()];
        counts[Component::Base.index()] = 250.0;
        counts[Component::Dcache.index()] = 600.0;
        counts[Component::Depend.index()] = 150.0;
        CpiStack::from_counts(Stage::Dispatch, counts, 1_000, 1_000)
    }

    #[test]
    fn cpi_components_divide_by_uops() {
        let s = sample_cpi();
        assert!((s.cpi_of(Component::Base) - 0.25).abs() < 1e-12);
        assert!((s.cpi_of(Component::Dcache) - 0.6).abs() < 1e-12);
        assert!((s.total_cpi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_sums_to_one() {
        let s = sample_cpi();
        let total: f64 = s.normalized().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ipc_stack_height_is_max_ipc() {
        let s = sample_cpi();
        let ipc = s.ipc_components(4.0);
        let total: f64 = ipc.iter().sum();
        assert!((total - 4.0).abs() < 1e-12);
        // Base component = achieved IPC = 1.0 uops / cycle × (250/1000) × 4.
        assert!((ipc[Component::Base.index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flops_eq1() {
        // 64 peak ops/cycle; base = half the cycles → 32 ops/cycle.
        let mut counts = [0.0; FLOPS_COMPONENTS.len()];
        counts[FlopsComponent::Base.index()] = 500.0;
        counts[FlopsComponent::Memory.index()] = 500.0;
        let s = FlopsStack::from_counts(counts, 1_000, 64);
        assert!((s.achieved_flops_per_cycle() - 32.0).abs() < 1e-12);
        // Eq. (1) with freq: 32 ops/cycle × 2 GHz = 64 GFLOPS.
        assert!((s.achieved_gflops(2.0) - 64.0).abs() < 1e-12);
        // Stack height = peak GFLOPS.
        let total: f64 = s.gflops_components(2.0).iter().sum();
        assert!((total - 128.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stacks_are_zero() {
        let s = CpiStack::new(Stage::Commit);
        assert_eq!(s.total_cpi(), 0.0);
        let f = FlopsStack::new(64);
        assert_eq!(f.achieved_flops_per_cycle(), 0.0);
        assert_eq!(f.normalized().iter().sum::<f64>(), 0.0);
    }
}
