//! The conservation-audit subsystem.
//!
//! The paper's methodology rests on one invariant: at every stage, the
//! CPI-stack components sum exactly to the measured cycle count (§III-A
//! width normalization, §III-B bad-speculation separation). A silent leak
//! at any stage quietly mis-attributes cycles in every figure. The
//! [`AuditObserver`] wraps the full accountant set of one hardware thread
//! and verifies, while the simulation runs:
//!
//! * **per-cycle conservation** — every stage hook attributes exactly one
//!   cycle across its components (to the configured tolerance, default
//!   `1e-9`), with open speculative windows counted where the cycles will
//!   eventually land;
//! * **cumulative conservation** — each accountant's accumulated
//!   components equal its elapsed cycle count (tolerance scaled by cycles);
//! * **width carry** — every `WidthNormalizer` residual stays finite and
//!   non-negative (the finalize-time folding contract);
//! * **occupancy** — ROB / shared RS / LDQ / STQ never exceed capacity and
//!   the MSHR files never hold more live entries than they have;
//! * **commit order** — the next-commit sequence number is monotone and
//!   advances by exactly the number of micro-ops the commit view reported.
//!
//! Violations become structured [`AuditViolation`] diagnostics (stage,
//! thread, cycle, per-component deltas of the offending cycle) collected in
//! an [`AuditReport`] — not a bare panic — and an optional JSONL pipetrace
//! records one line per thread-cycle for offline debugging.
//!
//! Enable via [`crate::Session::audit`], the CLI `--audit` flag, or
//! `MSTACKS_AUDIT=1` for the benchmark executors.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use crate::component::{Component, Stage, COMPONENTS, FLOPS_COMPONENTS};
use crate::session::ThreadObserver;
use mstacks_pipeline::{
    CommitView, CycleEndView, DispatchView, FetchView, IssueView, StageObserver,
};

/// One accountant's running books, as inspected mid-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConservationCheck {
    /// Which accountant ("fetch", "dispatch", "issue", "commit", "flops").
    pub stage: &'static str,
    /// Cycles the accountant has seen.
    pub cycles: u64,
    /// Sum of all accumulated components, open speculative windows
    /// included. Must equal `cycles`.
    pub accounted: f64,
    /// Width-normalizer carry not yet consumed. Folded into the base
    /// component at finalize, so it is *not* part of `accounted`; it must
    /// stay finite and non-negative.
    pub residual: f64,
}

impl ConservationCheck {
    /// Signed leak: accounted cycles minus elapsed cycles.
    pub fn error(&self) -> f64 {
        self.accounted - self.cycles as f64
    }

    /// Whether the books balance to a per-cycle tolerance of `tol` (the
    /// absolute bound scales with elapsed cycles, since f64 accumulation
    /// error grows with the stream length).
    pub fn holds(&self, tol: f64) -> bool {
        self.accounted.is_finite()
            && self.residual.is_finite()
            && self.residual >= 0.0
            && self.error().abs() <= tol * self.cycles.max(1) as f64
    }
}

/// A deliberate accounting corruption, for mutation-style tests that prove
/// the auditor actually detects broken books (see
/// [`crate::Session::with_fault_injection`]). Applied once, to hardware
/// thread 0, at the first `stage` hook at or after `cycle`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Accountant to corrupt.
    pub stage: Stage,
    /// Component whose count is skewed.
    pub component: Component,
    /// Earliest cycle the skew is applied at.
    pub cycle: u64,
    /// Cycles added to the component (bypassing normalization).
    pub amount: f64,
}

/// Shared sink for the optional JSONL pipetrace (one writer, all threads).
pub type TraceSink = Rc<RefCell<Box<dyn Write>>>;

/// Audit configuration.
#[derive(Clone)]
pub struct AuditOptions {
    /// Per-cycle conservation tolerance (default `1e-9`).
    pub tolerance: f64,
    /// Violations kept per thread before counting drops (default 32).
    pub max_violations: usize,
    /// Optional JSONL pipetrace sink (one line per thread-cycle).
    pub trace: Option<TraceSink>,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            tolerance: 1e-9,
            max_violations: 32,
            trace: None,
        }
    }
}

impl std::fmt::Debug for AuditOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditOptions")
            .field("tolerance", &self.tolerance)
            .field("max_violations", &self.max_violations)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl AuditOptions {
    /// Attaches a JSONL pipetrace writer (builder style).
    pub fn with_trace(mut self, w: Box<dyn Write>) -> Self {
        self.trace = Some(Rc::new(RefCell::new(w)));
        self
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Hardware thread the violation was observed on.
    pub thread: usize,
    /// Cycle of the violation.
    pub cycle: u64,
    /// Invariant family ("dispatch", "width", "occupancy", …).
    pub stage: String,
    /// Human-readable description.
    pub message: String,
    /// Per-component deltas of the offending cycle (non-zero entries only;
    /// empty for non-conservation violations).
    pub deltas: Vec<(&'static str, f64)>,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} cycle {} [{}]: {}",
            self.thread, self.cycle, self.stage, self.message
        )?;
        if !self.deltas.is_empty() {
            write!(f, " — cycle deltas:")?;
            for (label, d) in &self.deltas {
                write!(f, " {label}={d:+.9}")?;
            }
        }
        Ok(())
    }
}

/// Everything an audited run found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Violations, in detection order (capped per thread).
    pub violations: Vec<AuditViolation>,
    /// Violations beyond the per-thread cap (detected, not stored).
    pub dropped: usize,
    /// Thread-cycles the auditor checked.
    pub cycles_checked: u64,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Folds another thread's findings into this report.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
        self.dropped += other.dropped;
        self.cycles_checked += other.cycles_checked;
    }
}

/// Previous-cycle snapshot of one CPI accountant's books.
#[derive(Clone, Copy)]
struct StagePrev {
    counts: [f64; COMPONENTS.len()],
    residual: f64,
}

impl Default for StagePrev {
    fn default() -> Self {
        StagePrev {
            counts: [0.0; COMPONENTS.len()],
            residual: 0.0,
        }
    }
}

/// The auditing wrapper around one thread's accountant set. Forwards every
/// stage hook to the inner [`ThreadObserver`] unchanged (an audited run
/// produces bit-identical stacks), then re-checks the books.
pub(crate) struct AuditObserver {
    inner: ThreadObserver,
    thread: usize,
    tol: f64,
    max_violations: usize,
    violations: Vec<AuditViolation>,
    dropped: usize,
    cycles_checked: u64,
    fault: Option<FaultSpec>,
    trace: Option<TraceSink>,
    prev_fetch: StagePrev,
    prev_dispatch: StagePrev,
    prev_issue: StagePrev,
    prev_commit: StagePrev,
    prev_flops: [f64; FLOPS_COMPONENTS.len()],
    /// Commit-order state from the previous cycle end.
    last_next_seq: Option<u64>,
    last_committed: Option<u64>,
    /// This cycle's committed count, per the commit view.
    commit_n: u32,
    /// Pipetrace scratch: per-stage micro-op counts of the current cycle.
    tr: [u32; 4],
}

impl AuditObserver {
    pub(crate) fn new(
        inner: ThreadObserver,
        thread: usize,
        opts: &AuditOptions,
        fault: Option<FaultSpec>,
    ) -> Self {
        AuditObserver {
            inner,
            thread,
            tol: opts.tolerance,
            max_violations: opts.max_violations,
            violations: Vec::new(),
            dropped: 0,
            cycles_checked: 0,
            fault,
            trace: opts.trace.clone(),
            prev_fetch: StagePrev::default(),
            prev_dispatch: StagePrev::default(),
            prev_issue: StagePrev::default(),
            prev_commit: StagePrev::default(),
            prev_flops: [0.0; FLOPS_COMPONENTS.len()],
            last_next_seq: None,
            last_committed: None,
            commit_n: 0,
            tr: [0; 4],
        }
    }

    /// Surrenders the wrapped accountants (for report assembly) and the
    /// audit findings.
    pub(crate) fn into_parts(self) -> (ThreadObserver, AuditReport) {
        (
            self.inner,
            AuditReport {
                violations: self.violations,
                dropped: self.dropped,
                cycles_checked: self.cycles_checked,
            },
        )
    }

    fn record(
        &mut self,
        cycle: u64,
        stage: &str,
        message: String,
        deltas: Vec<(&'static str, f64)>,
    ) {
        if self.violations.len() < self.max_violations {
            self.violations.push(AuditViolation {
                thread: self.thread,
                cycle,
                stage: stage.to_string(),
                message,
                deltas,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Applies a pending fault once its stage hook fires at/after its
    /// cycle — the corruption the mutation tests expect the checks below to
    /// catch.
    fn apply_fault(&mut self, stage: Stage, cycle: u64) {
        let due = self
            .fault
            .as_ref()
            .is_some_and(|f| f.stage == stage && cycle >= f.cycle);
        if !due {
            return;
        }
        let f = self.fault.take().expect("checked above");
        match stage {
            Stage::Fetch => self.inner.fetch.skew(f.component, f.amount),
            Stage::Dispatch => self.inner.dispatch.skew(f.component, f.amount),
            Stage::Issue => self.inner.issue.skew(f.component, f.amount),
            Stage::Commit => self.inner.commit.skew(f.component, f.amount),
        }
    }

    /// The per-cycle conservation check: across one stage hook, the
    /// accountant must have attributed exactly one cycle to its components
    /// (a carry drain moves cycles *between* components, never in or out),
    /// and the width carry must stay finite and non-negative.
    fn check_stage(
        &mut self,
        cycle: u64,
        stage: &'static str,
        counts: [f64; COMPONENTS.len()],
        residual: f64,
    ) {
        let prev = match stage {
            "fetch" => &mut self.prev_fetch,
            "dispatch" => &mut self.prev_dispatch,
            "issue" => &mut self.prev_issue,
            "commit" => &mut self.prev_commit,
            _ => unreachable!("unknown stage"),
        };
        let mut sum = 0.0;
        let mut deltas = Vec::new();
        for (i, c) in COMPONENTS.iter().enumerate() {
            let d = counts[i] - prev.counts[i];
            sum += d;
            if d != 0.0 {
                deltas.push((c.label(), d));
            }
        }
        let dres = residual - prev.residual;
        *prev = StagePrev { counts, residual };
        if !residual.is_finite() || residual < 0.0 {
            self.record(
                cycle,
                "width",
                format!("{stage} normalizer carry is {residual} (must be finite and ≥ 0)"),
                vec![("residual", dres)],
            );
        }
        if !(sum - 1.0).abs().is_finite() || (sum - 1.0).abs() > self.tol {
            deltas.push(("residual", dres));
            self.record(
                cycle,
                stage,
                format!(
                    "cycle attributed {sum:.12} components (expected 1 ± {:e})",
                    self.tol
                ),
                deltas,
            );
        }
    }

    /// The FLOPS stack's per-cycle check: Table III components provably sum
    /// to exactly 1 every issue cycle.
    fn check_flops(&mut self, cycle: u64) {
        let counts = self.inner.flops.audited_counts();
        let mut sum = 0.0;
        let mut deltas = Vec::new();
        for (i, c) in FLOPS_COMPONENTS.iter().enumerate() {
            let d = counts[i] - self.prev_flops[i];
            sum += d;
            if d != 0.0 {
                deltas.push((c.label(), d));
            }
        }
        self.prev_flops = counts;
        if !(sum - 1.0).abs().is_finite() || (sum - 1.0).abs() > self.tol {
            self.record(
                cycle,
                "flops",
                format!(
                    "cycle attributed {sum:.12} components (expected 1 ± {:e})",
                    self.tol
                ),
                deltas,
            );
        }
    }

    fn check_occupancy(&mut self, cycle: u64, v: &CycleEndView) {
        let mut over = Vec::new();
        if v.rob_len > v.rob_cap {
            over.push(format!("ROB {}/{}", v.rob_len, v.rob_cap));
        }
        if v.rs_total > v.rs_cap {
            over.push(format!("RS {}/{}", v.rs_total, v.rs_cap));
        }
        if v.ldq_len > v.ldq_cap {
            over.push(format!("LDQ {}/{}", v.ldq_len, v.ldq_cap));
        }
        if v.stq_len > v.stq_cap {
            over.push(format!("STQ {}/{}", v.stq_len, v.stq_cap));
        }
        for (m, name) in v.mshr.iter().zip(["L1I", "L1D", "L2", "L3"]) {
            if !m.within_capacity() {
                over.push(format!("{name} MSHR {}/{}", m.occupied, m.capacity));
            }
        }
        if !over.is_empty() {
            self.record(
                cycle,
                "occupancy",
                format!("structure over capacity: {}", over.join(", ")),
                Vec::new(),
            );
        }
    }

    fn check_commit_order(&mut self, cycle: u64, v: &CycleEndView) {
        if let (Some(seq), Some(committed)) = (self.last_next_seq, self.last_committed) {
            let dseq = v.next_commit_seq.wrapping_sub(seq);
            let dcommit = v.committed.wrapping_sub(committed);
            if v.next_commit_seq < seq {
                self.record(
                    cycle,
                    "commit-order",
                    format!(
                        "next commit seq went backwards: {seq} → {}",
                        v.next_commit_seq
                    ),
                    Vec::new(),
                );
            } else if dseq != u64::from(self.commit_n) || dcommit != u64::from(self.commit_n) {
                self.record(
                    cycle,
                    "commit-order",
                    format!(
                        "commit view reported {} retires but head seq advanced {dseq} \
                         and the committed counter {dcommit}",
                        self.commit_n
                    ),
                    Vec::new(),
                );
            }
        }
        self.last_next_seq = Some(v.next_commit_seq);
        self.last_committed = Some(v.committed);
    }

    /// Cumulative conservation: each accountant's books re-sum to its
    /// elapsed cycle count (tolerance scaled by cycles — f64 error grows
    /// with stream length).
    fn check_cumulative(&mut self, cycle: u64) {
        let checks = [
            self.inner.fetch.conservation(),
            self.inner.dispatch.conservation(),
            self.inner.issue.conservation(),
            self.inner.commit.conservation(),
            self.inner.flops.conservation(),
        ];
        for c in checks {
            if !c.holds(self.tol) {
                self.record(
                    cycle,
                    "conservation",
                    format!(
                        "{} accountant books off by {:.12} after {} cycles (residual {})",
                        c.stage,
                        c.error(),
                        c.cycles,
                        c.residual
                    ),
                    Vec::new(),
                );
            }
        }
    }

    fn write_trace(&mut self, cycle: u64, v: &CycleEndView) {
        let Some(sink) = &self.trace else { return };
        let mut w = sink.borrow_mut();
        let _ = writeln!(
            w,
            "{{\"cycle\":{},\"thread\":{},\"fetch\":{},\"dispatch\":{},\"issue\":{},\
             \"commit\":{},\"rob\":{},\"rs\":{},\"ldq\":{},\"stq\":{},\"seq\":{},\
             \"mshr\":[{},{},{},{}]}}",
            cycle,
            self.thread,
            self.tr[0],
            self.tr[1],
            self.tr[2],
            self.tr[3],
            v.rob_len,
            v.rs_own,
            v.ldq_len,
            v.stq_len,
            v.next_commit_seq,
            v.mshr[0].occupied,
            v.mshr[1].occupied,
            v.mshr[2].occupied,
            v.mshr[3].occupied,
        );
    }
}

impl StageObserver for AuditObserver {
    fn on_fetch(&mut self, cycle: u64, view: &FetchView) {
        self.inner.on_fetch(cycle, view);
        self.apply_fault(Stage::Fetch, cycle);
        let counts = self.inner.fetch.audited_counts();
        let residual = self.inner.fetch.residual();
        self.check_stage(cycle, "fetch", counts, residual);
        self.tr[0] = view.n_total;
    }

    fn on_dispatch(&mut self, cycle: u64, view: &DispatchView) {
        self.inner.on_dispatch(cycle, view);
        self.apply_fault(Stage::Dispatch, cycle);
        let counts = self.inner.dispatch.audited_counts();
        let residual = self.inner.dispatch.residual();
        self.check_stage(cycle, "dispatch", counts, residual);
        self.tr[1] = view.n_total;
    }

    fn on_issue(&mut self, cycle: u64, view: &IssueView<'_>) {
        self.inner.on_issue(cycle, view);
        self.apply_fault(Stage::Issue, cycle);
        let counts = self.inner.issue.audited_counts();
        let residual = self.inner.issue.residual();
        self.check_stage(cycle, "issue", counts, residual);
        self.check_flops(cycle);
        self.tr[2] = view.n_total;
    }

    fn on_commit(&mut self, cycle: u64, view: &CommitView) {
        self.inner.on_commit(cycle, view);
        self.apply_fault(Stage::Commit, cycle);
        let counts = self.inner.commit.audited_counts();
        let residual = self.inner.commit.residual();
        self.check_stage(cycle, "commit", counts, residual);
        self.commit_n = view.n;
        self.tr[3] = view.n;
    }

    fn on_dispatch_uop(&mut self, cycle: u64, uop: &mstacks_model::MicroOp) {
        self.inner.on_dispatch_uop(cycle, uop);
    }

    fn on_commit_uop(&mut self, cycle: u64, uop: &mstacks_model::MicroOp) {
        self.inner.on_commit_uop(cycle, uop);
    }

    fn on_squash(&mut self, cycle: u64, n: u64, branches: u64) {
        self.inner.on_squash(cycle, n, branches);
    }

    fn wants_cycle_end(&self) -> bool {
        true
    }

    fn on_cycle_end(&mut self, cycle: u64, view: &CycleEndView) {
        self.check_occupancy(cycle, view);
        self.check_commit_order(cycle, view);
        self.check_cumulative(cycle);
        self.write_trace(cycle, view);
        self.cycles_checked += 1;
        self.commit_n = 0;
        self.tr = [0; 4];
    }
}
