//! High-level simulation API: one call runs a trace on a configured core
//! with all four accountants attached and returns every stack.

use crate::accounting::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FetchAccountant, FlopsAccountant,
    IssueAccountant,
};
use crate::multi::MultiStackReport;
use crate::stack::FlopsStack;
use mstacks_model::{CoreConfig, IdealFlags, MicroOp};
use mstacks_pipeline::{Core, PipelineError, PipelineResult};

/// Everything one simulation produces: raw pipeline result, the three CPI
/// stacks and the FLOPS stack.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Core configuration name ("bdw", "knl", "skx", …).
    pub config_name: String,
    /// Idealization flags the run used.
    pub ideal: IdealFlags,
    /// Raw pipeline counters (cycles, commits, cache stats, …).
    pub result: PipelineResult,
    /// The multi-stage CPI stacks.
    pub multi: MultiStackReport,
    /// The FLOPS stack (issue stage, vector FP only).
    pub flops: FlopsStack,
}

impl SimReport {
    /// Total CPI of the run.
    pub fn cpi(&self) -> f64 {
        self.result.cpi()
    }

    /// Achieved GFLOPS at clock `freq_ghz` (paper Eq. (1)).
    pub fn gflops(&self, freq_ghz: f64) -> f64 {
        self.flops.achieved_gflops(freq_ghz)
    }
}

/// Builder-style simulation runner.
///
/// # Example
///
/// ```
/// use mstacks_core::Simulation;
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
///
/// let trace = (0..500u64).map(|i| {
///     MicroOp::new(0x400000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///         .with_dst(ArchReg::new((i % 4) as u16))
/// });
/// let report = Simulation::new(CoreConfig::knights_landing())
///     .with_ideal(IdealFlags::none().with_perfect_bpred())
///     .run(trace)
///     .expect("completes");
/// assert_eq!(report.result.committed_uops, 500);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: CoreConfig,
    ideal: IdealFlags,
    badspec: BadSpecMode,
    max_uops: Option<u64>,
}

impl Simulation {
    /// A simulation on core `cfg` with no idealization, ground-truth
    /// bad-speculation handling and no micro-op cap.
    pub fn new(cfg: CoreConfig) -> Self {
        Simulation {
            cfg,
            ideal: IdealFlags::none(),
            badspec: BadSpecMode::GroundTruth,
            max_uops: None,
        }
    }

    /// Sets the idealization flags (builder style).
    pub fn with_ideal(mut self, ideal: IdealFlags) -> Self {
        self.ideal = ideal;
        self
    }

    /// Sets the wrong-path discrimination mode (builder style).
    pub fn with_badspec(mut self, mode: BadSpecMode) -> Self {
        self.badspec = mode;
        self
    }

    /// Caps the simulation at `n` committed micro-ops (builder style).
    pub fn with_max_uops(mut self, n: u64) -> Self {
        self.max_uops = Some(n);
        self
    }

    /// Runs `trace` and collects all stacks.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline (deadlock watchdog).
    pub fn run<I: Iterator<Item = MicroOp>>(
        &self,
        trace: I,
    ) -> Result<SimReport, PipelineError> {
        let w = self.cfg.accounting_width();
        let mut obs = (
            DispatchAccountant::new(w, self.badspec),
            IssueAccountant::new(w, self.badspec),
            CommitAccountant::new(w),
            FlopsAccountant::new(self.cfg.vpu_count().max(1), self.cfg.vector_lanes_f32()),
            FetchAccountant::new(w, self.badspec),
        );
        let mut core = Core::new(self.cfg.clone(), self.ideal, trace);
        let result = match self.max_uops {
            Some(n) => core.run_uops(n, &mut obs)?,
            None => core.run(&mut obs)?,
        };
        let (dispatch_acct, issue_acct, commit_acct, flops_acct, fetch_acct) = obs;
        let uops = result.committed_uops;
        let commit = commit_acct.finish(uops);
        let commit_base = commit.cycles_of(crate::component::Component::Base);
        let dispatch = dispatch_acct.finish(uops, Some(commit_base));
        let issue = issue_acct.finish(uops, Some(commit_base));
        let fetch = fetch_acct.finish(uops, Some(commit_base));
        let flops = flops_acct.finish();
        Ok(SimReport {
            config_name: self.cfg.name.clone(),
            ideal: self.ideal,
            result,
            multi: MultiStackReport {
                dispatch,
                issue,
                commit,
                fetch: Some(fetch),
            },
            flops,
        })
    }

    /// The configuration this simulation runs on.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use mstacks_model::{AluClass, ArchReg, UopKind};

    fn alu_chain(n: u64) -> impl Iterator<Item = MicroOp> {
        (0..n).map(|i| {
            MicroOp::new(0x1000 + (i % 32) * 4, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        })
    }

    #[test]
    fn stacks_sum_to_cycles_at_every_stage() {
        let report = Simulation::new(CoreConfig::broadwell())
            .run(alu_chain(5_000))
            .expect("completes");
        let cycles = report.result.cycles as f64;
        for s in report.multi.stacks() {
            assert!(
                (s.total_cycles() - cycles).abs() < 1e-6,
                "{} stack sums to {} ≠ {} cycles",
                s.stage,
                s.total_cycles(),
                cycles
            );
        }
        assert!((report.flops.total_cycles() - cycles).abs() < 1e-6);
    }

    #[test]
    fn base_components_equal_across_stages() {
        // Ground-truth mode: each correct-path micro-op traverses every
        // stage exactly once → identical base components (paper §III-A).
        let report = Simulation::new(CoreConfig::broadwell())
            .run(alu_chain(5_000))
            .expect("completes");
        let b_d = report.multi.dispatch.cycles_of(Component::Base);
        let b_i = report.multi.issue.cycles_of(Component::Base);
        let b_c = report.multi.commit.cycles_of(Component::Base);
        assert!((b_d - b_c).abs() < 1e-6, "dispatch {b_d} vs commit {b_c}");
        assert!((b_i - b_c).abs() < 1e-6, "issue {b_i} vs commit {b_c}");
        // And base CPI = 1/W.
        let w = CoreConfig::broadwell().accounting_width();
        assert!((report.multi.commit.cpi_of(Component::Base) - 1.0 / f64::from(w)).abs() < 1e-9);
    }

    #[test]
    fn dependence_chain_shows_depend_component() {
        let report = Simulation::new(CoreConfig::broadwell())
            .with_ideal(IdealFlags::none().with_perfect_icache().with_perfect_bpred())
            .run(alu_chain(5_000))
            .expect("completes");
        // CPI ≈ 1; 0.25 base + ~0.75 depend at every stage.
        for s in report.multi.stacks() {
            assert!(
                s.cpi_of(Component::Depend) > 0.5,
                "{} stack should be dependence-dominated: {:?}",
                s.stage,
                s.iter_cpi().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn max_uops_caps_the_run() {
        let report = Simulation::new(CoreConfig::broadwell())
            .with_max_uops(1_000)
            .run(alu_chain(100_000))
            .expect("completes");
        assert!(report.result.committed_uops >= 1_000);
        assert!(report.result.committed_uops < 1_100);
    }

    #[test]
    fn badspec_modes_agree_without_branches() {
        // No branches → no wrong path → all three modes identical.
        let gt = Simulation::new(CoreConfig::broadwell())
            .run(alu_chain(2_000))
            .expect("completes");
        let simple = Simulation::new(CoreConfig::broadwell())
            .with_badspec(BadSpecMode::SimpleRetireSlots)
            .run(alu_chain(2_000))
            .expect("completes");
        let spec = Simulation::new(CoreConfig::broadwell())
            .with_badspec(BadSpecMode::SpeculativeCounters)
            .run(alu_chain(2_000))
            .expect("completes");
        for c in crate::component::COMPONENTS {
            let g = gt.multi.dispatch.cpi_of(c);
            assert!((simple.multi.dispatch.cpi_of(c) - g).abs() < 1e-9, "{c}");
            assert!((spec.multi.dispatch.cpi_of(c) - g).abs() < 1e-9, "{c}");
        }
    }
}
