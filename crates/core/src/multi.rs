//! Multi-stage stack reports: the three per-stage CPI stacks together,
//! with the bound analysis the paper builds on them.
//!
//! The dispatch stack over-estimates frontend penalties and
//! under-estimates backend ones; the commit stack does the opposite; the
//! issue stack sits in between. Together they bound the true CPI reduction
//! from removing a stall source (paper §V-A): the multi-stage prediction
//! for a component is the interval `[min, max]` over the three stacks.

use crate::component::Component;
use crate::stack::CpiStack;

/// The dispatch, issue and commit CPI stacks of one simulation, plus the
/// optional fetch-stage stack (the paper's "other stages" extension).
///
/// # Example
///
/// ```
/// use mstacks_core::{Component, Simulation};
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, MicroOp, UopKind};
///
/// let trace = (0..800u64).map(|i| {
///     MicroOp::new(0x1000 + (i % 8) * 4, UopKind::IntAlu(AluClass::Add))
///         .with_src(ArchReg::new(1))
///         .with_dst(ArchReg::new(1))
/// });
/// let report = Simulation::new(CoreConfig::broadwell())
///     .run(trace)
///     .expect("completes");
/// // The bounds bracket the benefit of removing each stall source.
/// let (lo, hi) = report.multi.bounds(Component::Depend);
/// assert!(lo <= hi);
/// assert!(report.multi.contains(Component::Depend, (lo + hi) / 2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStackReport {
    /// Dispatch-stage stack.
    pub dispatch: CpiStack,
    /// Issue-stage stack.
    pub issue: CpiStack,
    /// Commit-stage stack.
    pub commit: CpiStack,
    /// Fetch/decode-stage stack (charged earliest for frontend events);
    /// not part of the paper's three-stack bounds, provided as the §III-A
    /// extension.
    pub fetch: Option<CpiStack>,
}

impl MultiStackReport {
    /// The paper's three stacks in pipeline order.
    pub fn stacks(&self) -> [&CpiStack; 3] {
        [&self.dispatch, &self.issue, &self.commit]
    }

    /// All measured stacks, including the fetch extension when present.
    pub fn all_stacks(&self) -> Vec<&CpiStack> {
        let mut v = Vec::with_capacity(4);
        if let Some(f) = &self.fetch {
            v.push(f);
        }
        v.extend(self.stacks());
        v
    }

    /// Lower and upper bound on `c`'s CPI contribution across the stacks —
    /// the multi-stage prediction interval for the benefit of removing
    /// that stall source.
    pub fn bounds(&self, c: Component) -> (f64, f64) {
        let values = [
            self.dispatch.cpi_of(c),
            self.issue.cpi_of(c),
            self.commit.cpi_of(c),
        ];
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// Whether the measured CPI reduction `actual` lies within the
    /// multi-stage bounds for `c`.
    pub fn contains(&self, c: Component, actual: f64) -> bool {
        let (lo, hi) = self.bounds(c);
        actual >= lo && actual <= hi
    }

    /// The paper's Fig. 2 error metric for the multi-stage representation:
    /// 0 when `actual` falls within the bounds, otherwise the signed
    /// distance from the nearest bound (positive = prediction too high).
    pub fn bound_error(&self, c: Component, actual: f64) -> f64 {
        let (lo, hi) = self.bounds(c);
        if actual < lo {
            lo - actual
        } else if actual > hi {
            hi - actual
        } else {
            0.0
        }
    }

    /// Total CPI (identical across stages up to accounting noise; reported
    /// from the commit stack).
    pub fn total_cpi(&self) -> f64 {
        self.commit.total_cpi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Stage, COMPONENTS};

    fn stack(stage: Stage, base: f64, dcache: f64, bpred: f64) -> CpiStack {
        let mut counts = [0.0; COMPONENTS.len()];
        counts[Component::Base.index()] = base;
        counts[Component::Dcache.index()] = dcache;
        counts[Component::Bpred.index()] = bpred;
        CpiStack::from_counts(stage, counts, 1_000, 1_000)
    }

    fn report() -> MultiStackReport {
        MultiStackReport {
            dispatch: stack(Stage::Dispatch, 250.0, 60.0, 390.0),
            issue: stack(Stage::Issue, 250.0, 150.0, 250.0),
            commit: stack(Stage::Commit, 250.0, 300.0, 110.0),
            fetch: None,
        }
    }

    #[test]
    fn bounds_span_the_three_stacks() {
        let r = report();
        let (lo, hi) = r.bounds(Component::Dcache);
        assert!((lo - 0.06).abs() < 1e-12);
        assert!((hi - 0.30).abs() < 1e-12);
        let (lo, hi) = r.bounds(Component::Bpred);
        assert!((lo - 0.11).abs() < 1e-12);
        assert!((hi - 0.39).abs() < 1e-12);
    }

    #[test]
    fn contains_and_error() {
        // Mirrors the paper's mcf/BDW example: actual bpred ΔCPI = 0.33
        // falls inside [0.11, 0.39] → error 0.
        let r = report();
        assert!(r.contains(Component::Bpred, 0.33));
        assert_eq!(r.bound_error(Component::Bpred, 0.33), 0.0);
        // actual Dcache ΔCPI = 0.29 inside [0.06, 0.30].
        assert!(r.contains(Component::Dcache, 0.29));
        // Outside: error is the distance to the nearest bound.
        assert!((r.bound_error(Component::Dcache, 0.40) + 0.10).abs() < 1e-12);
        assert!((r.bound_error(Component::Dcache, 0.01) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn stacks_accessor_order() {
        let r = report();
        let s = r.stacks();
        assert_eq!(s[0].stage, Stage::Dispatch);
        assert_eq!(s[1].stage, Stage::Issue);
        assert_eq!(s[2].stage, Stage::Commit);
    }
}
