//! Width normalization with carry-over (paper §III-A).
//!
//! Stages can have different widths (the issue stage is typically wider
//! than dispatch/commit). The paper proposes to account every stage
//! against `W = min(stage widths)`: the utilized fraction is `f = n / W`,
//! and when a wider stage processes more than `W` micro-ops in a cycle the
//! excess fraction is *transferred to the next cycle* — modelling how a
//! wider stage hides latency for the narrower ones.

/// Computes the per-cycle utilized fraction `f` against the minimum width,
/// carrying excess (> 1) over to later cycles.
///
/// # Example
///
/// ```
/// use mstacks_core::WidthNormalizer;
///
/// let mut n = WidthNormalizer::new(4);
/// assert_eq!(n.fraction(2), 0.5);      // half the width used
/// assert_eq!(n.fraction(6), 1.0);      // 6/4 = 1.5 → clamp, carry 0.5
/// assert_eq!(n.fraction(0), 0.5);      // carried work fills this cycle
/// assert_eq!(n.fraction(0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WidthNormalizer {
    width: f64,
    /// Pending work in units of 1/width micro-op slots. Every quantity the
    /// normalizer handles is an integer multiple of `1/W`, so the carry is
    /// tracked as that integer numerator and the arithmetic is *exact*:
    /// the epsilon-negative drift the old f64 carry accumulated (and
    /// clamped away) cannot occur by construction.
    carry_num: u64,
    width_num: u64,
}

impl WidthNormalizer {
    /// Creates a normalizer against width `w` (use
    /// [`mstacks_model::CoreConfig::accounting_width`]).
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero.
    pub fn new(w: u32) -> Self {
        assert!(w > 0, "accounting width must be non-zero");
        WidthNormalizer {
            width: f64::from(w),
            carry_num: 0,
            width_num: u64::from(w),
        }
    }

    /// The fraction of this cycle considered useful, in [0, 1].
    ///
    /// The carry is an exact integer count of 1/width slots, so no
    /// rounding can drift it negative — the clamps of the f64-carry
    /// implementation (PR 2) are now `debug_assert`s. For power-of-two
    /// widths every returned fraction is a dyadic rational and the f64
    /// conversion is exact, bit-identical to the historical float path.
    pub fn fraction(&mut self, n: u32) -> f64 {
        let total = u64::from(n) + self.carry_num;
        let f = if total > self.width_num {
            self.carry_num = total - self.width_num;
            1.0
        } else {
            self.carry_num = 0;
            total as f64 / self.width
        };
        debug_assert!((0.0..=1.0).contains(&f), "fraction {f} out of [0,1]");
        f
    }

    /// Carry not yet consumed, guaranteed `>= 0` (exact by construction).
    ///
    /// # Folding contract
    ///
    /// At finalize time the session folds this residual into the stage's
    /// base component (`ComponentCounter::finish`) so the stack sums
    /// *exactly* to the elapsed cycle count: work clamped out of earlier
    /// cycles is not lost, it is re-attributed as base work at the end of
    /// the run. Callers must therefore read `residual()` exactly once,
    /// after the last `fraction()` call.
    pub fn residual(&self) -> f64 {
        self.carry_num as f64 / self.width
    }

    /// Pending carry in exact 1/width units — zero iff all accepted work
    /// has been paid out as fractions.
    pub fn carry_slots(&self) -> u64 {
        self.carry_num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fraction() {
        let mut n = WidthNormalizer::new(4);
        assert_eq!(n.fraction(1), 0.25);
        assert_eq!(n.fraction(4), 1.0);
        assert_eq!(n.residual(), 0.0);
    }

    #[test]
    fn carry_accumulates_and_drains() {
        let mut n = WidthNormalizer::new(2);
        // A 6-wide burst against W=2: 3.0 → clamp to 1, carry 2.0 total.
        assert_eq!(n.fraction(6), 1.0);
        assert_eq!(n.residual(), 2.0);
        assert_eq!(n.fraction(0), 1.0);
        assert_eq!(n.fraction(0), 1.0);
        assert_eq!(n.fraction(0), 0.0);
        assert_eq!(n.carry_slots(), 0);
    }

    #[test]
    fn total_base_equals_uops_over_w() {
        // Whatever the per-cycle pattern, Σf = Σn / W when carry drains.
        let mut n = WidthNormalizer::new(4);
        let pattern = [4u32, 7, 0, 2, 0, 0, 5, 0, 0, 0, 0];
        let total_n: u32 = pattern.iter().sum();
        let total_f: f64 = pattern.iter().map(|&x| n.fraction(x)).sum();
        assert!((total_f + n.residual() - f64::from(total_n) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = WidthNormalizer::new(0);
    }

    #[test]
    fn integer_carry_matches_float_path_bitwise_for_pow2_widths() {
        // The historical implementation kept the carry as an f64. For
        // power-of-two widths every partial value is a dyadic rational, so
        // that float arithmetic was exact and the integer-numerator carry
        // must reproduce it bit for bit (this is what keeps the engine
        // goldens pinned across the rewrite).
        let mut rng = mstacks_model::rng::SmallRng::seed_from_u64(0xca44_c0de);
        for width in [1u32, 2, 4, 8] {
            let mut n = WidthNormalizer::new(width);
            let mut float_carry = 0.0f64;
            for _ in 0..50_000 {
                let x = if rng.gen_bool(0.4) {
                    rng.gen_range(0..=3 * width)
                } else {
                    0
                };
                let raw = f64::from(x) / f64::from(width) + float_carry;
                let expect = if raw > 1.0 {
                    float_carry = raw - 1.0;
                    1.0
                } else {
                    float_carry = 0.0;
                    raw
                };
                let got = n.fraction(x);
                assert_eq!(
                    got.to_bits(),
                    expect.to_bits(),
                    "width {width}: {got} != {expect}"
                );
                assert_eq!(n.residual().to_bits(), float_carry.to_bits());
            }
        }
    }

    #[test]
    fn random_streams_conserve_exactly() {
        // Σf + residual == Σn / W for arbitrary burst patterns. With the
        // integer carry the *residual itself* is exact; the summed
        // fractions still round (non-power-of-two widths), so the
        // conservation check keeps a tolerance — but the carry can never
        // go negative, so the old clamp assertions are now structural.
        let mut rng = mstacks_model::rng::SmallRng::seed_from_u64(0x05ee_d01d);
        for width in [1u32, 2, 4, 6, 8] {
            let mut n = WidthNormalizer::new(width);
            let mut total_n = 0u64;
            let mut total_f = 0.0f64;
            for _ in 0..100_000 {
                // Bursty pattern: mostly idle, occasionally far over width.
                let x = if rng.gen_bool(0.3) {
                    rng.gen_range(0..=3 * width)
                } else {
                    0
                };
                let f = n.fraction(x);
                assert!((0.0..=1.0).contains(&f), "fraction {f} out of [0,1]");
                total_n += u64::from(x);
                total_f += f;
            }
            let expect = total_n as f64 / f64::from(width);
            let got = total_f + n.residual();
            assert!(
                (got - expect).abs() < 1e-6 * expect.max(1.0),
                "width {width}: accounted {got} vs issued {expect}"
            );
        }
    }
}
