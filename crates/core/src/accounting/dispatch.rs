//! Dispatch-stage CPI accounting (paper Table II, dispatch column).
//!
//! Per cycle, with `n` correct-path micro-ops dispatched against the
//! minimum width `W`:
//!
//! ```text
//! f = n / W;  base += f
//! if f < 1:
//!     if FE empty:            Icache / bpred / microcode per frontend state
//!     elif ROB or RS full:    blame the ROB head (Dcache / ALU_lat / depend)
//! ```
//!
//! The dispatch stack starts charging a frontend miss as soon as the
//! frontend stalls, and a backend miss only once the ROB/RS fill up —
//! which is why it bounds frontend penalties from above and backend
//! penalties from below (paper §III-A).

use crate::accounting::counter::ComponentCounter;
use crate::accounting::width::WidthNormalizer;
use crate::accounting::{blame_component, blame_level, fe_component, BadSpecMode};
use crate::component::{Component, Stage};
use crate::stack::CpiStack;
use mstacks_model::MicroOp;
use mstacks_pipeline::{DispatchView, StageObserver};

/// Accumulates the dispatch-stage CPI stack.
///
/// # Example
///
/// Attach to a pipeline run as a [`StageObserver`] (usually via
/// [`crate::Simulation`], which wires all accountants at once):
///
/// ```
/// use mstacks_core::{BadSpecMode, DispatchAccountant};
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
/// use mstacks_pipeline::Core;
///
/// let cfg = CoreConfig::broadwell();
/// let mut acct = DispatchAccountant::new(cfg.accounting_width(), BadSpecMode::GroundTruth);
/// let trace = (0..400u64).map(|i| {
///     MicroOp::new(0x1000 + (i % 8) * 4, UopKind::IntAlu(AluClass::Add))
///         .with_dst(ArchReg::new((i % 4) as u16))
/// });
/// let mut core = Core::new(cfg, IdealFlags::none(), trace);
/// let result = core.run(&mut acct).expect("runs");
/// let stack = acct.finish(result.committed_uops, None);
/// assert!((stack.total_cpi() - result.cpi()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DispatchAccountant {
    counter: ComponentCounter,
    norm: WidthNormalizer,
}

impl DispatchAccountant {
    /// Creates an accountant against accounting width `w`
    /// ([`mstacks_model::CoreConfig::accounting_width`]).
    pub fn new(w: u32, mode: BadSpecMode) -> Self {
        DispatchAccountant {
            counter: ComponentCounter::new(mode),
            norm: WidthNormalizer::new(w),
        }
    }

    /// Finalizes into a [`CpiStack`]. `uops` is the committed correct-path
    /// micro-op count; `commit_base` is the commit stack's base cycle count
    /// (required by [`BadSpecMode::SimpleRetireSlots`], ignored otherwise).
    pub fn finish(self, uops: u64, commit_base: Option<f64>) -> CpiStack {
        let cycles = self.counter.cycles();
        let residual = self.norm.residual();
        let levels = self.counter.mem_levels();
        let counts = self.counter.finish(residual, commit_base);
        CpiStack::from_counts_with_levels(Stage::Dispatch, counts, levels, cycles, uops)
    }

    /// Running conservation check for the audit subsystem: accumulated
    /// components (open speculative windows included) must equal elapsed
    /// cycles; the normalizer residual is reported alongside.
    pub fn conservation(&self) -> crate::audit::ConservationCheck {
        crate::audit::ConservationCheck {
            stage: "dispatch",
            cycles: self.counter.cycles(),
            accounted: self.counter.audited_counts().iter().sum(),
            residual: self.norm.residual(),
        }
    }

    pub(crate) fn audited_counts(&self) -> [f64; crate::component::COMPONENTS.len()] {
        self.counter.audited_counts()
    }

    pub(crate) fn residual(&self) -> f64 {
        self.norm.residual()
    }

    pub(crate) fn skew(&mut self, c: Component, x: f64) {
        self.counter.skew(c, x);
    }
}

impl StageObserver for DispatchAccountant {
    fn on_dispatch(&mut self, _cycle: u64, v: &DispatchView) {
        self.counter.begin_cycle();
        let n = match self.counter.mode() {
            BadSpecMode::GroundTruth => v.n_correct,
            _ => v.n_total,
        };
        let f = self.norm.fraction(n);
        self.counter.add(Component::Base, f);
        if f >= 1.0 {
            return;
        }
        let rem = 1.0 - f;
        if v.smt_blocked {
            self.counter.add(Component::Smt, rem);
            return;
        }
        if v.backend_blocked {
            match v.head_blame {
                Some(b) => match blame_level(b) {
                    Some(level) => self.counter.add_dcache(level, rem),
                    None => self.counter.add(blame_component(b), rem),
                },
                None => self.counter.add(Component::Other, rem),
            }
            return;
        }
        let comp = if let Some(s) = v.fe_stall {
            fe_component(s)
        } else if self.counter.mode() == BadSpecMode::GroundTruth && v.n_total > v.n_correct {
            // Slots eaten by wrong-path micro-ops.
            Component::Bpred
        } else {
            Component::Other
        };
        self.counter.add(comp, rem);
    }

    fn on_dispatch_uop(&mut self, _cycle: u64, uop: &MicroOp) {
        if uop.kind.is_branch() {
            self.counter.on_branch_dispatch();
        }
    }

    fn on_commit_uop(&mut self, _cycle: u64, uop: &MicroOp) {
        if uop.kind.is_branch() {
            self.counter.on_branch_commit();
        }
    }

    // Batched spans: the per-micro-op hooks above only bump branch
    // counters (no interleaved float accumulation), so walking the span
    // is the identical operation sequence — bit-identical by construction.
    fn on_dispatch_uops(&mut self, _cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            if uop.kind.is_branch() {
                self.counter.on_branch_dispatch();
            }
        }
    }

    fn on_commit_uops(&mut self, _cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            if uop.kind.is_branch() {
                self.counter.on_branch_commit();
            }
        }
    }

    fn on_squash(&mut self, _cycle: u64, _n: u64, branches: u64) {
        self.counter.on_squash(branches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::FrontendStall;
    use mstacks_pipeline::Blame;

    fn view() -> DispatchView {
        DispatchView {
            n_total: 0,
            n_correct: 0,
            backend_blocked: false,
            smt_blocked: false,
            head_blame: None,
            fe_stall: None,
        }
    }

    fn finish(acct: DispatchAccountant, uops: u64) -> CpiStack {
        acct.finish(uops, None)
    }

    #[test]
    fn full_width_is_all_base() {
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        for _ in 0..10 {
            a.on_dispatch(
                0,
                &DispatchView {
                    n_total: 4,
                    n_correct: 4,
                    ..view()
                },
            );
        }
        let s = finish(a, 40);
        assert!((s.cycles_of(Component::Base) - 10.0).abs() < 1e-12);
        assert!((s.total_cpi() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn frontend_stall_splits_by_cause() {
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_dispatch(
            0,
            &DispatchView {
                fe_stall: Some(FrontendStall::Icache),
                ..view()
            },
        );
        a.on_dispatch(
            1,
            &DispatchView {
                fe_stall: Some(FrontendStall::Bpred),
                ..view()
            },
        );
        a.on_dispatch(
            2,
            &DispatchView {
                fe_stall: Some(FrontendStall::Microcode),
                ..view()
            },
        );
        let s = finish(a, 1);
        assert_eq!(s.cycles_of(Component::Icache), 1.0);
        assert_eq!(s.cycles_of(Component::Bpred), 1.0);
        assert_eq!(s.cycles_of(Component::Microcode), 1.0);
    }

    #[test]
    fn backend_block_blames_rob_head() {
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_dispatch(
            0,
            &DispatchView {
                n_total: 1,
                n_correct: 1,
                backend_blocked: true,
                smt_blocked: false,
                head_blame: Some(Blame::Dcache(mstacks_mem::HitLevel::Mem)),
                fe_stall: None,
            },
        );
        let s = finish(a, 1);
        assert!((s.cycles_of(Component::Base) - 0.25).abs() < 1e-12);
        assert!((s.cycles_of(Component::Dcache) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn backend_priority_over_frontend() {
        // When dispatch is structurally blocked, the head is blamed even if
        // the frontend also happens to be stalled.
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_dispatch(
            0,
            &DispatchView {
                backend_blocked: true,
                head_blame: Some(Blame::LongLat),
                fe_stall: Some(FrontendStall::Icache),
                ..view()
            },
        );
        let s = finish(a, 1);
        assert_eq!(s.cycles_of(Component::AluLat), 1.0);
        assert_eq!(s.cycles_of(Component::Icache), 0.0);
    }

    #[test]
    fn wrong_path_slots_blamed_on_bpred_in_ground_truth() {
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_dispatch(
            0,
            &DispatchView {
                n_total: 4,
                n_correct: 1,
                ..view()
            },
        );
        let s = finish(a, 1);
        assert!((s.cycles_of(Component::Base) - 0.25).abs() < 1e-12);
        assert!((s.cycles_of(Component::Bpred) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn simple_mode_counts_all_slots_then_corrects() {
        let mut a = DispatchAccountant::new(4, BadSpecMode::SimpleRetireSlots);
        // 4 slots used, only 1 correct-path.
        a.on_dispatch(
            0,
            &DispatchView {
                n_total: 4,
                n_correct: 1,
                ..view()
            },
        );
        // Without correction the base would be 1.0; commit saw 0.25.
        let s = a.finish(1, Some(0.25));
        assert!((s.cycles_of(Component::Base) - 0.25).abs() < 1e-12);
        assert!((s.cycles_of(Component::Bpred) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stack_sums_to_cycles() {
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        let views = [
            DispatchView {
                n_total: 4,
                n_correct: 4,
                ..view()
            },
            DispatchView {
                n_total: 2,
                n_correct: 2,
                fe_stall: Some(FrontendStall::Icache),
                ..view()
            },
            DispatchView {
                backend_blocked: true,
                head_blame: Some(Blame::Depend),
                ..view()
            },
        ];
        for (i, v) in views.iter().enumerate() {
            a.on_dispatch(i as u64, v);
        }
        let s = finish(a, 10);
        assert!((s.total_cycles() - 3.0).abs() < 1e-12);
    }
}
