//! Issue-stage CPI accounting (paper Table II, issue column).
//!
//! ```text
//! f = n / W;  base += f
//! if f < 1:
//!     if RS empty:    Icache / bpred / microcode per frontend state
//!     else:
//!         i = prod(first non-ready instr)
//!         Dcache / ALU_lat / depend per i
//! ```
//!
//! The issue stage is the only one with dependence knowledge: instead of
//! blaming the ROB head, it blames the *producer* the oldest non-ready
//! instruction is waiting for. It is also the only stage where structural
//! stalls are visible — unavailable ports and memory-address conflicts —
//! which land in the `Other` and `MemConflict` components (paper §V-A).

use crate::accounting::counter::ComponentCounter;
use crate::accounting::width::WidthNormalizer;
use crate::accounting::{blame_component, blame_level, fe_component, BadSpecMode};
use crate::component::{Component, Stage};
use crate::stack::CpiStack;
use mstacks_model::MicroOp;
use mstacks_pipeline::{IssueView, StageObserver, StructuralStall};

/// Accumulates the issue-stage CPI stack.
#[derive(Debug, Clone)]
pub struct IssueAccountant {
    counter: ComponentCounter,
    norm: WidthNormalizer,
}

impl IssueAccountant {
    /// Creates an accountant against accounting width `w`.
    pub fn new(w: u32, mode: BadSpecMode) -> Self {
        IssueAccountant {
            counter: ComponentCounter::new(mode),
            norm: WidthNormalizer::new(w),
        }
    }

    /// Finalizes into a [`CpiStack`] (see
    /// [`crate::DispatchAccountant::finish`] for the `commit_base`
    /// parameter).
    pub fn finish(self, uops: u64, commit_base: Option<f64>) -> CpiStack {
        let cycles = self.counter.cycles();
        let residual = self.norm.residual();
        let levels = self.counter.mem_levels();
        let counts = self.counter.finish(residual, commit_base);
        CpiStack::from_counts_with_levels(Stage::Issue, counts, levels, cycles, uops)
    }

    /// Running conservation check for the audit subsystem: accumulated
    /// components (open speculative windows included) must equal elapsed
    /// cycles; the normalizer residual is reported alongside.
    pub fn conservation(&self) -> crate::audit::ConservationCheck {
        crate::audit::ConservationCheck {
            stage: "issue",
            cycles: self.counter.cycles(),
            accounted: self.counter.audited_counts().iter().sum(),
            residual: self.norm.residual(),
        }
    }

    pub(crate) fn audited_counts(&self) -> [f64; crate::component::COMPONENTS.len()] {
        self.counter.audited_counts()
    }

    pub(crate) fn residual(&self) -> f64 {
        self.norm.residual()
    }

    pub(crate) fn skew(&mut self, c: Component, x: f64) {
        self.counter.skew(c, x);
    }
}

impl StageObserver for IssueAccountant {
    fn on_issue(&mut self, _cycle: u64, v: &IssueView<'_>) {
        self.counter.begin_cycle();
        let n = match self.counter.mode() {
            BadSpecMode::GroundTruth => v.n_correct,
            _ => v.n_total,
        };
        let f = self.norm.fraction(n);
        self.counter.add(Component::Base, f);
        if f >= 1.0 {
            return;
        }
        let rem = 1.0 - f;
        if v.smt_blocked {
            self.counter.add(Component::Smt, rem);
            return;
        }
        let wrong_path_slots =
            self.counter.mode() == BadSpecMode::GroundTruth && v.n_total > v.n_correct;
        if !v.rs_empty && !wrong_path_slots {
            if let Some(b) = v.blocking_blame {
                match blame_level(b) {
                    Some(level) => self.counter.add_dcache(level, rem),
                    None => self.counter.add(blame_component(b), rem),
                }
                return;
            }
        }
        let comp = if v.rs_empty {
            match v.fe_stall {
                Some(s) => fe_component(s),
                None => Component::Other,
            }
        } else if self.counter.mode() == BadSpecMode::GroundTruth && v.n_total > v.n_correct {
            // Issue slots eaten by wrong-path micro-ops.
            Component::Bpred
        } else if let Some(st) = v.structural {
            match st {
                StructuralStall::MemDisambiguation => Component::MemConflict,
                StructuralStall::Ports => Component::Other,
            }
        } else {
            Component::Other
        };
        self.counter.add(comp, rem);
    }

    fn on_dispatch_uop(&mut self, _cycle: u64, uop: &MicroOp) {
        if uop.kind.is_branch() {
            self.counter.on_branch_dispatch();
        }
    }

    fn on_commit_uop(&mut self, _cycle: u64, uop: &MicroOp) {
        if uop.kind.is_branch() {
            self.counter.on_branch_commit();
        }
    }

    // Batched spans: the per-micro-op hooks above only bump branch
    // counters (no interleaved float accumulation), so walking the span
    // is the identical operation sequence — bit-identical by construction.
    fn on_dispatch_uops(&mut self, _cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            if uop.kind.is_branch() {
                self.counter.on_branch_dispatch();
            }
        }
    }

    fn on_commit_uops(&mut self, _cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            if uop.kind.is_branch() {
                self.counter.on_branch_commit();
            }
        }
    }

    fn on_squash(&mut self, _cycle: u64, _n: u64, branches: u64) {
        self.counter.on_squash(branches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::FrontendStall;
    use mstacks_pipeline::Blame;

    fn view() -> IssueView<'static> {
        IssueView {
            n_total: 0,
            n_correct: 0,
            rs_empty: false,
            fe_stall: None,
            blocking_blame: None,
            structural: None,
            smt_blocked: false,
            issued: &[],
            vfp_in_rs: false,
            vfp_blame: None,
            vu_used_by_non_vfp: false,
        }
    }

    #[test]
    fn rs_empty_blames_frontend() {
        let mut a = IssueAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_issue(
            0,
            &IssueView {
                rs_empty: true,
                fe_stall: Some(FrontendStall::Bpred),
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert_eq!(s.cycles_of(Component::Bpred), 1.0);
    }

    #[test]
    fn producer_blame_used_when_waiting() {
        let mut a = IssueAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_issue(
            0,
            &IssueView {
                n_total: 1,
                n_correct: 1,
                blocking_blame: Some(Blame::Dcache(mstacks_mem::HitLevel::L2)),
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert!((s.cycles_of(Component::Dcache) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn structural_stalls_split_memconflict_and_other() {
        let mut a = IssueAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_issue(
            0,
            &IssueView {
                structural: Some(StructuralStall::MemDisambiguation),
                ..view()
            },
        );
        a.on_issue(
            1,
            &IssueView {
                structural: Some(StructuralStall::Ports),
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert_eq!(s.cycles_of(Component::MemConflict), 1.0);
        assert_eq!(s.cycles_of(Component::Other), 1.0);
    }

    #[test]
    fn wide_issue_carries_over() {
        // W = 4 but the stage issued 6: the extra 0.5 pays for a later
        // empty cycle (paper §III-A width normalization).
        let mut a = IssueAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_issue(
            0,
            &IssueView {
                n_total: 6,
                n_correct: 6,
                ..view()
            },
        );
        a.on_issue(
            1,
            &IssueView {
                rs_empty: true,
                fe_stall: Some(FrontendStall::Icache),
                ..view()
            },
        );
        let s = a.finish(6, None);
        assert!((s.cycles_of(Component::Base) - 1.5).abs() < 1e-12);
        assert!((s.cycles_of(Component::Icache) - 0.5).abs() < 1e-12);
        assert!((s.total_cycles() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_path_issue_slots_are_bpred() {
        let mut a = IssueAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_issue(
            0,
            &IssueView {
                n_total: 3,
                n_correct: 0,
                blocking_blame: Some(Blame::Depend),
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert_eq!(s.cycles_of(Component::Bpred), 1.0);
        assert_eq!(s.cycles_of(Component::Depend), 0.0);
    }
}
