//! FLOPS-stack accounting (paper Table III).
//!
//! Issue-stage accounting restricted to vector floating-point work.
//! Peak FLOPS per cycle is `M = 2·k·v` (k vector FP units, v lanes, ×2 for
//! FMA). Per cycle, with `n` VFP micro-ops issued, each performing
//! `aᵢ·mᵢ` operations (`aᵢ` = 2 for FMA else 1, `mᵢ` = unmasked lanes):
//!
//! ```text
//! f = Σ aᵢ·mᵢ / (2·k·v);  base += f
//! if f < 1:
//!     non_fma += Σ (2−aᵢ)·mᵢ / (2·k·v)
//!     mask    += Σ (v−mᵢ) / (k·v)
//!     if n < k:
//!         if no VFP insts waiting in RS:      frontend += (k−n)/k
//!         elif VU used by non-VFP inst:       non_vfp  += (k−n)/k
//!         elif prod(oldest VFP) is a load:    mem      += (k−n)/k
//!         else:                               depend   += (k−n)/k
//! ```
//!
//! These components sum to exactly 1 per cycle, so the finished stack sums
//! to the cycle count and scales into the intuitive GFLOPS representation
//! of paper Eq. (1).

use crate::component::{FlopsComponent, FLOPS_COMPONENTS};
use crate::stack::FlopsStack;
use mstacks_model::UopKind;
use mstacks_pipeline::{FlopsBlame, IssueView, StageObserver};

/// Accumulates a FLOPS stack from issue-stage views.
#[derive(Debug, Clone)]
pub struct FlopsAccountant {
    counts: [f64; FLOPS_COMPONENTS.len()],
    cycles: u64,
    /// Vector FP units (the paper's `k`).
    k: f64,
    /// Vector lanes for 32-bit elements (the paper's `v`).
    v: f64,
    peak: u32,
}

impl FlopsAccountant {
    /// Creates an accountant for a core with `vpu_count` vector FP units
    /// and `lanes` 32-bit vector lanes.
    ///
    /// # Panics
    ///
    /// Panics if `vpu_count` or `lanes` is zero.
    pub fn new(vpu_count: u32, lanes: u32) -> Self {
        assert!(vpu_count > 0, "need at least one vector FP unit");
        assert!(lanes > 0, "need at least one vector lane");
        FlopsAccountant {
            counts: [0.0; FLOPS_COMPONENTS.len()],
            cycles: 0,
            k: f64::from(vpu_count),
            v: f64::from(lanes),
            peak: 2 * vpu_count * lanes,
        }
    }

    #[inline]
    fn add(&mut self, c: FlopsComponent, x: f64) {
        self.counts[c.index()] += x;
    }

    /// Finalizes into a [`FlopsStack`].
    pub fn finish(self) -> FlopsStack {
        FlopsStack::from_counts(self.counts, self.cycles, self.peak)
    }

    /// Running conservation check for the audit subsystem. FLOPS accounting
    /// has no width carry, so the residual is always zero and the
    /// components must sum to the cycle count exactly.
    pub fn conservation(&self) -> crate::audit::ConservationCheck {
        crate::audit::ConservationCheck {
            stage: "flops",
            cycles: self.cycles,
            accounted: self.counts.iter().sum(),
            residual: 0.0,
        }
    }

    pub(crate) fn audited_counts(&self) -> [f64; FLOPS_COMPONENTS.len()] {
        self.counts
    }
}

impl StageObserver for FlopsAccountant {
    fn on_issue(&mut self, _cycle: u64, view: &IssueView<'_>) {
        self.cycles += 1;
        let denom = 2.0 * self.k * self.v;

        let mut n = 0u32;
        let mut ops = 0.0;
        let mut non_fma = 0.0;
        let mut mask = 0.0;
        for iu in view.issued.iter().filter(|iu| !iu.wrong_path) {
            let UopKind::VecFp(vfp) = iu.uop.kind else {
                continue;
            };
            let a = f64::from(vfp.op.ops_per_element());
            let m = f64::from(vfp.active_lanes).min(self.v);
            n += 1;
            ops += a * m;
            non_fma += (2.0 - a) * m;
            mask += (self.v - m) * 2.0;
        }

        let f = (ops / denom).min(1.0);
        self.add(FlopsComponent::Base, f);
        if f >= 1.0 {
            return;
        }
        self.add(FlopsComponent::NonFma, non_fma / denom);
        self.add(FlopsComponent::Mask, mask / denom);
        if f64::from(n) < self.k {
            let rem = (self.k - f64::from(n)) / self.k;
            let comp = match view.vfp_blame {
                // No VFP instruction waiting in the RS → the frontend did
                // not supply enough vector FP work.
                None => FlopsComponent::Frontend,
                Some(_) if view.vu_used_by_non_vfp => FlopsComponent::NonVfp,
                Some(FlopsBlame::Memory) => FlopsComponent::Memory,
                Some(FlopsBlame::Depend) => FlopsComponent::Depend,
            };
            self.add(comp, rem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{ElemType, FpOpKind, MicroOp, VecFpOp};
    use mstacks_pipeline::IssuedInfo;

    fn vfp(op: FpOpKind, lanes: u8) -> IssuedInfo {
        IssuedInfo {
            uop: MicroOp::new(
                0,
                UopKind::VecFp(VecFpOp {
                    op,
                    active_lanes: lanes,
                    elem: ElemType::F32,
                }),
            ),
            wrong_path: false,
            on_vpu: true,
        }
    }

    fn view(issued: &[IssuedInfo]) -> IssueView<'_> {
        IssueView {
            n_total: issued.len() as u32,
            n_correct: issued.len() as u32,
            rs_empty: false,
            fe_stall: None,
            blocking_blame: None,
            structural: None,
            smt_blocked: false,
            issued,
            vfp_in_rs: true,
            vfp_blame: None,
            vu_used_by_non_vfp: false,
        }
    }

    // k = 2 VPUs, v = 16 lanes → peak 64 ops/cycle.
    fn acct() -> FlopsAccountant {
        FlopsAccountant::new(2, 16)
    }

    #[test]
    fn peak_cycle_is_all_base() {
        let mut a = acct();
        let issued = [vfp(FpOpKind::Fma, 16), vfp(FpOpKind::Fma, 16)];
        a.on_issue(0, &view(&issued));
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::Base) - 1.0).abs() < 1e-12);
        assert!((s.total_cycles() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_fma_component() {
        let mut a = acct();
        // Two full-width adds: a=1 → base 0.5, non_fma 0.5.
        let issued = [vfp(FpOpKind::Add, 16), vfp(FpOpKind::Mul, 16)];
        a.on_issue(0, &view(&issued));
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::Base) - 0.5).abs() < 1e-12);
        assert!((s.cycles_of(FlopsComponent::NonFma) - 0.5).abs() < 1e-12);
        assert!((s.total_cycles() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mask_component() {
        let mut a = acct();
        // Two FMAs with half the lanes masked: base 0.5, mask 0.5.
        let issued = [vfp(FpOpKind::Fma, 8), vfp(FpOpKind::Fma, 8)];
        a.on_issue(0, &view(&issued));
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::Base) - 0.5).abs() < 1e-12);
        assert!((s.cycles_of(FlopsComponent::Mask) - 0.5).abs() < 1e-12);
        assert!((s.total_cycles() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_slot_goes_to_frontend_when_no_vfp_waits() {
        let mut a = acct();
        let issued = [vfp(FpOpKind::Fma, 16)];
        let mut v = view(&issued);
        v.vfp_blame = None; // nothing VFP waiting
        a.on_issue(0, &v);
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::Base) - 0.5).abs() < 1e-12);
        assert!((s.cycles_of(FlopsComponent::Frontend) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_slot_goes_to_memory_when_waiting_on_load() {
        let mut a = acct();
        let issued = [vfp(FpOpKind::Fma, 16)];
        let mut v = view(&issued);
        v.vfp_blame = Some(FlopsBlame::Memory);
        a.on_issue(0, &v);
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::Memory) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_slot_goes_to_non_vfp_when_vu_stolen() {
        let mut a = acct();
        let issued = [vfp(FpOpKind::Fma, 16)];
        let mut v = view(&issued);
        v.vfp_blame = Some(FlopsBlame::Depend);
        v.vu_used_by_non_vfp = true;
        a.on_issue(0, &v);
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::NonVfp) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_cycle_sums_to_one() {
        let mut a = acct();
        let mut v = view(&[]);
        v.vfp_blame = Some(FlopsBlame::Depend);
        a.on_issue(0, &v);
        let s = a.finish();
        assert!((s.cycles_of(FlopsComponent::Depend) - 1.0).abs() < 1e-12);
        assert!((s.total_cycles() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_cycle_sums_to_one_mixed() {
        let mut a = acct();
        // Mixed cycle: 1 half-masked add + empty slot waiting on memory.
        let issued = [vfp(FpOpKind::Add, 8)];
        let mut v = view(&issued);
        v.vfp_blame = Some(FlopsBlame::Memory);
        a.on_issue(0, &v);
        let s = a.finish();
        // base = 8/64, non_fma = 8/64, mask = 16/64, slot = 1/2.
        assert!((s.total_cycles() - 1.0).abs() < 1e-12, "{s:?}");
        assert!((s.cycles_of(FlopsComponent::Base) - 0.125).abs() < 1e-12);
        assert!((s.cycles_of(FlopsComponent::NonFma) - 0.125).abs() < 1e-12);
        assert!((s.cycles_of(FlopsComponent::Mask) - 0.25).abs() < 1e-12);
        assert!((s.cycles_of(FlopsComponent::Memory) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq1_round_trip() {
        let mut a = acct();
        for c in 0..100u64 {
            let issued = [vfp(FpOpKind::Fma, 16), vfp(FpOpKind::Fma, 16)];
            let half = [vfp(FpOpKind::Fma, 16)];
            if c % 2 == 0 {
                a.on_issue(c, &view(&issued));
            } else {
                let mut v = view(&half);
                v.vfp_blame = Some(FlopsBlame::Memory);
                a.on_issue(c, &v);
            }
        }
        let s = a.finish();
        // Half the cycles at 64 ops, half at 32 → 48 ops/cycle.
        assert!((s.achieved_flops_per_cycle() - 48.0).abs() < 1e-9);
    }
}
