//! Fetch/decode-stage CPI accounting — the paper's "similar accounting can
//! be done at other stages (e.g., fetch and decode)" extension (§III-A).
//!
//! ```text
//! f = n / W;  base += f
//! if f < 1:
//!     if fetch stalled:        Icache / bpred / microcode per frontend state
//!     elif queue full:         blame the ROB head (back-pressure reached fetch)
//! ```
//!
//! The fetch stack charges frontend events *earliest* of all stages —
//! giving the widest upper bound on frontend penalties — and backend
//! events *latest* (only once back-pressure propagates all the way to the
//! fetch queue), giving the smallest backend components.

use crate::accounting::counter::ComponentCounter;
use crate::accounting::width::WidthNormalizer;
use crate::accounting::{blame_component, blame_level, fe_component, BadSpecMode};
use crate::component::{Component, Stage};
use crate::stack::CpiStack;
use mstacks_model::MicroOp;
use mstacks_pipeline::{FetchView, StageObserver};

/// Accumulates the fetch-stage CPI stack.
#[derive(Debug, Clone)]
pub struct FetchAccountant {
    counter: ComponentCounter,
    norm: WidthNormalizer,
}

impl FetchAccountant {
    /// Creates an accountant against accounting width `w`.
    pub fn new(w: u32, mode: BadSpecMode) -> Self {
        FetchAccountant {
            counter: ComponentCounter::new(mode),
            norm: WidthNormalizer::new(w),
        }
    }

    /// Finalizes into a [`CpiStack`] (see
    /// [`crate::DispatchAccountant::finish`] for the `commit_base`
    /// parameter).
    pub fn finish(self, uops: u64, commit_base: Option<f64>) -> CpiStack {
        let cycles = self.counter.cycles();
        let residual = self.norm.residual();
        let levels = self.counter.mem_levels();
        let counts = self.counter.finish(residual, commit_base);
        CpiStack::from_counts_with_levels(Stage::Fetch, counts, levels, cycles, uops)
    }

    /// Running conservation check for the audit subsystem: accumulated
    /// components (open speculative windows included) must equal elapsed
    /// cycles; the normalizer residual is reported alongside.
    pub fn conservation(&self) -> crate::audit::ConservationCheck {
        crate::audit::ConservationCheck {
            stage: "fetch",
            cycles: self.counter.cycles(),
            accounted: self.counter.audited_counts().iter().sum(),
            residual: self.norm.residual(),
        }
    }

    pub(crate) fn audited_counts(&self) -> [f64; crate::component::COMPONENTS.len()] {
        self.counter.audited_counts()
    }

    pub(crate) fn residual(&self) -> f64 {
        self.norm.residual()
    }

    pub(crate) fn skew(&mut self, c: Component, x: f64) {
        self.counter.skew(c, x);
    }
}

impl StageObserver for FetchAccountant {
    fn on_fetch(&mut self, _cycle: u64, v: &FetchView) {
        self.counter.begin_cycle();
        let n = match self.counter.mode() {
            BadSpecMode::GroundTruth => v.n_correct,
            _ => v.n_total,
        };
        let f = self.norm.fraction(n);
        self.counter.add(Component::Base, f);
        if f >= 1.0 {
            return;
        }
        let rem = 1.0 - f;
        if v.backpressure {
            match v.head_blame {
                Some(b) => match blame_level(b) {
                    Some(level) => self.counter.add_dcache(level, rem),
                    None => self.counter.add(blame_component(b), rem),
                },
                None => self.counter.add(Component::Other, rem),
            }
            return;
        }
        let comp = if let Some(s) = v.fe_stall {
            fe_component(s)
        } else if self.counter.mode() == BadSpecMode::GroundTruth && v.n_total > v.n_correct {
            Component::Bpred
        } else {
            Component::Other
        };
        self.counter.add(comp, rem);
    }

    fn on_dispatch_uop(&mut self, _cycle: u64, uop: &MicroOp) {
        if uop.kind.is_branch() {
            self.counter.on_branch_dispatch();
        }
    }

    fn on_commit_uop(&mut self, _cycle: u64, uop: &MicroOp) {
        if uop.kind.is_branch() {
            self.counter.on_branch_commit();
        }
    }

    // Batched spans: the per-micro-op hooks above only bump branch
    // counters (no interleaved float accumulation), so walking the span
    // is the identical operation sequence — bit-identical by construction.
    fn on_dispatch_uops(&mut self, _cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            if uop.kind.is_branch() {
                self.counter.on_branch_dispatch();
            }
        }
    }

    fn on_commit_uops(&mut self, _cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            if uop.kind.is_branch() {
                self.counter.on_branch_commit();
            }
        }
    }

    fn on_squash(&mut self, _cycle: u64, _n: u64, branches: u64) {
        self.counter.on_squash(branches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::FrontendStall;
    use mstacks_pipeline::Blame;

    fn view() -> FetchView {
        FetchView {
            n_total: 0,
            n_correct: 0,
            fe_stall: None,
            backpressure: false,
            head_blame: None,
        }
    }

    #[test]
    fn icache_stall_charged_at_fetch() {
        let mut a = FetchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_fetch(
            0,
            &FetchView {
                fe_stall: Some(FrontendStall::Icache),
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert_eq!(s.cycles_of(Component::Icache), 1.0);
    }

    #[test]
    fn backpressure_blames_backend() {
        let mut a = FetchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_fetch(
            0,
            &FetchView {
                backpressure: true,
                head_blame: Some(Blame::LongLat),
                fe_stall: Some(FrontendStall::Icache), // back-pressure wins
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert_eq!(s.cycles_of(Component::AluLat), 1.0);
    }

    #[test]
    fn wrong_path_fetch_slots_are_bpred() {
        let mut a = FetchAccountant::new(4, BadSpecMode::GroundTruth);
        a.on_fetch(
            0,
            &FetchView {
                n_total: 4,
                n_correct: 0,
                fe_stall: Some(FrontendStall::Bpred),
                ..view()
            },
        );
        let s = a.finish(1, None);
        assert_eq!(s.cycles_of(Component::Bpred), 1.0);
    }

    #[test]
    fn sums_to_cycles() {
        let mut a = FetchAccountant::new(2, BadSpecMode::GroundTruth);
        a.on_fetch(
            0,
            &FetchView {
                n_total: 2,
                n_correct: 2,
                ..view()
            },
        );
        a.on_fetch(
            1,
            &FetchView {
                n_total: 1,
                n_correct: 1,
                ..view()
            },
        );
        let s = a.finish(3, None);
        assert!((s.total_cycles() - 2.0).abs() < 1e-12);
    }
}
