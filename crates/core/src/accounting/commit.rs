//! Commit-stage CPI accounting (paper Table II, commit column — the IBM
//! POWER style [14]).
//!
//! ```text
//! f = n / W;  base += f
//! if f < 1:
//!     if ROB empty:              Icache / bpred / microcode per frontend state
//!     elif ROB head not done:    blame the head (Dcache / ALU_lat / depend)
//! ```
//!
//! The commit stack only charges a frontend miss once the ROB has fully
//! drained, and charges a backend miss as soon as the unfinished
//! instruction reaches the head — the mirror image of the dispatch stack
//! (paper §III-A).

use crate::accounting::counter::ComponentCounter;
use crate::accounting::width::WidthNormalizer;
use crate::accounting::{blame_component, blame_level, fe_component, BadSpecMode};
use crate::component::{Component, Stage};
use crate::stack::CpiStack;
use mstacks_pipeline::{CommitView, StageObserver};

/// Accumulates the commit-stage CPI stack.
///
/// Wrong-path micro-ops never commit, so commit accounting is identical in
/// every [`BadSpecMode`]; the mode is accepted for interface symmetry and
/// its base count serves as the reference for the simple retire-slot
/// correction.
#[derive(Debug, Clone)]
pub struct CommitAccountant {
    counter: ComponentCounter,
    norm: WidthNormalizer,
}

impl CommitAccountant {
    /// Creates an accountant against accounting width `w`.
    pub fn new(w: u32) -> Self {
        CommitAccountant {
            counter: ComponentCounter::new(BadSpecMode::GroundTruth),
            norm: WidthNormalizer::new(w),
        }
    }

    /// Base cycle count so far (the reference for
    /// [`BadSpecMode::SimpleRetireSlots`]).
    pub fn base_cycles(&self) -> f64 {
        // The commit counter never buffers (ground-truth mode), so the
        // final base equals the running base plus the residual.
        self.clone()
            .finish(1)
            .cycles_of(crate::component::Component::Base)
    }

    /// Finalizes into a [`CpiStack`].
    pub fn finish(self, uops: u64) -> CpiStack {
        let cycles = self.counter.cycles();
        let residual = self.norm.residual();
        let levels = self.counter.mem_levels();
        let counts = self.counter.finish(residual, None);
        CpiStack::from_counts_with_levels(Stage::Commit, counts, levels, cycles, uops)
    }

    /// Running conservation check for the audit subsystem: accumulated
    /// components must equal elapsed cycles; the normalizer residual is
    /// reported alongside.
    pub fn conservation(&self) -> crate::audit::ConservationCheck {
        crate::audit::ConservationCheck {
            stage: "commit",
            cycles: self.counter.cycles(),
            accounted: self.counter.audited_counts().iter().sum(),
            residual: self.norm.residual(),
        }
    }

    pub(crate) fn audited_counts(&self) -> [f64; crate::component::COMPONENTS.len()] {
        self.counter.audited_counts()
    }

    pub(crate) fn residual(&self) -> f64 {
        self.norm.residual()
    }

    pub(crate) fn skew(&mut self, c: Component, x: f64) {
        self.counter.skew(c, x);
    }
}

impl StageObserver for CommitAccountant {
    fn on_commit(&mut self, _cycle: u64, v: &CommitView) {
        self.counter.begin_cycle();
        let f = self.norm.fraction(v.n);
        self.counter.add(Component::Base, f);
        if f >= 1.0 {
            return;
        }
        let rem = 1.0 - f;
        if v.smt_blocked {
            self.counter.add(Component::Smt, rem);
            return;
        }
        if !v.rob_empty {
            if let Some(b) = v.head_blame {
                match blame_level(b) {
                    Some(level) => self.counter.add_dcache(level, rem),
                    None => self.counter.add(blame_component(b), rem),
                }
                return;
            }
        }
        let comp = if v.rob_empty {
            match v.fe_stall {
                Some(s) => fe_component(s),
                None => Component::Other, // warmup / drain
            }
        } else {
            // Head done but width under-used (end of trace burst).
            Component::Other
        };
        self.counter.add(comp, rem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::FrontendStall;
    use mstacks_pipeline::Blame;

    fn view() -> CommitView {
        CommitView {
            n: 0,
            rob_empty: false,
            smt_blocked: false,
            fe_stall: None,
            head_blame: None,
        }
    }

    #[test]
    fn rob_empty_blames_frontend() {
        let mut a = CommitAccountant::new(4);
        a.on_commit(
            0,
            &CommitView {
                rob_empty: true,
                fe_stall: Some(FrontendStall::Icache),
                ..view()
            },
        );
        let s = a.finish(1);
        assert_eq!(s.cycles_of(Component::Icache), 1.0);
    }

    #[test]
    fn unfinished_head_blames_backend() {
        let mut a = CommitAccountant::new(4);
        a.on_commit(
            0,
            &CommitView {
                n: 2,
                head_blame: Some(Blame::Dcache(mstacks_mem::HitLevel::Mem)),
                ..view()
            },
        );
        let s = a.finish(2);
        assert!((s.cycles_of(Component::Base) - 0.5).abs() < 1e-12);
        assert!((s.cycles_of(Component::Dcache) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rob_empty_without_fe_cause_is_other() {
        let mut a = CommitAccountant::new(4);
        a.on_commit(
            0,
            &CommitView {
                rob_empty: true,
                ..view()
            },
        );
        let s = a.finish(1);
        assert_eq!(s.cycles_of(Component::Other), 1.0);
    }

    #[test]
    fn base_cycles_snapshot_matches_finish() {
        let mut a = CommitAccountant::new(4);
        for _ in 0..5 {
            a.on_commit(
                0,
                &CommitView {
                    n: 3,
                    head_blame: Some(Blame::Depend),
                    ..view()
                },
            );
        }
        let snap = a.base_cycles();
        let s = a.finish(15);
        assert!((snap - s.cycles_of(Component::Base)).abs() < 1e-12);
        assert!((snap - 3.75).abs() < 1e-12);
    }

    #[test]
    fn stack_sums_to_cycles() {
        let mut a = CommitAccountant::new(2);
        a.on_commit(0, &CommitView { n: 2, ..view() });
        a.on_commit(
            1,
            &CommitView {
                rob_empty: true,
                fe_stall: Some(FrontendStall::Bpred),
                ..view()
            },
        );
        a.on_commit(
            2,
            &CommitView {
                n: 1,
                head_blame: Some(Blame::LongLat),
                ..view()
            },
        );
        let s = a.finish(3);
        assert!((s.total_cycles() - 3.0).abs() < 1e-12);
    }
}
