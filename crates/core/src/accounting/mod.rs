//! Per-cycle accounting algorithms (paper Tables II and III).
//!
//! Each accountant is a [`mstacks_pipeline::StageObserver`] that watches
//! one pipeline stage and accumulates component cycle counts. They share:
//!
//! * the **width normalizer**: the paper's §III-A rule that `W` is the
//!   *minimum* of all stage widths, with fractions above 1 carried to the
//!   next cycle for wider stages;
//! * the **bad-speculation mode** ([`BadSpecMode`]): how wrong-path
//!   micro-ops are separated from correct-path ones (paper §III-B) —
//!   functional-first ground truth, the simple retire-slot correction, or
//!   speculative counters.

mod badspec;
mod commit;
mod counter;
mod dispatch;
mod fetch;
mod flops;
mod issue;
mod width;

pub use badspec::BadSpecMode;
pub use commit::CommitAccountant;
pub use dispatch::DispatchAccountant;
pub use fetch::FetchAccountant;
pub use flops::FlopsAccountant;
pub use issue::IssueAccountant;
pub use width::WidthNormalizer;

use crate::component::Component;
use mstacks_mem::HitLevel;
use mstacks_model::FrontendStall;
use mstacks_pipeline::Blame;

/// Maps a frontend stall cause to its CPI component.
pub(crate) fn fe_component(s: FrontendStall) -> Component {
    match s {
        FrontendStall::Icache => Component::Icache,
        FrontendStall::Bpred => Component::Bpred,
        FrontendStall::Microcode => Component::Microcode,
    }
}

/// Maps a backend blame to its CPI component
/// (`Dcache miss → Dcache; latency > 1 → ALU_lat; else → depend`).
pub(crate) fn blame_component(b: Blame) -> Component {
    match b {
        Blame::Dcache(_) => Component::Dcache,
        Blame::Interference => Component::Interference,
        Blame::LongLat => Component::AluLat,
        Blame::Depend => Component::Depend,
    }
}

/// Memory level a Dcache blame points at (the per-level refinement the
/// paper suggests in §III-A).
pub(crate) fn blame_level(b: Blame) -> Option<HitLevel> {
    match b {
        Blame::Dcache(l) => Some(l),
        _ => None,
    }
}
