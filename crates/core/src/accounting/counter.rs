//! Shared component-counter state for the three CPI accountants.

use crate::accounting::BadSpecMode;
use crate::component::{Component, COMPONENTS};
use mstacks_mem::HitLevel;
use std::collections::VecDeque;

/// Component counters with bad-speculation handling.
///
/// In [`BadSpecMode::SpeculativeCounters`] increments accrue to
/// per-basic-block *windows* (one opens whenever a branch dispatches — the
/// CPI counter architecture of Eyerman et al. [8] at basic-block
/// granularity, paper §III-B). When a branch commits, the oldest window is
/// proven correct-path and merges into the global counters; when a squash
/// flushes `k` branches, the `k` youngest windows were pure wrong path and
/// re-blame to the branch component, as does the (reset) window of the
/// mispredicted branch itself, whose cycles were spent fetching the wrong
/// path. Other modes write the global counters directly.
#[derive(Debug, Clone)]
pub(crate) struct ComponentCounter {
    /// The folded books: authoritative totals up to the last chunk fold.
    counts: [f64; COMPONENTS.len()],
    /// Per-chunk scratch tally. Direct (non-windowed) increments land
    /// here and fold into `counts` once per [`Self::CHUNK_CYCLES`] —
    /// every read path folds on demand, so the split is invisible to the
    /// auditor's per-cycle conservation checks. All increments are
    /// multiples of 1/W; for power-of-two accounting widths each partial
    /// sum is exact, so chunk-subtotal-then-fold reorders the additions
    /// without changing a single bit of the totals.
    scratch: [f64; COMPONENTS.len()],
    /// Open speculative windows, oldest first (SpeculativeCounters only).
    windows: VecDeque<[f64; COMPONENTS.len()]>,
    /// Per-memory-level split of the Dcache component (L2 / L3 / DRAM) —
    /// kept outside the speculative buffers (a wrong-path re-attribution
    /// moves whole cycles to Bpred; the level split only describes the
    /// surviving Dcache cycles).
    mem_levels: [f64; 3],
    scratch_mem: [f64; 3],
    mode: BadSpecMode,
    cycles: u64,
}

impl ComponentCounter {
    /// Cycles per scratch chunk before the tally folds into the books.
    const CHUNK_CYCLES: u64 = 256;

    pub(crate) fn new(mode: BadSpecMode) -> Self {
        ComponentCounter {
            counts: [0.0; COMPONENTS.len()],
            scratch: [0.0; COMPONENTS.len()],
            windows: VecDeque::new(),
            mem_levels: [0.0; 3],
            scratch_mem: [0.0; 3],
            mode,
            cycles: 0,
        }
    }

    pub(crate) fn mode(&self) -> BadSpecMode {
        self.mode
    }

    pub(crate) fn begin_cycle(&mut self) {
        self.cycles += 1;
        if self.cycles.is_multiple_of(Self::CHUNK_CYCLES) {
            self.fold_scratch();
        }
    }

    pub(crate) fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Folds the scratch tally of the current chunk into the books.
    fn fold_scratch(&mut self) {
        for (c, s) in self.counts.iter_mut().zip(self.scratch.iter_mut()) {
            *c += *s;
            *s = 0.0;
        }
        for (m, s) in self.mem_levels.iter_mut().zip(self.scratch_mem.iter_mut()) {
            *m += *s;
            *s = 0.0;
        }
    }

    pub(crate) fn add(&mut self, c: Component, x: f64) {
        if self.mode == BadSpecMode::SpeculativeCounters && Self::is_windowed(c) {
            if let Some(w) = self.windows.back_mut() {
                w[c.index()] += x;
                return;
            }
        }
        self.scratch[c.index()] += x;
    }

    /// Which components accrue to the speculative window of the youngest
    /// in-flight branch. Backend stalls blame the ROB head or a producer —
    /// both are *older* than any in-flight branch and therefore always
    /// correct-path, so they write the global counters directly (this
    /// mirrors Eyerman et al.'s per-instruction counters, where a stall is
    /// attached to the instruction that caused it). Frontend-side slots and
    /// stalls belong to the instructions being fetched — exactly what a
    /// squash proves wrong-path.
    fn is_windowed(c: Component) -> bool {
        matches!(
            c,
            Component::Base
                | Component::Icache
                | Component::Bpred
                | Component::Microcode
                | Component::Smt
                | Component::Other
        )
    }

    /// Adds to the Dcache component and records which memory level served
    /// the blamed access.
    pub(crate) fn add_dcache(&mut self, level: HitLevel, x: f64) {
        self.add(Component::Dcache, x);
        let i = match level {
            HitLevel::L1 | HitLevel::L2 => 0,
            HitLevel::L3 => 1,
            HitLevel::Mem => 2,
        };
        self.scratch_mem[i] += x;
    }

    /// A branch dispatched: a new speculative window opens.
    pub(crate) fn on_branch_dispatch(&mut self) {
        if self.mode == BadSpecMode::SpeculativeCounters {
            self.windows.push_back([0.0; COMPONENTS.len()]);
        }
    }

    /// A branch committed: the *oldest* window is proven correct-path.
    pub(crate) fn on_branch_commit(&mut self) {
        if self.mode == BadSpecMode::SpeculativeCounters {
            if let Some(w) = self.windows.pop_front() {
                for (c, v) in self.counts.iter_mut().zip(w.iter()) {
                    *c += *v;
                }
            }
        }
    }

    /// A squash flushed `branches` wrong-path branches: exactly their
    /// windows re-blame to the branch component ("the speculative counters
    /// of all wrong-path instructions are added to the global branch miss
    /// counter", §III-B). The mispredicted branch itself is correct-path;
    /// its window flushes normally when it commits.
    pub(crate) fn on_squash(&mut self, branches: u64) {
        if self.mode != BadSpecMode::SpeculativeCounters {
            return;
        }
        let mut reblamed = 0.0;
        for _ in 0..branches {
            if let Some(w) = self.windows.pop_back() {
                reblamed += w.iter().sum::<f64>();
            }
        }
        self.counts[Component::Bpred.index()] += reblamed;
    }

    /// Per-level Dcache breakdown accumulated so far (L2, L3, DRAM),
    /// including the open scratch chunk.
    pub(crate) fn mem_levels(&self) -> [f64; 3] {
        let mut out = self.mem_levels;
        for (o, s) in out.iter_mut().zip(self.scratch_mem.iter()) {
            *o += *s;
        }
        out
    }

    /// The counters as the auditor sees them mid-run: folded books plus
    /// the open scratch chunk plus every still-open speculative window (a
    /// window is cycles already spent — conservation must hold whichever
    /// component they end up in). Reading through the scratch keeps the
    /// per-cycle conservation invariant exact even though the books only
    /// fold once per chunk.
    pub(crate) fn audited_counts(&self) -> [f64; COMPONENTS.len()] {
        let mut out = self.counts;
        for (o, s) in out.iter_mut().zip(self.scratch.iter()) {
            *o += *s;
        }
        for w in &self.windows {
            for (o, v) in out.iter_mut().zip(w.iter()) {
                *o += *v;
            }
        }
        out
    }

    /// Fault injection for the audit tests: corrupts one component count
    /// directly (bypassing the speculative windows, as a real accounting
    /// bug would).
    pub(crate) fn skew(&mut self, c: Component, x: f64) {
        self.counts[c.index()] += x;
    }

    /// Finalizes the counters: flushes the speculative buffer, folds the
    /// width-normalizer residual into the base component, and applies the
    /// simple retire-slot correction when requested
    /// (`dispatch/issue base − commit base → Bpred`).
    pub(crate) fn finish(
        mut self,
        residual: f64,
        simple_commit_base: Option<f64>,
    ) -> [f64; COMPONENTS.len()] {
        self.fold_scratch();
        // Unresolved windows at trace end flush as measured.
        while let Some(w) = self.windows.pop_front() {
            for (c, v) in self.counts.iter_mut().zip(w.iter()) {
                *c += *v;
            }
        }
        self.counts[Component::Base.index()] += residual;
        if self.mode == BadSpecMode::SimpleRetireSlots {
            if let Some(commit_base) = simple_commit_base {
                let extra = self.counts[Component::Base.index()] - commit_base;
                if extra > 0.0 {
                    self.counts[Component::Base.index()] = commit_base;
                    self.counts[Component::Bpred.index()] += extra;
                }
            }
        }
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_writes_directly() {
        let mut c = ComponentCounter::new(BadSpecMode::GroundTruth);
        c.add(Component::Dcache, 0.5);
        let out = c.finish(0.0, None);
        assert_eq!(out[Component::Dcache.index()], 0.5);
    }

    #[test]
    fn speculative_window_merges_on_commit() {
        let mut c = ComponentCounter::new(BadSpecMode::SpeculativeCounters);
        c.on_branch_dispatch();
        c.add(Component::Base, 0.75);
        c.add(Component::Depend, 0.25);
        c.on_branch_commit();
        let out = c.finish(0.0, None);
        assert_eq!(out[Component::Base.index()], 0.75);
        assert_eq!(out[Component::Depend.index()], 0.25);
        assert_eq!(out[Component::Bpred.index()], 0.0);
    }

    #[test]
    fn squash_reblames_only_wrong_path_windows() {
        let mut c = ComponentCounter::new(BadSpecMode::SpeculativeCounters);
        // Correct-path branch B0, then the mispredicted B1, then a
        // wrong-path branch B2.
        c.on_branch_dispatch(); // B0's window
        c.add(Component::Dcache, 0.5); // backend blame → global, not B0
        c.on_branch_dispatch(); // B1's window (the mispredict)
        c.add(Component::Base, 0.3);
        c.on_branch_dispatch(); // B2 (wrong path)
        c.add(Component::Base, 0.2);
        c.add(Component::AluLat, 0.4); // backend blame during wrong path → global
                                       // Squash flushes 1 branch (B2): only ITS window re-blames; B1 is
                                       // correct-path and keeps its window.
        c.on_squash(1);
        // B0 and B1 later commit normally.
        c.on_branch_commit();
        c.on_branch_commit();
        let out = c.finish(0.0, None);
        assert_eq!(out[Component::Dcache.index()], 0.5); // direct
        assert_eq!(out[Component::AluLat.index()], 0.4); // direct
        assert_eq!(out[Component::Bpred.index()], 0.2); // B2's window only
        assert_eq!(out[Component::Base.index()], 0.3); // B1's window
    }

    #[test]
    fn increments_outside_windows_go_direct() {
        let mut c = ComponentCounter::new(BadSpecMode::SpeculativeCounters);
        c.add(Component::Icache, 1.0); // no branch in flight
        let out = c.finish(0.0, None);
        assert_eq!(out[Component::Icache.index()], 1.0);
    }

    #[test]
    fn simple_mode_moves_base_surplus_to_bpred() {
        let mut c = ComponentCounter::new(BadSpecMode::SimpleRetireSlots);
        c.add(Component::Base, 10.0); // inflated by wrong-path slots
        let out = c.finish(0.0, Some(8.0)); // commit saw base 8
        assert_eq!(out[Component::Base.index()], 8.0);
        assert_eq!(out[Component::Bpred.index()], 2.0);
    }

    #[test]
    fn residual_lands_in_base() {
        let mut c = ComponentCounter::new(BadSpecMode::GroundTruth);
        c.add(Component::Base, 1.0);
        let out = c.finish(0.25, None);
        assert_eq!(out[Component::Base.index()], 1.25);
    }

    #[test]
    fn dcache_levels_split() {
        let mut c = ComponentCounter::new(BadSpecMode::GroundTruth);
        c.add_dcache(HitLevel::L2, 0.5);
        c.add_dcache(HitLevel::Mem, 0.25);
        assert_eq!(c.mem_levels(), [0.5, 0.0, 0.25]);
        let out = c.finish(0.0, None);
        assert!((out[Component::Dcache.index()] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn scratch_chunk_is_invisible_to_every_read_path() {
        // Increments sit in the per-chunk scratch until a chunk boundary,
        // but audited_counts / mem_levels / finish must always see them.
        let mut c = ComponentCounter::new(BadSpecMode::GroundTruth);
        c.begin_cycle();
        c.add(Component::Base, 0.25);
        c.add_dcache(HitLevel::Mem, 0.75);
        // Mid-chunk: nothing folded yet, reads still include the scratch.
        assert_eq!(c.audited_counts()[Component::Base.index()], 0.25);
        assert_eq!(c.audited_counts()[Component::Dcache.index()], 0.75);
        assert_eq!(c.mem_levels(), [0.0, 0.0, 0.75]);
        // Cross a chunk boundary: the tally folds into the books and the
        // observable totals do not move.
        for _ in 0..ComponentCounter::CHUNK_CYCLES {
            c.begin_cycle();
        }
        assert_eq!(c.audited_counts()[Component::Base.index()], 0.25);
        assert_eq!(c.mem_levels(), [0.0, 0.0, 0.75]);
        c.add(Component::Base, 0.5); // new chunk's scratch
        assert_eq!(c.audited_counts()[Component::Base.index()], 0.75);
        let out = c.finish(0.0, None);
        assert_eq!(out[Component::Base.index()], 0.75);
        assert_eq!(out[Component::Dcache.index()], 0.75);
    }

    #[test]
    fn chunked_fold_totals_match_unchunked_order() {
        // Same increment stream, one counter folded every chunk (driven by
        // begin_cycle) and one read only at the end: identical totals —
        // all increments are multiples of 1/W with W a power of two, so
        // the reordered additions are exact.
        let mut rng = mstacks_model::rng::SmallRng::seed_from_u64(0xc0ff_ee00);
        let mut chunked = ComponentCounter::new(BadSpecMode::GroundTruth);
        let mut reference = [0.0f64; COMPONENTS.len()];
        let w = 4.0;
        for _ in 0..10_000 {
            chunked.begin_cycle();
            let c = COMPONENTS[rng.gen_range(0..COMPONENTS.len() as u32) as usize];
            let x = f64::from(rng.gen_range(0u32..=4)) / w;
            chunked.add(c, x);
            reference[c.index()] += x;
        }
        let got = chunked.finish(0.0, None);
        for (g, r) in got.iter().zip(reference.iter()) {
            assert_eq!(g.to_bits(), r.to_bits(), "chunked fold changed a bit");
        }
    }

    #[test]
    fn total_is_preserved_by_squash() {
        let mut c = ComponentCounter::new(BadSpecMode::SpeculativeCounters);
        c.on_branch_dispatch();
        c.add(Component::Base, 0.4);
        c.add(Component::Icache, 0.6);
        c.on_branch_dispatch(); // wrong-path branch window
        c.add(Component::Base, 0.5);
        c.on_squash(1);
        c.add(Component::Base, 0.5);
        c.on_branch_commit();
        let out = c.finish(0.0, None);
        let total: f64 = out.iter().sum();
        assert!((total - 2.0).abs() < 1e-12);
    }
}
