//! Wrong-path / correct-path discrimination modes (paper §III-B).
//!
//! The dispatch and issue stages process wrong-path micro-ops; the
//! accounting must not count them as useful work. The paper discusses
//! three schemes, all implemented here:
//!
//! * [`BadSpecMode::GroundTruth`] — the functional-first simulator knows
//!   which micro-ops are wrong-path, so `n` counts correct-path slots only
//!   and wrong-path slots accrue to the branch component directly. This is
//!   the reference scheme.
//! * [`BadSpecMode::SimpleRetireSlots`] — hardware-friendly: treat all
//!   micro-ops as correct-path while counting, then subtract at the end:
//!   the dispatch/issue base surplus over the commit base (which is exact,
//!   since wrong-path micro-ops never commit) moves to the branch
//!   component. This is Yasin's bad-speculation-slots approach [17].
//! * [`BadSpecMode::SpeculativeCounters`] — per-speculation-window
//!   counters: increments accumulate in a speculative buffer that is
//!   merged into the global counters when a branch commits (proving the
//!   window correct-path) and re-attributed to the branch component when a
//!   squash proves it wrong-path. This mirrors the counter architecture of
//!   Eyerman et al. [8] at basic-block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BadSpecMode {
    /// Use the simulator's exact wrong-path knowledge (default).
    #[default]
    GroundTruth,
    /// Count all slots, correct the base component against commit at the
    /// end (hardware-simple scheme).
    SimpleRetireSlots,
    /// Buffer increments speculatively; commit merges, squash re-blames.
    SpeculativeCounters,
}

impl std::fmt::Display for BadSpecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BadSpecMode::GroundTruth => write!(f, "ground-truth"),
            BadSpecMode::SimpleRetireSlots => write!(f, "simple-retire-slots"),
            BadSpecMode::SpeculativeCounters => write!(f, "speculative-counters"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ground_truth() {
        assert_eq!(BadSpecMode::default(), BadSpecMode::GroundTruth);
    }

    #[test]
    fn display_names() {
        assert_eq!(BadSpecMode::GroundTruth.to_string(), "ground-truth");
        assert_eq!(
            BadSpecMode::SimpleRetireSlots.to_string(),
            "simple-retire-slots"
        );
        assert_eq!(
            BadSpecMode::SpeculativeCounters.to_string(),
            "speculative-counters"
        );
    }
}
