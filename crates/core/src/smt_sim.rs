//! Per-thread multi-stage CPI stacks on an SMT core — the paper's §II
//! extension of Eyerman & Eeckhout's per-thread cycle accounting: each
//! hardware thread gets its own dispatch/issue/commit (and fetch, and
//! FLOPS) stacks, with an extra `Smt` component for cycles lost to the
//! co-running thread's occupancy of shared resources.

use crate::accounting::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FetchAccountant, FlopsAccountant,
    IssueAccountant,
};
use crate::multi::MultiStackReport;
use crate::stack::FlopsStack;
use mstacks_model::{CoreConfig, IdealFlags, MicroOp};
use mstacks_pipeline::{PipelineError, PipelineResult, SmtCore, StageObserver};

/// The full accountant set for one hardware thread.
struct ThreadObserver {
    dispatch: DispatchAccountant,
    issue: IssueAccountant,
    commit: CommitAccountant,
    fetch: FetchAccountant,
    flops: FlopsAccountant,
}

impl StageObserver for ThreadObserver {
    fn on_fetch(&mut self, cycle: u64, view: &mstacks_pipeline::FetchView) {
        self.fetch.on_fetch(cycle, view);
    }
    fn on_dispatch(&mut self, cycle: u64, view: &mstacks_pipeline::DispatchView) {
        self.dispatch.on_dispatch(cycle, view);
    }
    fn on_issue(&mut self, cycle: u64, view: &mstacks_pipeline::IssueView<'_>) {
        self.issue.on_issue(cycle, view);
        self.flops.on_issue(cycle, view);
    }
    fn on_commit(&mut self, cycle: u64, view: &mstacks_pipeline::CommitView) {
        self.commit.on_commit(cycle, view);
    }
    fn on_dispatch_uop(&mut self, cycle: u64, uop: &MicroOp) {
        self.dispatch.on_dispatch_uop(cycle, uop);
        self.issue.on_dispatch_uop(cycle, uop);
        self.fetch.on_dispatch_uop(cycle, uop);
    }
    fn on_commit_uop(&mut self, cycle: u64, uop: &MicroOp) {
        self.dispatch.on_commit_uop(cycle, uop);
        self.issue.on_commit_uop(cycle, uop);
        self.fetch.on_commit_uop(cycle, uop);
    }
    fn on_squash(&mut self, cycle: u64, n: u64, branches: u64) {
        self.dispatch.on_squash(cycle, n, branches);
        self.issue.on_squash(cycle, n, branches);
        self.fetch.on_squash(cycle, n, branches);
    }
}

/// One hardware thread's results.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Raw pipeline counters for this thread.
    pub result: PipelineResult,
    /// The thread's multi-stage CPI stacks (with `Smt` components).
    pub multi: MultiStackReport,
    /// The thread's FLOPS stack.
    pub flops: FlopsStack,
}

impl ThreadReport {
    /// This thread's CPI over its active period.
    pub fn cpi(&self) -> f64 {
        self.result.cpi()
    }
}

/// Results of an SMT run: one report per hardware thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtReport {
    /// Per-thread reports, in thread order.
    pub threads: Vec<ThreadReport>,
}

/// Builder-style SMT simulation runner.
///
/// # Example
///
/// ```
/// use mstacks_core::SmtSimulation;
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, MicroOp, UopKind};
///
/// let mk = |base: u64| {
///     (0..2_000u64)
///         .map(move |i| {
///             MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///                 .with_dst(ArchReg::new((i % 8) as u16))
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
/// };
/// let report = SmtSimulation::new(CoreConfig::broadwell())
///     .run(vec![mk(0x1000), mk(0x9000)])
///     .expect("completes");
/// assert_eq!(report.threads.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SmtSimulation {
    cfg: CoreConfig,
    ideal: IdealFlags,
    badspec: BadSpecMode,
}

impl SmtSimulation {
    /// An SMT simulation on core `cfg`.
    pub fn new(cfg: CoreConfig) -> Self {
        SmtSimulation {
            cfg,
            ideal: IdealFlags::none(),
            badspec: BadSpecMode::GroundTruth,
        }
    }

    /// Sets the idealization flags (builder style).
    pub fn with_ideal(mut self, ideal: IdealFlags) -> Self {
        self.ideal = ideal;
        self
    }

    /// Sets the wrong-path discrimination mode (builder style).
    pub fn with_badspec(mut self, mode: BadSpecMode) -> Self {
        self.badspec = mode;
        self
    }

    /// Runs one trace per hardware thread (1–4) and produces per-thread
    /// stacks.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or holds more than 4 entries.
    pub fn run<I: Iterator<Item = MicroOp>>(
        &self,
        traces: Vec<I>,
    ) -> Result<SmtReport, PipelineError> {
        let w = self.cfg.accounting_width();
        let n = traces.len();
        let mut obs: Vec<ThreadObserver> = (0..n)
            .map(|_| ThreadObserver {
                dispatch: DispatchAccountant::new(w, self.badspec),
                issue: IssueAccountant::new(w, self.badspec),
                commit: CommitAccountant::new(w),
                fetch: FetchAccountant::new(w, self.badspec),
                flops: FlopsAccountant::new(
                    self.cfg.vpu_count().max(1),
                    self.cfg.vector_lanes_f32(),
                ),
            })
            .collect();
        let mut core = SmtCore::new(self.cfg.clone(), self.ideal, traces);
        let results = core.run(&mut obs)?;
        let threads = obs
            .into_iter()
            .zip(results)
            .map(|(o, result)| {
                let uops = result.committed_uops;
                let commit = o.commit.finish(uops);
                let base = commit.cycles_of(crate::component::Component::Base);
                ThreadReport {
                    multi: MultiStackReport {
                        dispatch: o.dispatch.finish(uops, Some(base)),
                        issue: o.issue.finish(uops, Some(base)),
                        commit,
                        fetch: Some(o.fetch.finish(uops, Some(base))),
                    },
                    flops: o.flops.finish(),
                    result,
                }
            })
            .collect();
        Ok(SmtReport { threads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use mstacks_model::{AluClass, ArchReg, UopKind};

    fn adds(n: u64, base: u64) -> std::vec::IntoIter<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn per_thread_stacks_sum_to_per_thread_cycles() {
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let report = SmtSimulation::new(CoreConfig::broadwell())
            .with_ideal(ideal)
            .run(vec![adds(4_000, 0x1000), adds(4_000, 0x9000)])
            .expect("completes");
        for (tid, t) in report.threads.iter().enumerate() {
            let cycles = t.result.cycles as f64;
            for s in t.multi.stacks() {
                assert!(
                    (s.total_cycles() - cycles).abs() <= 1.0 + 1e-6,
                    "thread {tid} {} stack {} vs cycles {}",
                    s.stage,
                    s.total_cycles(),
                    cycles
                );
            }
        }
    }

    #[test]
    fn smt_component_appears_under_contention() {
        // Two width-hungry threads on one 4-wide core: each must lose
        // visible cycles to the other.
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let report = SmtSimulation::new(CoreConfig::broadwell())
            .with_ideal(ideal)
            .run(vec![adds(6_000, 0x1000), adds(6_000, 0x9000)])
            .expect("completes");
        for (tid, t) in report.threads.iter().enumerate() {
            let smt = t.multi.dispatch.cpi_of(Component::Smt)
                + t.multi.commit.cpi_of(Component::Smt);
            assert!(
                smt > 0.05,
                "thread {tid} must see SMT interference: {smt}"
            );
        }
    }

    #[test]
    fn single_thread_has_no_smt_component() {
        let report = SmtSimulation::new(CoreConfig::broadwell())
            .run(vec![adds(3_000, 0x1000)])
            .expect("completes");
        let t = &report.threads[0];
        for s in t.multi.stacks() {
            assert!(
                s.cpi_of(Component::Smt) < 1e-9,
                "{}: solo thread cannot have SMT stalls",
                s.stage
            );
        }
    }
}
