//! Multi-stage CPI stacks and FLOPS stacks — the contribution of
//! *"Extending the Performance Analysis Tool Box: Multi-Stage CPI Stacks
//! and FLOPS Stacks"* (Eyerman, Heirman, Du Bois, Hur; ISPASS 2018).
//!
//! A CPI stack splits total cycles-per-instruction into additive components
//! (base, I-cache, branch predictor, D-cache, ALU latency, dependences, …).
//! The paper's central observation is that **there is no single correct CPI
//! stack**: stall penalties hide behind each other, overlap, and couple
//! through shared structures. Instead of one stack, this crate measures
//! *one stack per pipeline stage* — dispatch, issue and commit — using the
//! per-cycle algorithms of the paper's Table II, implemented as
//! [`mstacks_pipeline::StageObserver`]s. The three stacks bound the true
//! effect of removing a bottleneck: the dispatch stack leans optimistic for
//! frontend events, the commit stack for backend events, and reality falls
//! in between (paper §V-A).
//!
//! For HPC analysis the crate also implements **FLOPS stacks** (paper
//! Table III): issue-stage accounting restricted to vector floating-point
//! work, splitting the gap to peak FLOPS into non-FMA, masking, frontend,
//! non-VFP-occupancy, memory and dependence components, with the paper's
//! Eq. (1) converting the base component to achieved FLOPS.
//!
//! # Quick start
//!
//! ```
//! use mstacks_core::Session;
//! use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
//!
//! let trace: Vec<MicroOp> = (0..2_000u64)
//!     .map(|i| {
//!         MicroOp::new(0x1000 + (i % 32) * 4, UopKind::IntAlu(AluClass::Add))
//!             .with_src(ArchReg::new(1))
//!             .with_dst(ArchReg::new(1))
//!     })
//!     .collect();
//! let report = Session::new(CoreConfig::broadwell())
//!     .with_ideal(IdealFlags::none().with_perfect_icache().with_perfect_bpred())
//!     .run(trace.into_iter())
//!     .expect("simulation completes");
//! // A serial dependence chain: CPI is ~1 and the stacks see it.
//! assert!(report.multi.issue.total_cpi() > 0.9);
//! ```

pub mod accounting;
pub mod audit;
pub mod cachekey;
pub mod compare;
pub mod component;
pub mod corun;
pub mod interval;
pub mod jsonfmt;
pub mod multi;
pub mod sampling;
pub mod session;
pub mod stack;

pub use accounting::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FetchAccountant, FlopsAccountant,
    IssueAccountant, WidthNormalizer,
};
pub use audit::{AuditOptions, AuditReport, AuditViolation, ConservationCheck, FaultSpec};
pub use compare::{Band, ComponentCheck, Interval, StackComparison};
pub use component::{Component, FlopsComponent, Stage, COMPONENTS, FLOPS_COMPONENTS};
pub use corun::{CoRun, CoRunReport};
pub use interval::IntervalAccountant;
pub use multi::MultiStackReport;
pub use sampling::{ComponentCi, SamplePlan, SampledReport};
pub use session::{Session, SessionReport, SimReport, SmtReport, ThreadReport};
#[allow(deprecated)]
pub use session::{Simulation, SmtSimulation};
pub use stack::{CpiStack, FlopsStack};
