//! Interval CPI stacks: the commit-stage stack sampled every `K` cycles.
//!
//! Reference [10] of the paper ("Using cycle stacks to understand scaling
//! bottlenecks") plots *cycle stacks over time* to expose phase behaviour;
//! the same counters that build one aggregate stack can be snapshotted
//! periodically at no extra accounting cost. [`IntervalAccountant`] wraps
//! the commit-stage algorithm and emits one [`CpiStack`] per interval.

use crate::accounting::CommitAccountant;
use crate::component::{Component, COMPONENTS};
use crate::stack::CpiStack;
use mstacks_pipeline::{CommitView, StageObserver};

/// Commit-stage accounting, snapshotted every `interval` cycles.
///
/// # Example
///
/// ```
/// use mstacks_core::interval::IntervalAccountant;
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
/// use mstacks_pipeline::Core;
///
/// let cfg = CoreConfig::broadwell();
/// let trace = (0..4_000u64).map(|i| {
///     MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///         .with_dst(ArchReg::new((i % 8) as u16))
/// });
/// let mut acct = IntervalAccountant::new(cfg.accounting_width(), 256);
/// let mut core = Core::new(cfg, IdealFlags::none(), trace);
/// core.run(&mut acct).expect("runs");
/// let intervals = acct.finish();
/// assert!(intervals.len() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalAccountant {
    inner: CommitAccountant,
    interval: u64,
    /// Cumulative counts at the last snapshot.
    last_counts: [f64; COMPONENTS.len()],
    last_uops: u64,
    cycles_seen: u64,
    uops_seen: u64,
    done: Vec<CpiStack>,
}

impl IntervalAccountant {
    /// Creates an accountant against width `w`, snapshotting every
    /// `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(w: u32, interval: u64) -> Self {
        assert!(interval > 0, "interval must be non-zero");
        IntervalAccountant {
            inner: CommitAccountant::new(w),
            interval,
            last_counts: [0.0; COMPONENTS.len()],
            last_uops: 0,
            cycles_seen: 0,
            uops_seen: 0,
            done: Vec::new(),
        }
    }

    fn snapshot(&mut self) {
        let total = self.inner.clone().finish(self.uops_seen.max(1));
        let mut delta = [0.0; COMPONENTS.len()];
        for (i, c) in COMPONENTS.iter().enumerate() {
            delta[i] = total.cycles_of(*c) - self.last_counts[i];
            self.last_counts[i] = total.cycles_of(*c);
        }
        let uops = self.uops_seen - self.last_uops;
        self.last_uops = self.uops_seen;
        self.done.push(CpiStack::from_counts(
            crate::component::Stage::Commit,
            delta,
            self.interval,
            uops,
        ));
    }

    /// Finalizes: flushes the trailing partial interval and returns all
    /// interval stacks in time order.
    pub fn finish(mut self) -> Vec<CpiStack> {
        if !self.cycles_seen.is_multiple_of(self.interval) || self.done.is_empty() {
            self.snapshot();
        }
        self.done
    }

    /// Running conservation check for the audit subsystem, delegated to the
    /// wrapped commit accountant (interval snapshots are pure reads of its
    /// counters, so the same invariant covers both).
    pub fn conservation(&self) -> crate::audit::ConservationCheck {
        self.inner.conservation()
    }

    /// A compact per-interval phase label: the dominant stall component
    /// (or `Base` when the interval ran at full width).
    pub fn dominant(stack: &CpiStack) -> Component {
        COMPONENTS
            .iter()
            .copied()
            .max_by(|a, b| {
                stack
                    .cycles_of(*a)
                    .partial_cmp(&stack.cycles_of(*b))
                    .expect("no NaNs")
            })
            .expect("components exist")
    }
}

impl StageObserver for IntervalAccountant {
    fn on_commit(&mut self, cycle: u64, view: &CommitView) {
        self.inner.on_commit(cycle, view);
        self.uops_seen += u64::from(view.n);
        self.cycles_seen += 1;
        if self.cycles_seen.is_multiple_of(self.interval) {
            self.snapshot();
        }
    }
}

/// Renders interval stacks as a one-line-per-component "heat strip": each
/// character is one interval, darker = larger share of that interval.
pub fn render_strips(intervals: &[CpiStack]) -> String {
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    let mut out = String::new();
    for &c in COMPONENTS.iter() {
        let mut line = String::new();
        let mut any = false;
        for s in intervals {
            let total = s.total_cycles().max(1e-12);
            let share = s.cycles_of(c) / total;
            let idx = ((share * 4.0).round() as usize).min(4);
            if idx > 0 {
                any = true;
            }
            line.push(SHADES[idx]);
        }
        if any {
            out.push_str(&format!("{:<12} |{}|\n", c.label(), line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
    use mstacks_pipeline::Core;

    fn run_intervals(trace: Vec<MicroOp>, interval: u64) -> Vec<CpiStack> {
        let cfg = CoreConfig::broadwell();
        let mut acct = IntervalAccountant::new(cfg.accounting_width(), interval);
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(cfg, ideal, trace.into_iter());
        core.run(&mut acct).expect("runs");
        acct.finish()
    }

    fn adds(n: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                    .with_dst(ArchReg::new((i % 8) as u16))
            })
            .collect()
    }

    fn chained_muls(n: u64) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::new(0x5000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Mul))
                    .with_src(ArchReg::new(1))
                    .with_dst(ArchReg::new(1))
            })
            .collect()
    }

    #[test]
    fn intervals_cover_the_whole_run() {
        let intervals = run_intervals(adds(8_000), 200);
        let total_uops: u64 = intervals.iter().map(|s| s.uops).sum();
        assert_eq!(total_uops, 8_000);
        // Each full interval sums to the interval length.
        for s in &intervals[..intervals.len() - 1] {
            assert!((s.total_cycles() - 200.0).abs() < 1e-6);
        }
    }

    #[test]
    fn phase_change_is_visible() {
        // Phase 1: independent adds (base-bound). Phase 2: a serial
        // multiply chain (alu_lat-bound). The dominant component must flip.
        let mut trace = adds(6_000);
        trace.extend(chained_muls(2_000));
        let intervals = run_intervals(trace, 250);
        let first = IntervalAccountant::dominant(&intervals[1]);
        let last = IntervalAccountant::dominant(&intervals[intervals.len() - 2]);
        assert_eq!(first, Component::Base, "phase 1 runs at full width");
        assert_eq!(
            last,
            Component::AluLat,
            "phase 2 serializes on the multiplier"
        );
    }

    #[test]
    fn strips_render_one_char_per_interval() {
        let intervals = run_intervals(adds(4_000), 200);
        let strips = render_strips(&intervals);
        let base_line = strips
            .lines()
            .find(|l| l.starts_with("base"))
            .expect("base strip");
        let n_chars = base_line
            .split('|')
            .nth(1)
            .expect("strip body")
            .chars()
            .count();
        assert_eq!(n_chars, intervals.len());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = IntervalAccountant::new(4, 0);
    }
}
