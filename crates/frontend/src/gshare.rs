//! Gshare direction predictor: global history XOR pc indexing a table of
//! 2-bit saturating counters.

/// A gshare conditional-branch direction predictor.
///
/// # Example
///
/// ```
/// use mstacks_frontend::Gshare;
///
/// let mut g = Gshare::new(10);
/// // Train an always-taken branch.
/// for _ in 0..4 {
///     let p = g.predict(0x400);
///     g.update(0x400, true);
///     let _ = p;
/// }
/// assert!(g.predict(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    /// 2-bit saturating counters; ≥2 predicts taken.
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// Creates a predictor with `history_bits` of global history and a
    /// `2^history_bits`-entry pattern history table.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 30.
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=30).contains(&history_bits),
            "history_bits must be in 1..=30"
        );
        Gshare {
            // Weakly taken initial state behaves well on loop-heavy code.
            table: vec![2; 1 << history_bits],
            history: 0,
            mask: (1 << history_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains the predictor with the resolved direction and shifts it into
    /// the global history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
    }

    /// Current global-history register (for tests/debug).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Number of PHT entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut g = Gshare::new(8);
        // Train to steady state: after 8 updates the history register
        // saturates, so later updates and the final predict share an index.
        for _ in 0..50 {
            g.update(0x1000, true);
        }
        assert!(g.predict(0x1000));
        for _ in 0..50 {
            g.update(0x1000, false);
        }
        assert!(!g.predict(0x1000));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = Gshare::new(8);
        // Alternating T/N: after warmup, history disambiguates the pattern.
        let mut taken = true;
        for _ in 0..64 {
            g.update(0x2000, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..32 {
            if g.predict(0x2000) == taken {
                correct += 1;
            }
            g.update(0x2000, taken);
            taken = !taken;
        }
        assert!(
            correct >= 30,
            "gshare should learn alternation: {correct}/32"
        );
    }

    #[test]
    fn history_register_is_masked() {
        let mut g = Gshare::new(4);
        for _ in 0..100 {
            g.update(0, true);
        }
        assert_eq!(g.history(), 0xF);
    }

    #[test]
    fn table_size_matches_history_bits() {
        assert_eq!(Gshare::new(12).table_len(), 4096);
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn zero_history_panics() {
        let _ = Gshare::new(0);
    }
}
