//! Fetch + decode timing model.
//!
//! [`FrontendUnit`] pulls correct-path micro-ops from the trace, accesses
//! the instruction cache (blocking fetch on a miss), predicts branches
//! (switching to synthesized wrong-path micro-ops on a misprediction),
//! models microcode-sequencer stalls, and delays every micro-op by the
//! frontend pipeline depth before it becomes dispatchable.
//!
//! The per-cycle contract with the pipeline:
//!
//! 1. the pipeline calls [`FrontendUnit::tick`] once per cycle to fetch;
//! 2. the dispatch stage pops dispatchable micro-ops with
//!    [`FrontendUnit::pop_ready`];
//! 3. when a mispredicted branch *executes*, the pipeline calls
//!    [`FrontendUnit::redirect`], which squashes the wrong path and
//!    restarts fetch at the correct address (paying the refill depth);
//! 4. the accounting layers ask [`FrontendUnit::stall_reason`] why the
//!    frontend is not delivering — this is the `if Icache miss / elif bpred
//!    miss` probe in every Table II algorithm, extended with the microcode
//!    cause of Fig. 3(d).

use std::collections::VecDeque;

use crate::predictor::BranchPredictor;
use crate::wrongpath::WrongPathGen;
use mstacks_mem::Hierarchy;
use mstacks_model::{BranchInfo, CoreConfig, FrontendStall, MicroOp, UopKind};

/// A micro-op sitting in the frontend queue, decorated with speculation
/// state and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedUop {
    /// The micro-op itself (synthesized for wrong-path entries).
    pub uop: MicroOp,
    /// `true` if fetched down a mispredicted path (ground truth, available
    /// because the model is functional-first — paper §III-B).
    pub wrong_path: bool,
    /// `true` if this is a correct-path branch the predictor got wrong; its
    /// execution triggers [`FrontendUnit::redirect`].
    pub mispredicted_branch: bool,
    /// Cycle from which this micro-op may dispatch (fetch cycle + frontend
    /// pipeline depth).
    pub avail: u64,
    /// `true` if fetching this micro-op's line missed the L1I.
    pub icache_miss: bool,
}

/// Outcome of one fetch cycle, for fetch-stage CPI accounting (the
/// paper's "similar accounting can be done at other stages (e.g., fetch
/// and decode)").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchCycle {
    /// Micro-ops fetched this cycle, wrong path included.
    pub n_total: u32,
    /// Correct-path micro-ops fetched this cycle.
    pub n_correct: u32,
    /// Fetch was blocked because the frontend queue is full (downstream
    /// back-pressure: dispatch is not draining it).
    pub backpressure: bool,
}

/// Frontend statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Correct-path micro-ops fetched.
    pub fetched: u64,
    /// Wrong-path micro-ops fetched.
    pub wrong_path_fetched: u64,
    /// Branch mispredictions discovered at fetch.
    pub mispredicts: u64,
    /// Cycles fetch was blocked on an L1I miss.
    pub icache_stall_cycles: u64,
    /// Cycles fetch was blocked on the microcode sequencer.
    pub microcode_stall_cycles: u64,
}

/// The fetch/decode unit of one core.
pub struct FrontendUnit {
    fetch_width: usize,
    depth: u64,
    microcode_cycles: u64,
    l1i_latency: u64,
    queue_cap: usize,
    queue: VecDeque<FetchedUop>,
    predictor: BranchPredictor,
    /// Fetch is blocked until this cycle …
    blocked_until: u64,
    /// … because of this (Icache or Microcode).
    blocked_on: Option<FrontendStall>,
    /// While `Some`, fetch produces synthesized wrong-path micro-ops.
    wrong_path: Option<WrongPathGen>,
    /// After a redirect, the refill window during which the stall cause is
    /// the branch misprediction.
    bpred_refill_until: u64,
    /// Micro-op fetched but not yet delivered (e.g. its I-line missed).
    pending: Option<(MicroOp, bool)>,
    current_line: u64,
    trace_done: bool,
    stats: FrontendStats,
}

impl std::fmt::Debug for FrontendUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendUnit")
            .field("queue_len", &self.queue.len())
            .field("blocked_until", &self.blocked_until)
            .field("wrong_path", &self.wrong_path.is_some())
            .field("trace_done", &self.trace_done)
            .finish()
    }
}

impl FrontendUnit {
    /// Builds the frontend for `cfg`; `perfect_bpred` enables the paper's
    /// perfect-branch-prediction idealization.
    pub fn new(cfg: &CoreConfig, perfect_bpred: bool) -> Self {
        FrontendUnit {
            fetch_width: cfg.fetch_width as usize,
            depth: u64::from(cfg.frontend_depth),
            microcode_cycles: u64::from(cfg.microcode_decode_cycles),
            l1i_latency: u64::from(cfg.mem.l1i.latency),
            queue_cap: (cfg.fetch_width as usize) * (cfg.frontend_depth as usize + 2),
            queue: VecDeque::new(),
            predictor: BranchPredictor::new(&cfg.bpred, perfect_bpred),
            blocked_until: 0,
            blocked_on: None,
            wrong_path: None,
            bpred_refill_until: 0,
            pending: None,
            current_line: u64::MAX,
            trace_done: false,
            stats: FrontendStats::default(),
        }
    }

    /// Next micro-op to fetch: the stashed one, else wrong-path synthesis,
    /// else the trace. Generic so that a concrete trace source (e.g. a
    /// pre-decoded `TraceCursor`) monomorphizes all the way into the fetch
    /// loop — no virtual dispatch per µop.
    fn take_next<I: Iterator<Item = MicroOp>>(&mut self, trace: &mut I) -> Option<(MicroOp, bool)> {
        if let Some(p) = self.pending.take() {
            return Some(p);
        }
        if let Some(g) = &mut self.wrong_path {
            return Some((g.next_uop(), true));
        }
        match trace.next() {
            Some(u) => Some((u, false)),
            None => {
                self.trace_done = true;
                None
            }
        }
    }

    /// Fetches up to `fetch_width` micro-ops at cycle `now`; returns what
    /// happened for fetch-stage accounting.
    pub fn tick<I: Iterator<Item = MicroOp>>(
        &mut self,
        now: u64,
        mem: &mut Hierarchy,
        trace: &mut I,
    ) -> FetchCycle {
        let mut out = FetchCycle::default();
        if now < self.blocked_until {
            match self.blocked_on {
                Some(FrontendStall::Icache) => self.stats.icache_stall_cycles += 1,
                Some(FrontendStall::Microcode) => self.stats.microcode_stall_cycles += 1,
                _ => {}
            }
            return out;
        }
        self.blocked_on = None;
        out.backpressure = self.queue.len() >= self.queue_cap;

        let mut fetched = 0;
        while fetched < self.fetch_width && self.queue.len() < self.queue_cap {
            let Some((uop, wrong)) = self.take_next(trace) else {
                break;
            };

            // Instruction-cache access on a line change.
            let line = uop.pc >> 6;
            let mut icache_miss = false;
            if line != self.current_line {
                let res = mem.fetch(uop.pc, now);
                self.current_line = line;
                if res.ready > now + self.l1i_latency {
                    // Miss: stall fetch until the line arrives; re-deliver
                    // this micro-op then.
                    self.blocked_until = res.ready;
                    self.blocked_on = Some(FrontendStall::Icache);
                    self.stats.icache_stall_cycles += 1;
                    self.pending = Some((uop, wrong));
                    return out;
                }
            }
            if self.pending_icache_flag(&uop, mem) {
                icache_miss = true;
            }

            // Branch prediction (correct-path branches only; wrong-path
            // micro-ops carry no branches).
            let mut mispredicted = false;
            let mut group_break = false;
            if let (UopKind::Branch(bi), false) = (&uop.kind, wrong) {
                let p = self.predictor.predict_and_update(uop.pc, bi);
                if p.mispredicted {
                    mispredicted = true;
                    self.stats.mispredicts += 1;
                    self.wrong_path = Some(WrongPathGen::new(p.next_pc, uop.pc));
                }
                // A (predicted-)taken branch ends the fetch group.
                group_break = p.taken;
            }

            if wrong {
                self.stats.wrong_path_fetched += 1;
            } else {
                self.stats.fetched += 1;
                out.n_correct += 1;
            }
            out.n_total += 1;
            self.queue.push_back(FetchedUop {
                uop,
                wrong_path: wrong,
                mispredicted_branch: mispredicted,
                avail: now + self.depth,
                icache_miss,
            });
            fetched += 1;

            // Microcode sequencing blocks the decoder behind this micro-op.
            if uop.microcoded && self.microcode_cycles > 0 {
                self.blocked_until = now + self.microcode_cycles;
                self.blocked_on = Some(FrontendStall::Microcode);
                return out;
            }
            if group_break {
                return out;
            }
        }
        out
    }

    /// Whether the line feeding `uop` is still being filled (used only to
    /// decorate [`FetchedUop::icache_miss`] for statistics).
    fn pending_icache_flag(&self, _uop: &MicroOp, _mem: &Hierarchy) -> bool {
        false
    }

    /// Pops the oldest micro-op if it has traversed the frontend pipeline.
    pub fn pop_ready(&mut self, now: u64) -> Option<FetchedUop> {
        match self.queue.front() {
            Some(f) if f.avail <= now => self.queue.pop_front(),
            _ => None,
        }
    }

    /// Peeks the oldest micro-op if dispatchable at `now`.
    pub fn peek_ready(&self, now: u64) -> Option<&FetchedUop> {
        self.queue.front().filter(|f| f.avail <= now)
    }

    /// Why the frontend is not delivering micro-ops (paper Table II lines
    /// 4–8): the active wrong path or its refill window reports `Bpred`; an
    /// outstanding L1I miss reports `Icache`; a busy microcode sequencer
    /// reports `Microcode`. `None` means the frontend is fine (e.g. warmup
    /// or trace end).
    pub fn stall_reason(&self, now: u64) -> Option<FrontendStall> {
        if self.wrong_path.is_some() || now < self.bpred_refill_until {
            return Some(FrontendStall::Bpred);
        }
        if now < self.blocked_until {
            return self.blocked_on;
        }
        None
    }

    /// A mispredicted branch resolved at cycle `now`: squash the wrong path
    /// and restart fetch at the correct address.
    pub fn redirect(&mut self, now: u64) {
        self.wrong_path = None;
        if let Some((_, wrong)) = self.pending {
            if wrong {
                self.pending = None;
            }
        }
        self.queue.retain(|f| !f.wrong_path);
        // Wrong-path I-cache/microcode blockage must not gate the correct
        // path (its misses stay in flight in the hierarchy, though).
        self.blocked_until = now + 1;
        self.blocked_on = None;
        self.bpred_refill_until = now + 1 + self.depth;
        self.current_line = u64::MAX;
    }

    /// Functionally warms the frontend for one fast-forwarded micro-op:
    /// its instruction line goes through the warm I-side path (TLB + cache
    /// contents, no timing or statistics) and branches train the predictor.
    /// This is the per-µop body of a sampled run's fast-forward segment.
    pub fn warm_uop(&mut self, uop: &MicroOp, mem: &mut Hierarchy) {
        self.warm_inst(uop.pc, mem);
        if let UopKind::Branch(bi) = &uop.kind {
            self.warm_branch(uop.pc, bi);
        }
    }

    /// I-side warming for one fast-forwarded µop: consecutive µops on the
    /// same instruction line are deduplicated, a new line goes through the
    /// warm I-cache/I-TLB path.
    #[inline]
    pub fn warm_inst(&mut self, pc: u64, mem: &mut Hierarchy) {
        let line = pc >> 6;
        if line != self.current_line {
            mem.warm_fetch(pc);
            self.current_line = line;
        }
    }

    /// Trains the branch predictor on one fast-forwarded branch.
    #[inline]
    pub fn warm_branch(&mut self, pc: u64, info: &BranchInfo) {
        self.predictor.warm(pc, info);
    }

    /// Re-arms a drained frontend so a fresh trace can feed it — the
    /// detailed-window hand-off of interval sampling. Learned state
    /// (branch predictor, and the I-cache contents held by the hierarchy)
    /// persists; transient fetch state is reset so the new window starts
    /// with a clean fetch group on its first line.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the frontend is not drained.
    pub fn rearm(&mut self) {
        debug_assert!(self.is_drained(), "rearming an undrained frontend");
        self.trace_done = false;
        self.blocked_on = None;
        self.current_line = u64::MAX;
    }

    /// `true` when the trace is exhausted and nothing is left to deliver.
    pub fn is_drained(&self) -> bool {
        self.trace_done
            && self.queue.is_empty()
            && self.wrong_path.is_none()
            && self.pending.is_none()
    }

    /// Frontend statistics.
    pub fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    /// Branch-predictor statistics (lookups / mispredicts).
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// Number of micro-ops currently queued (any speculation state).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, ArchReg, BranchInfo, BranchKind, CoreConfig};

    fn cfg() -> CoreConfig {
        CoreConfig::broadwell()
    }

    fn alu(pc: u64) -> MicroOp {
        MicroOp::new(pc, UopKind::IntAlu(AluClass::Add)).with_dst(ArchReg::new(1))
    }

    fn run_ticks<I: Iterator<Item = MicroOp>>(
        fe: &mut FrontendUnit,
        mem: &mut Hierarchy,
        trace: &mut I,
        cycles: u64,
    ) -> Vec<FetchedUop> {
        let mut out = Vec::new();
        for now in 0..cycles {
            fe.tick(now, mem, trace);
            while let Some(f) = fe.pop_ready(now) {
                out.push(f);
            }
        }
        out
    }

    #[test]
    fn delivers_after_frontend_depth() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, true);
        let mut trace = vec![alu(0x1000)].into_iter();
        fe.tick(0, &mut mem, &mut trace);
        // Not ready before the pipeline depth has elapsed.
        for now in 0..u64::from(cfg.frontend_depth) {
            assert!(fe.pop_ready(now).is_none(), "too early at {now}");
        }
        let f = fe.pop_ready(u64::from(cfg.frontend_depth)).expect("ready");
        assert_eq!(f.uop.pc, 0x1000);
        assert!(!f.wrong_path);
    }

    #[test]
    fn fetch_width_respected() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, true);
        let mut trace = (0..100).map(|i| alu(0x1000 + i * 4));
        fe.tick(0, &mut mem, &mut trace);
        assert_eq!(fe.queue_len(), cfg.fetch_width as usize);
    }

    #[test]
    fn icache_miss_blocks_fetch_and_reports_stall() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem); // cold caches
        let mut fe = FrontendUnit::new(&cfg, true);
        let mut trace = (0..16).map(|i| alu(0x40000 + i * 4));
        fe.tick(0, &mut mem, &mut trace);
        // Cold I-miss: nothing fetched, stall reason is Icache.
        assert_eq!(fe.queue_len(), 0);
        assert_eq!(fe.stall_reason(1), Some(FrontendStall::Icache));
        // Eventually the line arrives and fetch resumes.
        let got = run_ticks(&mut fe, &mut mem, &mut trace, 600);
        assert!(!got.is_empty());
        assert!(fe.stats().icache_stall_cycles > 0);
    }

    #[test]
    fn mispredict_produces_wrong_path_then_redirect_recovers() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, false);
        // A cold taken branch must mispredict (BTB miss).
        let br = MicroOp::new(
            0x1000,
            UopKind::Branch(BranchInfo {
                taken: true,
                target: 0x9000,
                fallthrough: 0x1004,
                kind: BranchKind::Cond,
            }),
        );
        let mut uops = vec![br];
        for i in 0..8 {
            uops.push(alu(0x9000 + i * 4));
        }
        let mut trace = uops.into_iter();

        // Fetch for a few cycles: branch + wrong-path uops enter the queue.
        for now in 0..4 {
            fe.tick(now, &mut mem, &mut trace);
        }
        assert_eq!(fe.stall_reason(3), Some(FrontendStall::Bpred));
        assert!(fe.stats().mispredicts == 1);
        assert!(fe.stats().wrong_path_fetched > 0);

        // Pipeline resolves the branch at cycle 20.
        fe.redirect(20);
        // Wrong-path entries are squashed from the queue.
        assert!(fe.queue.iter().all(|f| !f.wrong_path));
        // Refill window still blames bpred…
        assert_eq!(fe.stall_reason(21), Some(FrontendStall::Bpred));
        // …then the correct path flows again.
        let got = run_ticks(&mut fe, &mut mem, &mut trace, 64);
        let correct: Vec<_> = got.iter().filter(|f| !f.wrong_path).collect();
        assert!(correct.iter().any(|f| f.uop.pc == 0x9000));
    }

    #[test]
    fn perfect_bpred_never_goes_wrong_path() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, true);
        let mut uops = Vec::new();
        for i in 0..20u64 {
            uops.push(MicroOp::new(
                0x1000 + i * 64,
                UopKind::Branch(BranchInfo {
                    taken: i % 2 == 0,
                    target: 0x1000 + (i + 1) * 64,
                    fallthrough: 0x1000 + (i + 1) * 64,
                    kind: BranchKind::Cond,
                }),
            ));
        }
        let mut trace = uops.into_iter();
        let got = run_ticks(&mut fe, &mut mem, &mut trace, 200);
        assert_eq!(fe.stats().mispredicts, 0);
        assert!(got.iter().all(|f| !f.wrong_path));
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn microcode_stalls_decode_on_knl() {
        let cfg = CoreConfig::knights_landing();
        assert!(cfg.microcode_decode_cycles > 0);
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, true);
        let mut uops = vec![alu(0x1000).microcoded()];
        for i in 1..8 {
            uops.push(alu(0x1000 + i * 4));
        }
        let mut trace = uops.into_iter();
        fe.tick(0, &mut mem, &mut trace);
        assert_eq!(fe.queue_len(), 1); // the microcoded op went through alone
        assert_eq!(fe.stall_reason(1), Some(FrontendStall::Microcode));
        fe.tick(1, &mut mem, &mut trace);
        assert_eq!(fe.queue_len(), 1); // still sequencing
        let mut total = 0;
        for now in 2..40 {
            fe.tick(now, &mut mem, &mut trace);
            total = fe.queue_len();
        }
        assert!(total > 1, "fetch must resume after the microcode stall");
        assert!(fe.stats().microcode_stall_cycles > 0);
    }

    #[test]
    fn drained_when_trace_and_queue_empty() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, true);
        let mut trace = vec![alu(0x1000)].into_iter();
        assert!(!fe.is_drained());
        let got = run_ticks(&mut fe, &mut mem, &mut trace, 32);
        assert_eq!(got.len(), 1);
        assert!(fe.is_drained());
    }

    #[test]
    fn taken_branch_breaks_fetch_group() {
        let cfg = cfg();
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(true);
        let mut fe = FrontendUnit::new(&cfg, true);
        let br = MicroOp::new(
            0x1000,
            UopKind::Branch(BranchInfo {
                taken: true,
                target: 0x2000,
                fallthrough: 0x1004,
                kind: BranchKind::Uncond,
            }),
        );
        let mut trace = vec![br, alu(0x2000), alu(0x2004)].into_iter();
        fe.tick(0, &mut mem, &mut trace);
        // Only the branch is fetched in cycle 0 (group break on taken).
        assert_eq!(fe.queue_len(), 1);
        fe.tick(1, &mut mem, &mut trace);
        assert_eq!(fe.queue_len(), 3);
    }
}
