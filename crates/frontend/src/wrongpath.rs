//! Wrong-path micro-op synthesis.
//!
//! After a mispredicted branch is fetched, a real frontend keeps fetching
//! from the (wrong) predicted address until the branch resolves. Those
//! wrong-path instructions occupy fetch bandwidth, pollute the instruction
//! cache, fill reservation stations and execute on real ports — effects the
//! paper's bad-speculation accounting (§III-B) has to deal with.
//!
//! The trace only contains the correct path, so wrong-path micro-ops are
//! synthesized deterministically from the branch PC: a seeded mix of ALU
//! ops, address arithmetic and never-redirecting branches walking forward
//! from the wrong target, including not-taken conditional branches roughly
//! every eighth micro-op (real wrong paths are as branchy as real code —
//! and the per-basic-block speculative counters of §III-B need wrong-path
//! branches to delimit their windows). They carry no memory accesses
//! (wrong-path data pollution is second-order for this paper's
//! experiments; instruction-side pollution is modeled, because the PCs are
//! wrong).

use mstacks_model::{AluClass, ArchReg, BranchInfo, BranchKind, MicroOp, UopKind};

/// Deterministic wrong-path micro-op generator.
///
/// # Example
///
/// ```
/// use mstacks_frontend::WrongPathGen;
///
/// let mut a = WrongPathGen::new(0x4000, 0x999);
/// let mut b = WrongPathGen::new(0x4000, 0x999);
/// // Same branch → same synthetic path (determinism).
/// assert_eq!(a.next_uop().pc, b.next_uop().pc);
/// ```
#[derive(Debug, Clone)]
pub struct WrongPathGen {
    pc: u64,
    state: u64,
}

impl WrongPathGen {
    /// Starts a wrong path at `wrong_pc` (the address the frontend
    /// incorrectly continued at), seeded by the mispredicted branch's pc.
    pub fn new(wrong_pc: u64, branch_pc: u64) -> Self {
        WrongPathGen {
            pc: wrong_pc,
            // splitmix-style seed; never zero.
            state: branch_pc.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, cheap, good enough for op mixing.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Produces the next wrong-path micro-op.
    pub fn next_uop(&mut self) -> MicroOp {
        let r = self.next_rand();
        let pc = self.pc;
        self.pc += 4;
        let reg = |v: u64| ArchReg::new((v % 32) as u16);
        match r % 8 {
            0..=3 => MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                .with_src(reg(r >> 8))
                .with_dst(reg(r >> 16)),
            4 => MicroOp::new(pc, UopKind::IntAlu(AluClass::Lea))
                .with_src(reg(r >> 8))
                .with_dst(reg(r >> 16)),
            5 => MicroOp::new(pc, UopKind::IntAlu(AluClass::Mul))
                .with_src(reg(r >> 8))
                .with_src(reg(r >> 16))
                .with_dst(reg(r >> 24)),
            6 => MicroOp::new(
                pc,
                // A not-taken conditional: occupies a branch port, never
                // redirects (the real redirect comes from the mispredicted
                // correct-path branch that spawned this path).
                UopKind::Branch(BranchInfo {
                    taken: false,
                    target: pc + 64,
                    fallthrough: pc + 4,
                    kind: BranchKind::Cond,
                }),
            ),
            _ => MicroOp::new(pc, UopKind::Nop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_branch() {
        let mut a = WrongPathGen::new(0x8000, 0x123);
        let mut b = WrongPathGen::new(0x8000, 0x123);
        for _ in 0..64 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn pcs_advance_sequentially() {
        let mut g = WrongPathGen::new(0x8000, 0x1);
        assert_eq!(g.next_uop().pc, 0x8000);
        assert_eq!(g.next_uop().pc, 0x8004);
        assert_eq!(g.next_uop().pc, 0x8008);
    }

    #[test]
    fn no_memory_ops_and_only_tame_branches() {
        let mut g = WrongPathGen::new(0x8000, 0x77);
        let mut branches = 0;
        for _ in 0..256 {
            let u = g.next_uop();
            assert!(!u.kind.is_mem());
            if let UopKind::Branch(b) = u.kind {
                assert!(!b.taken, "wrong-path branches never redirect");
                branches += 1;
            }
        }
        assert!(branches > 10, "wrong paths are branchy: {branches}");
    }

    #[test]
    fn different_branches_differ() {
        let mut a = WrongPathGen::new(0x8000, 0x111);
        let mut b = WrongPathGen::new(0x8000, 0x222);
        let sa: Vec<_> = (0..32).map(|_| a.next_uop().kind).collect();
        let sb: Vec<_> = (0..32).map(|_| b.next_uop().kind).collect();
        assert_ne!(sa, sb);
    }
}
