//! The combined branch predictor: gshare direction + BTB targets + RAS.

use crate::btb::Btb;
use crate::gshare::Gshare;
use crate::ras::ReturnAddressStack;
use mstacks_model::{BpredConfig, BranchInfo, BranchKind};

/// What the frontend believes a branch will do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Address the frontend continues fetching at.
    pub next_pc: u64,
    /// Whether the prediction disagrees with the actual outcome
    /// (direction *or* target — the paper idealizes both together:
    /// "perfect branch prediction (including perfect target prediction)").
    pub mispredicted: bool,
}

/// Combined direction/target predictor with a perfect-prediction mode.
///
/// # Example
///
/// ```
/// use mstacks_frontend::BranchPredictor;
/// use mstacks_model::{BpredConfig, BranchInfo, BranchKind};
///
/// let cfg = BpredConfig { history_bits: 10, btb_sets_log2: 5, btb_ways: 2, ras_entries: 8 };
/// let mut bp = BranchPredictor::new(&cfg, false);
/// let br = BranchInfo { taken: true, target: 0x9000, fallthrough: 0x104, kind: BranchKind::Cond };
/// // A cold taken branch misses the BTB → mispredicted.
/// let p = bp.predict_and_update(0x100, &br);
/// assert!(p.mispredicted);
/// // After training, the same branch predicts correctly.
/// let p2 = bp.predict_and_update(0x100, &br);
/// let p3 = bp.predict_and_update(0x100, &br);
/// assert!(!p2.mispredicted || !p3.mispredicted);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: Gshare,
    btb: Btb,
    ras: ReturnAddressStack,
    perfect: bool,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Builds the predictor; `perfect = true` implements the paper's
    /// perfect-bpred idealization (every prediction correct).
    pub fn new(cfg: &BpredConfig, perfect: bool) -> Self {
        BranchPredictor {
            gshare: Gshare::new(cfg.history_bits),
            btb: Btb::new(cfg.btb_sets_log2, cfg.btb_ways),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            perfect,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the branch at `pc`, then immediately trains the structures
    /// with the actual outcome (functional-first traces make the outcome
    /// available at fetch; in-order update keeps the model deterministic).
    pub fn predict_and_update(&mut self, pc: u64, actual: &BranchInfo) -> Prediction {
        self.lookups += 1;
        if self.perfect {
            // Keep the RAS coherent even in perfect mode (it costs nothing
            // and keeps statistics comparable).
            match actual.kind {
                BranchKind::Call => self.ras.push(actual.fallthrough),
                BranchKind::Ret => {
                    let _ = self.ras.pop();
                }
                _ => {}
            }
            return Prediction {
                taken: actual.taken,
                next_pc: actual.next_pc(),
                mispredicted: false,
            };
        }

        let (pred_taken, pred_target) = match actual.kind {
            BranchKind::Cond => {
                let taken = self.gshare.predict(pc);
                (taken, self.btb.lookup(pc))
            }
            BranchKind::Uncond | BranchKind::Call => (true, self.btb.lookup(pc)),
            BranchKind::Indirect => (true, self.btb.lookup(pc)),
            BranchKind::Ret => (true, None), // target comes from the RAS below
        };

        // Resolve the predicted next pc.
        let pred_next = if !pred_taken {
            actual.fallthrough
        } else {
            match actual.kind {
                BranchKind::Ret => self.ras.pop().unwrap_or(actual.fallthrough),
                _ => match pred_target {
                    Some(t) => t,
                    // Taken prediction without a BTB target: the frontend
                    // cannot redirect, so it effectively falls through.
                    None => actual.fallthrough,
                },
            }
        };

        let mispredicted = pred_next != actual.next_pc();

        // Train.
        if actual.kind == BranchKind::Cond {
            self.gshare.update(pc, actual.taken);
        }
        if actual.taken && actual.kind != BranchKind::Ret {
            self.btb.update(pc, actual.target);
        }
        if actual.kind == BranchKind::Call {
            self.ras.push(actual.fallthrough);
        }

        if mispredicted {
            self.mispredicts += 1;
        }
        Prediction {
            taken: pred_taken,
            next_pc: pred_next,
            mispredicted,
        }
    }

    /// Trains the direction/target/return structures on an observed branch
    /// without predicting and without touching the lookup/mispredict
    /// statistics — functional warming for sampled simulation. The RAS
    /// push/pop discipline matches [`BranchPredictor::predict_and_update`]
    /// exactly (pop on returns, push on calls), so a warmed predictor's
    /// call stack lines up with the detailed window that follows.
    pub fn warm(&mut self, pc: u64, actual: &BranchInfo) {
        if actual.kind == BranchKind::Ret {
            let _ = self.ras.pop();
        }
        if actual.kind == BranchKind::Call {
            self.ras.push(actual.fallthrough);
        }
        if self.perfect {
            return;
        }
        if actual.kind == BranchKind::Cond {
            self.gshare.update(pc, actual.taken);
        }
        if actual.taken && actual.kind != BranchKind::Ret {
            self.btb.update(pc, actual.target);
        }
    }

    /// Branches predicted so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction ratio in [0, 1].
    pub fn mispredict_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BpredConfig {
        BpredConfig {
            history_bits: 10,
            btb_sets_log2: 6,
            btb_ways: 2,
            ras_entries: 8,
        }
    }

    fn cond(taken: bool) -> BranchInfo {
        BranchInfo {
            taken,
            target: 0x9000,
            fallthrough: 0x104,
            kind: BranchKind::Cond,
        }
    }

    #[test]
    fn perfect_mode_never_mispredicts() {
        let mut bp = BranchPredictor::new(&cfg(), true);
        for i in 0..100u64 {
            let b = cond(i % 3 == 0);
            let p = bp.predict_and_update(0x100 + i * 8, &b);
            assert!(!p.mispredicted);
            assert_eq!(p.next_pc, b.next_pc());
        }
        assert_eq!(bp.mispredicts(), 0);
    }

    #[test]
    fn biased_branch_becomes_predictable() {
        let mut bp = BranchPredictor::new(&cfg(), false);
        let b = cond(true);
        for _ in 0..10 {
            bp.predict_and_update(0x100, &b);
        }
        let p = bp.predict_and_update(0x100, &b);
        assert!(!p.mispredicted);
        assert_eq!(p.next_pc, 0x9000);
    }

    #[test]
    fn random_branch_mispredicts_sometimes() {
        let mut bp = BranchPredictor::new(&cfg(), false);
        // Period-5 pattern exceeding no history: still learnable, so use a
        // de-facto random (irregular, aperiodic) sequence instead.
        let outcomes = [
            true, false, false, true, true, true, false, true, false, false, true, false, true,
            true, false, false, false, true, true, false,
        ];
        let mut miss = 0;
        for (i, &t) in outcomes.iter().cycle().take(200).enumerate() {
            let pc = 0x100 + (i as u64 % 7) * 16; // several branches
            if bp.predict_and_update(pc, &cond(t)).mispredicted {
                miss += 1;
            }
        }
        assert!(miss > 0, "an irregular pattern must cause some mispredicts");
    }

    #[test]
    fn call_ret_pair_uses_ras() {
        let mut bp = BranchPredictor::new(&cfg(), false);
        let call = BranchInfo {
            taken: true,
            target: 0x5000,
            fallthrough: 0x108,
            kind: BranchKind::Call,
        };
        // Train the call's BTB entry first.
        bp.predict_and_update(0x100, &call);
        bp.predict_and_update(0x100, &call);
        let ret = BranchInfo {
            taken: true,
            target: 0x108, // returns to the call's fallthrough
            fallthrough: 0x5004,
            kind: BranchKind::Ret,
        };
        let p = bp.predict_and_update(0x5000, &ret);
        assert!(!p.mispredicted, "RAS should predict the return target");
    }

    #[test]
    fn cold_taken_branch_mispredicts_via_btb_miss() {
        let mut bp = BranchPredictor::new(&cfg(), false);
        let b = BranchInfo {
            taken: true,
            target: 0x9000,
            fallthrough: 0x104,
            kind: BranchKind::Uncond,
        };
        let p = bp.predict_and_update(0x100, &b);
        assert!(
            p.mispredicted,
            "no BTB target → cannot redirect → mispredict"
        );
        let p2 = bp.predict_and_update(0x100, &b);
        assert!(!p2.mispredicted);
    }

    #[test]
    fn mispredict_ratio_counts() {
        let mut bp = BranchPredictor::new(&cfg(), false);
        let b = cond(true);
        bp.predict_and_update(0x100, &b);
        assert!(bp.lookups() == 1);
        assert!(bp.mispredict_ratio() <= 1.0);
    }
}
