//! Frontend model for the `mstacks` simulator: branch prediction, fetch and
//! decode timing, and wrong-path instruction synthesis.
//!
//! The frontend is where two of the paper's CPI components originate:
//!
//! * **Icache** — instruction fetch blocks while an L1I miss is outstanding;
//! * **Bpred** — after a mispredicted branch is fetched, the frontend keeps
//!   fetching *wrong-path* micro-ops (which occupy the pipeline and touch
//!   the instruction cache) until the branch resolves; then the pipeline is
//!   flushed and refilled, costing the frontend pipeline depth.
//!
//! A third component, **Microcode** (paper Fig. 3(d)), appears on cores
//! whose decoder stalls for several cycles on microcoded instructions (the
//! KNL preset).
//!
//! The unit is *functional-first* (paper §III-B): branch outcomes are known
//! from the trace, so correct-path and wrong-path micro-ops are always
//! distinguishable — the ground truth against which the paper's simpler
//! hardware schemes are compared in `mstacks-core`.

pub mod btb;
pub mod fetch;
pub mod gshare;
pub mod predictor;
pub mod ras;
pub mod wrongpath;

pub use btb::Btb;
pub use fetch::{FetchCycle, FetchedUop, FrontendUnit};
pub use gshare::Gshare;
pub use predictor::{BranchPredictor, Prediction};
pub use ras::ReturnAddressStack;
pub use wrongpath::WrongPathGen;
