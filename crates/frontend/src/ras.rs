//! Return-address stack.

/// A bounded return-address stack. Overflow wraps (oldest entry is lost),
/// underflow returns `None` — both mirror hardware behaviour.
///
/// # Example
///
/// ```
/// use mstacks_frontend::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x100);
/// ras.push(0x200);
/// assert_eq!(ras.pop(), Some(0x200));
/// assert_eq!(ras.pop(), Some(0x100));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a stack holding up to `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
        }
    }

    /// Pushes a return address (a call); drops the oldest entry on overflow.
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (a return).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// `true` when no return addresses are stacked.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert!(r.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
