//! Branch target buffer: a small set-associative cache of branch targets.

/// One BTB way.
#[derive(Debug, Clone, Copy)]
struct BtbWay {
    pc: u64,
    target: u64,
    stamp: u64,
}

const INVALID: u64 = u64::MAX;

/// A set-associative branch target buffer with LRU replacement.
///
/// # Example
///
/// ```
/// use mstacks_frontend::Btb;
///
/// let mut b = Btb::new(4, 2);
/// assert_eq!(b.lookup(0x400), None);
/// b.update(0x400, 0x9000);
/// assert_eq!(b.lookup(0x400), Some(0x9000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    ways: Vec<BtbWay>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `2^sets_log2` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero.
    pub fn new(sets_log2: u32, assoc: u32) -> Self {
        assert!(assoc > 0, "BTB associativity must be non-zero");
        let sets = 1usize << sets_log2;
        Btb {
            ways: vec![
                BtbWay {
                    pc: INVALID,
                    target: 0,
                    stamp: 0
                };
                sets * assoc as usize
            ],
            assoc: assoc as usize,
            set_mask: (sets as u64) - 1,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, pc: u64) -> std::ops::Range<usize> {
        let set = ((pc >> 2) & self.set_mask) as usize;
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Returns the stored target for the branch at `pc`, if present.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(pc);
        for w in &mut self.ways[range] {
            if w.pc == pc {
                w.stamp = tick;
                return Some(w.target);
            }
        }
        None
    }

    /// Records (or refreshes) the target of a taken branch.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(pc);
        let set = &mut self.ways[range];
        if let Some(w) = set.iter_mut().find(|w| w.pc == pc) {
            w.target = target;
            w.stamp = tick;
            return;
        }
        if let Some(w) = set.iter_mut().find(|w| w.pc == INVALID) {
            *w = BtbWay {
                pc,
                target,
                stamp: tick,
            };
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.stamp)
            .expect("associativity is non-zero");
        *victim = BtbWay {
            pc,
            target,
            stamp: tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(3, 2);
        assert_eq!(b.lookup(100), None);
        b.update(100, 500);
        assert_eq!(b.lookup(100), Some(500));
    }

    #[test]
    fn update_changes_target() {
        let mut b = Btb::new(3, 2);
        b.update(100, 500);
        b.update(100, 600);
        assert_eq!(b.lookup(100), Some(600));
    }

    #[test]
    fn conflict_evicts_lru() {
        // 1 set (sets_log2=0), 2 ways: three PCs conflict.
        let mut b = Btb::new(0, 2);
        b.update(4, 1);
        b.update(8, 2);
        b.lookup(4); // 8 becomes LRU
        b.update(12, 3);
        assert_eq!(b.lookup(4), Some(1));
        assert_eq!(b.lookup(8), None);
        assert_eq!(b.lookup(12), Some(3));
    }
}
